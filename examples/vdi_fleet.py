"""Virtual desktop fleet: extreme deduplication (Section 5.3).

Thousands of near-identical desktop images deduplicate at 20x or more.
This example provisions a fleet of desktops from one gold image, rolls
out a fleet-wide software update (identical bytes rewritten on every
desktop — re-deduplicated on arrival), and runs a morning boot storm.

Run:  python examples/vdi_fleet.py
"""

from repro import ArrayConfig, PurityArray
from repro.sim.distributions import percentile
from repro.sim.rand import RandomStream
from repro.units import MIB, format_bytes
from repro.workloads.base import run_trace
from repro.workloads.vdi import VDIConfig, VDIWorkload


def main():
    config = ArrayConfig.small(num_drives=11, drive_capacity=32 * MIB)
    array = PurityArray.create(config)
    workload = VDIWorkload(
        VDIConfig(desktop_count=16, image_blocks=20), RandomStream(7)
    )

    for volume in workload.volume_names():
        array.create_volume(volume, workload.volume_size)

    # Provision the fleet: every desktop writes its (nearly identical)
    # image; inline dedup collapses the duplicates on the way in.
    run_trace(array, workload.provision_trace())
    report = array.reduction_report()
    print("provisioned %d desktops of %s each" % (
        workload.config.desktop_count, format_bytes(workload.image_bytes)))
    print("logical data: %s, physical flash: %s  ->  %.1fx reduction" % (
        format_bytes(report.logical_live_bytes),
        format_bytes(report.physical_stored_bytes),
        report.data_reduction))

    # A fleet-wide software update rewrites the same blocks everywhere.
    run_trace(array, workload.update_trace())
    updated = array.reduction_report()
    print("after fleet-wide update: %.1fx reduction (dedup %.1fx)" % (
        updated.data_reduction, updated.dedup_ratio))

    # Boot storm: every desktop reads its whole image at 9 AM.
    read_latencies, _ = run_trace(array, workload.boot_storm_trace())
    print("boot storm: %d image reads, p50 %.2f ms, worst %.2f ms" % (
        len(read_latencies),
        percentile(read_latencies, 0.5) * 1e3,
        max(read_latencies) * 1e3))

    # Desktops clone instantly from a master volume, too.
    master = workload.volume_names()[0]
    array.snapshot(master, "gold")
    for clone_index in range(4):
        array.clone(master, "gold", "linked-clone%d" % clone_index)
    data, _ = array.read("linked-clone0", 0, workload.config.block_size)
    original, _ = array.read(master, 0, workload.config.block_size)
    assert data == original
    print("4 linked clones created instantly from the gold snapshot. done.")


if __name__ == "__main__":
    main()
