"""Multi-tenant QoS: tame a noisy neighbor with the service plane.

The consolidation pitch from Section 2 only works if a bulk tenant
cannot ruin a latency-sensitive one. This example stages that failure
and then fixes it with the block-service front end (``repro.service``):
a gold "victim" tenant reads at a steady rate while a bronze "bully"
floods ten times as many reads at the same small array. With QoS off
(one global FIFO) the victim's p99 explodes; with QoS on — priority
weights, an iops cap on the bully, and a bounded per-tenant queue —
the victim stays near its solo latency while the bully's excess is
shed. Management operations go through ``ManagementAPI``, the same
endpoint surface documented in docs/API.md.

The full-sized, gated version of this experiment is
``benchmarks/bench_service.py`` (numbers in EXPERIMENTS.md); the knobs
are explained in docs/SERVICE_PLANE.md.

Run:  python examples/multi_tenant_qos.py
"""

from repro.core.array import PurityArray
from repro.core.config import ArrayConfig
from repro.service import ManagementAPI, QosSpec, ServiceConfig, ServiceFrontend
from repro.sim.rand import RandomStream
from repro.units import KIB

RECORD = 4 * KIB
SLOTS = 256          # per-tenant working set (slots of RECORD bytes)
VICTIM_IOPS = 1000.0
BULLY_IOPS = 10_000.0
TAPE_SECONDS = 1.0   # enough arrivals for a stall-stable p99


def build_frontend(qos_enabled):
    # Shrink the cblock cache so reads really hit the simulated flash —
    # an all-cache run would hide the queueing entirely.
    array = PurityArray.create(
        ArrayConfig.small(seed=7, cblock_cache_entries=16))
    config = ServiceConfig(qos_enabled=qos_enabled,
                           admission_enabled=qos_enabled,
                           quantum_bytes=RECORD)
    frontend = ServiceFrontend(array, config)
    api = ManagementAPI(frontend)

    # Tenants and volumes are provisioned through the management API.
    api.call("tenant.create", tenant="victim", priority="gold")
    api.call("tenant.create", tenant="bully", priority="bronze",
             iops_limit=2000.0)
    api.call("volume.create", tenant="victim", volume="victim-vol",
             size=SLOTS * RECORD)
    api.call("volume.create", tenant="bully", volume="bully-vol",
             size=SLOTS * RECORD)

    # Seed both working sets directly on the backend (setup, not
    # measured workload), then drain to an idle pipeline.
    stream = RandomStream(7).fork("seed")
    for volume in ("victim-vol", "bully-vol"):
        for slot in range(SLOTS):
            array.write(volume, slot * RECORD, stream.randbytes(RECORD),
                        advance_clock=True)
    array.drain()
    return frontend, api


def submit_tape(frontend, volume, iops, stream):
    interval = 1.0 / iops
    start = frontend.clock.now
    for index in range(int(TAPE_SECONDS * iops)):
        slot = stream.randint(0, SLOTS - 1)
        frontend.submit_read(volume, slot * RECORD, RECORD,
                             at=start + index * interval)


def run_case(label, qos_enabled):
    frontend, api = build_frontend(qos_enabled)
    stream = RandomStream(7).fork("tape")
    submit_tape(frontend, "victim-vol", VICTIM_IOPS, stream.fork("victim"))
    submit_tape(frontend, "bully-vol", BULLY_IOPS, stream.fork("bully"))
    frontend.run()
    victim = api.call("tenant.stats", tenant="victim")
    bully = api.call("tenant.stats", tenant="bully")
    p99_us = frontend.stats["victim"].latency_percentile(
        0.99, reads_only=True) * 1e6
    print("%-8s victim p99 %10.1f us   bully dispatched %5d shed %5d"
          % (label, p99_us, bully["dispatched"], bully["shed"]))
    assert victim["errors"] == 0 and bully["errors"] == 0
    return p99_us


def main():
    print("victim: gold, %d iops; bully: bronze, %d iops offered, "
          "capped at 2000 with QoS on\n" % (VICTIM_IOPS, BULLY_IOPS))
    off = run_case("qos off", qos_enabled=False)
    on = run_case("qos on", qos_enabled=True)
    print("\nQoS cut the victim's p99 by %.0fx: the bully is iops-capped,"
          % (off / on))
    print("its overflow is shed at the 64-deep queue bound, and the")
    print("request-sized DRR quantum interleaves the two tenants finely.")
    assert on < off, "QoS should strictly improve the victim's p99"


if __name__ == "__main__":
    main()
