"""Database consolidation: many independent databases on one array.

The paper's most common deployment: dozens to hundreds of independent
database instances share a single appliance (Section 5.2), with data
reduction making the consolidation affordable and low latency making it
fast. This example runs several OLTP instances plus a document store
side by side, reports per-array reduction and latency percentiles, and
applies the Section 5.2.1 rollback model to the measured latencies.

Run:  python examples/database_consolidation.py
"""

from repro import ArrayConfig, PurityArray
from repro.analysis.reporting import format_table
from repro.analysis.rollback import TransactionModel, naive_speedup_bound
from repro.sim.distributions import percentile
from repro.sim.rand import RandomStream
from repro.units import MIB
from repro.workloads.base import run_trace
from repro.workloads.docstore import DocStoreConfig, DocStoreWorkload
from repro.workloads.oltp import OLTPConfig, OLTPWorkload


def main():
    config = ArrayConfig.small(num_drives=12, drive_capacity=32 * MIB)
    array = PurityArray.create(config)
    stream = RandomStream(2026)

    # Provision four OLTP databases and one document store.
    workloads = []
    for instance in range(4):
        oltp = OLTPWorkload(
            OLTPConfig(page_count=96),
            stream.fork("oltp%d" % instance),
            volume="oracle%02d" % instance,
        )
        workloads.append(oltp)
    docs = DocStoreWorkload(
        DocStoreConfig(batch_count=16), stream.fork("docs"), volume="mongo"
    )
    workloads.append(docs)

    for workload in workloads:
        array.create_volume(workload.volume, workload.volume_size)
        run_trace(array, workload.load_trace())
    print("loaded %d database instances" % len(workloads))

    # Steady-state mixed load across all instances.
    read_latencies, write_latencies = [], []
    for workload in workloads:
        reads, writes = run_trace(array, workload.run_trace(150))
        read_latencies.extend(reads)
        write_latencies.extend(writes)

    report = array.reduction_report()
    rows = [
        ["volumes", len(array.volumes.volume_names())],
        ["data reduction", "%.1fx" % report.data_reduction],
        ["  dedup", "%.1fx" % report.dedup_ratio],
        ["  compression", "%.1fx" % report.compression_ratio],
        ["thin provisioning", "%.1fx" % report.thin_provisioning],
        ["write p50 (us)", percentile(write_latencies, 0.5) * 1e6],
        ["write p99.9 (us)", percentile(write_latencies, 0.999) * 1e6],
        ["read p50 (us)", percentile(read_latencies, 0.5) * 1e6],
        ["read p99.9 (us)", percentile(read_latencies, 0.999) * 1e6],
    ]
    print(format_table(["metric", "value"], rows, title="\nConsolidated array"))

    # What the latency cut means for transaction rollbacks (S5.2.1).
    model = TransactionModel(tps=2000, ios_per_txn=8)
    disk_latency = 0.005
    flash_latency = max(1e-5, percentile(read_latencies, 0.5))
    print("\nRollback model (disk %.1f ms -> flash %.2f ms):" % (
        disk_latency * 1e3, flash_latency * 1e3))
    print("  rollback probability: %.2f%% -> %.4f%%" % (
        model.rollback_probability(disk_latency) * 100,
        model.rollback_probability(flash_latency) * 100))
    print("  committed-throughput speedup: %.1fx (naive Amdahl bound: %.1fx)" % (
        model.speedup(disk_latency, flash_latency),
        naive_speedup_bound(0.6, 0.4, disk_latency / flash_latency)))


if __name__ == "__main__":
    main()
