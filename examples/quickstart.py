"""Quickstart: create an array, write, read, snapshot, clone.

Run:  python examples/quickstart.py
"""

from repro import ArrayConfig, PurityArray
from repro.units import KIB, MIB, format_bytes


def main():
    # A miniature array: identical code paths to paper scale, sized so
    # the example runs in seconds. Use ArrayConfig.paper_scale() for
    # the published 8 MiB AU / 1 MiB write-unit / 7+2 geometry.
    config = ArrayConfig.small(num_drives=11, drive_capacity=16 * MIB)
    array = PurityArray.create(config)
    print("Array: %d drives, %s raw, 7+2 Reed-Solomon" % (
        config.num_drives, format_bytes(config.raw_capacity_bytes)))

    # Volumes are thin-provisioned virtual block devices.
    array.create_volume("db", 4 * MIB)

    # Writes are acknowledged from NVRAM in tens of microseconds.
    page = (b"customers|id=%04d|name=smith|balance=100.00|" % 7) * 200
    page = page[: 8 * KIB].ljust(8 * KIB, b"\x00")
    latency = array.write("db", 0, page)
    print("write acknowledged in %.1f us" % (latency * 1e6))

    data, latency = array.read("db", 0, 8 * KIB)
    assert data == page
    print("read back %d bytes in %.1f us" % (len(data), latency * 1e6))

    # Duplicate data deduplicates; structured data compresses.
    for copy in range(8):
        array.write("db", 64 * KIB + copy * 16 * KIB, page + page)
    report = array.reduction_report()
    print("data reduction: %.1fx (dedup %.1fx x compression %.1fx)" % (
        report.data_reduction, report.dedup_ratio, report.compression_ratio))

    # Snapshots and clones are instant medium-table operations.
    array.snapshot("db", "before-upgrade")
    array.write("db", 0, b"\xff" * (8 * KIB))  # "the upgrade went badly"
    array.clone("db", "before-upgrade", "db-restored")
    restored, _ = array.read("db-restored", 0, 8 * KIB)
    assert restored == page
    print("snapshot restore: original page recovered after overwrite")

    # Controllers are stateless: crash one and recover over the drives.
    shelf, boot_region, clock = array.crash()
    recovered, recovery = PurityArray.recover(config, shelf, boot_region, clock)
    print("controller recovery in %.3f s (%d facts, %d replayed writes)" % (
        recovery.total_latency, recovery.facts_recovered,
        recovery.raw_writes_replayed))
    data, _ = recovered.read("db-restored", 0, 8 * KIB)
    assert data == page
    print("all data intact after failover. done.")


if __name__ == "__main__":
    main()
