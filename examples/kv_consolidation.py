"""Scale-out consolidation: replacing a disk KV cluster (Section 2.3).

The paper argues that deployments which once forced applications onto
hundred-node disk-backed key-value clusters now fit on one array. This
example runs a YCSB-style workload against the simulated array, derives
the equivalent disk-cluster size from the KV-node model, and regenerates
the Table 2 consolidation ratios.

Run:  python examples/kv_consolidation.py
"""

from repro import ArrayConfig, PurityArray
from repro.analysis.consolidation import consolidation_table
from repro.analysis.reporting import format_table
from repro.baselines.kvcluster import KVCluster, KVNode
from repro.sim.distributions import percentile
from repro.sim.rand import RandomStream
from repro.units import KIB, MIB
from repro.workloads.base import run_trace
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def main():
    # One array serving a key-value workload (YCSB B: 95% reads).
    array = PurityArray.create(
        ArrayConfig.small(num_drives=11, drive_capacity=64 * MIB,
                          cblock_cache_entries=8)
    )
    config = YCSBConfig(mix="B", record_count=64, record_size=32 * KIB)
    workload = YCSBWorkload(config, RandomStream(2015))
    array.create_volume(workload.volume, workload.volume_size)
    run_trace(array, workload.load_trace())
    reads, writes = run_trace(array, workload.run_trace(400))
    print("YCSB B on the array: %d ops, read p50 %.0f us, p99 %.0f us" % (
        len(reads) + len(writes),
        percentile(reads, 0.5) * 1e6,
        percentile(reads, 0.99) * 1e6))

    # What would the same service cost in disk KV-cluster machines?
    node = KVNode()
    node_ops = node.ops_per_second(read_fraction=0.95)
    print("one disk-backed KV node sustains ~%.0f ops/s "
          "(the paper's YCSB citation: ~1600)" % node_ops)
    cluster_nodes = KVCluster(1).nodes_for_throughput(200_000)
    print("matching one FA-450 (200K 32 KiB ops/s) needs ~%d cluster nodes"
          % cluster_nodes)

    # Regenerate Table 2 with the simulated per-node throughput.
    rows = []
    for row in consolidation_table(node_ops=node_ops):
        rows.append([
            row["service"], row["scale"], row["nodes"],
            round(row["fa450_equivalents"], 1),
            round(row["nodes_per_array"], 1) if row["nodes_per_array"] else "-",
        ])
    print()
    print(format_table(
        ["Service", "Published scale", "Nodes", "~FA-450s", "Nodes/array"],
        rows, title="Table 2, regenerated"))
    print("\nconsolidation ratios land in the paper's 100-250:1 band. done.")


if __name__ == "__main__":
    main()
