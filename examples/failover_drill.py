"""The sales demo from Section 1: pull drives and kill controllers.

"We encourage potential customers to pull drives and unplug controllers
as they evaluate Purity." This example does exactly that while a
workload runs: two SSDs are pulled mid-run, the primary controller is
killed, and the surviving controller recovers well inside the 30-second
client timeout — with every acknowledged write intact. Finally the
volume is replicated to a second (disaster-recovery) array.

Run:  python examples/failover_drill.py
"""

from repro import ArrayConfig, AsyncReplicator, PurityArray
from repro.core.ha import DualControllerArray
from repro.sim.rand import RandomStream
from repro.units import KIB, MIB, format_bytes


def main():
    config = ArrayConfig.small(num_drives=12, drive_capacity=32 * MIB)
    appliance = DualControllerArray(config)
    appliance.create_volume("prod", 4 * MIB)
    stream = RandomStream(99)

    # A steady write workload; remember everything we acknowledged.
    acknowledged = {}

    def write_some(count, base):
        for index in range(count):
            offset = (base + index * 16) * KIB % (4 * MIB - 16 * KIB)
            payload = stream.randbytes(16 * KIB)
            appliance.write("prod", offset, payload)
            acknowledged[offset] = payload

    write_some(30, base=0)
    print("wrote %s across the volume" % format_bytes(30 * 16 * KIB))

    # Pull two drives mid-demo. 7+2 Reed-Solomon shrugs.
    victims = list(appliance.active.drives)[:2]
    for name in victims:
        appliance.active.fail_drive(name)
    print("pulled drives: %s" % ", ".join(victims))
    appliance.active.datapath.drop_caches()
    for offset, payload in acknowledged.items():
        data, _ = appliance.read("prod", offset, 16 * KIB)
        assert data == payload
    print("all data still readable through reconstruction")

    # Keep writing in degraded mode.
    write_some(10, base=1000)

    # Now kill the serving controller.
    result = appliance.fail_primary()
    print("controller failover: %.3f s downtime (client timeout is 30 s)"
          % result.downtime)
    assert result.within_client_timeout
    appliance.active.fail_drive(victims[0])  # re-register pulled drives
    appliance.active.fail_drive(victims[1])
    for offset, payload in acknowledged.items():
        data, _ = appliance.read("prod", offset, 16 * KIB)
        assert data == payload
    print("every acknowledged write survived the failover")

    # Rebuild full redundancy onto the surviving drives.
    rebuilt = appliance.active.rebuild()
    print("rebuild re-protected %d segments" % rebuilt)

    # Asynchronous off-site replication to a DR array.
    dr_array = PurityArray.create(
        ArrayConfig.small(num_drives=11, drive_capacity=32 * MIB, seed=5),
        clock=appliance.clock,
    )
    replicator = AsyncReplicator(appliance.active, dr_array)
    cycle = replicator.replicate("prod")
    print("replicated %s to the DR site (%d chunks, %.2f s of link time)" % (
        format_bytes(cycle.bytes_shipped), cycle.chunks_shipped,
        cycle.link_seconds))
    for offset, payload in acknowledged.items():
        data, _ = dr_array.read("prod", offset, 16 * KIB)
        assert data == payload
    print("DR copy verified byte-for-byte. done.")


if __name__ == "__main__":
    main()
