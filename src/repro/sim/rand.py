"""Deterministic random streams.

Every stochastic component takes a :class:`RandomStream` so experiments
are reproducible from a single seed. Independent components get
independent substreams derived from a parent via :meth:`RandomStream.fork`,
keeping results stable when unrelated components add or remove draws.
"""

import hashlib
import random

#: When True (the test suite turns it on via the root conftest), a
#: :class:`RandomStream` constructed without an explicit seed raises —
#: catching code that silently leans on the default seed and code paths
#: that would otherwise hide an unseeded draw behind "seed 0 worked".
STRICT_SEEDING = False

_DEFAULT = object()


class RandomStream:
    """A seeded random source with named, independent substreams."""

    def __init__(self, seed=_DEFAULT):
        if seed is _DEFAULT:
            if STRICT_SEEDING:
                raise ValueError(
                    "RandomStream() without an explicit seed while "
                    "repro.sim.rand.STRICT_SEEDING is on: pass a seed so "
                    "the run is reproducible"
                )
            seed = 0
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, name):
        """Return an independent stream derived from this one.

        The child seed depends only on the parent seed and ``name``, so
        forking order does not matter. Derivation uses a real hash, not
        Python's ``hash()`` — the latter is salted per process, which
        would make "deterministic" simulations differ run to run.
        """
        digest = hashlib.blake2b(
            ("%s|%s" % (self.seed, name)).encode("utf-8"), digest_size=6
        ).digest()
        return RandomStream(int.from_bytes(digest, "big"))

    def random(self):
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def uniform(self, low, high):
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def randint(self, low, high):
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def expovariate(self, rate):
        """Exponential variate with the given rate (1/mean)."""
        return self._rng.expovariate(rate)

    def lognormvariate(self, mu, sigma):
        """Log-normal variate with underlying normal (mu, sigma)."""
        return self._rng.lognormvariate(mu, sigma)

    def gauss(self, mu, sigma):
        """Normal variate."""
        return self._rng.gauss(mu, sigma)

    def choice(self, seq):
        """Uniformly chosen element of a non-empty sequence."""
        return self._rng.choice(seq)

    def sample(self, population, k):
        """k distinct elements sampled without replacement."""
        return self._rng.sample(population, k)

    def shuffle(self, seq):
        """Shuffle a mutable sequence in place."""
        self._rng.shuffle(seq)

    def randbytes(self, n):
        """n random bytes."""
        return self._rng.randbytes(n)

    def zipf_index(self, n, theta=0.99):
        """Index in [0, n) drawn from a Zipf-like (YCSB-style) skew.

        Uses the standard inverse-CDF approximation over harmonic sums,
        cached per (n, theta).
        """
        key = (n, theta)
        cache = getattr(self, "_zipf_cache", None)
        if cache is None:
            cache = {}
            self._zipf_cache = cache
        cdf = cache.get(key)
        if cdf is None:
            weights = [1.0 / ((i + 1) ** theta) for i in range(n)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cache[key] = cdf
        target = self._rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo
