"""Event loop and lightweight processes for the simulator.

Two styles of simulation are supported:

* **Callback style** — :meth:`EventLoop.call_in` / :meth:`EventLoop.call_at`
  schedule plain callables; :meth:`EventLoop.run` drains the queue in
  timestamp order, advancing the shared :class:`~repro.sim.clock.SimClock`.

* **Process style** — a generator passed to :meth:`EventLoop.process`
  may ``yield`` a float (sleep that many simulated seconds) or an
  :class:`Event` (suspend until someone calls :meth:`Event.succeed`).
  This mirrors the event-driven request handlers Section 4.4 describes,
  at simulation granularity rather than per-core granularity.

Most device models do not need processes at all: they compute a
completion time from per-device queues analytically. Processes are used
by workload generators in benchmarks.
"""

import heapq
import itertools

from repro.errors import PurityError


class SimulationError(PurityError):
    """Misuse of the event loop (e.g. scheduling in the past)."""


class Event:
    """A one-shot condition processes can wait on.

    ``succeed(value)`` wakes every waiting process, delivering ``value``
    as the result of its ``yield``.
    """

    def __init__(self, loop):
        self._loop = loop
        self._waiters = []
        self.triggered = False
        self.value = None

    def succeed(self, value=None):
        """Trigger the event, waking all current waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._loop.call_in(0.0, process._resume, value)

    def _add_waiter(self, process):
        if self.triggered:
            self._loop.call_in(0.0, process._resume, self.value)
        else:
            self._waiters.append(process)


class Process:
    """A running generator-based simulation process."""

    def __init__(self, loop, generator):
        self._loop = loop
        self._generator = generator
        self.finished = False
        self.result = None
        self._completion = Event(loop)

    @property
    def completion(self):
        """Event triggered (with the return value) when the process ends."""
        return self._completion

    def _resume(self, value=None):
        if self.finished:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._completion.succeed(stop.value)
            return
        if isinstance(yielded, Event):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.completion._add_waiter(self)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError("process slept negative time %r" % yielded)
            self._loop.call_in(float(yielded), self._resume, None)
        else:
            raise SimulationError(
                "process yielded %r; expected delay, Event, or Process" % (yielded,)
            )


class EventLoop:
    """Priority-queue discrete-event loop over a shared clock."""

    def __init__(self, clock):
        self.clock = clock
        self._queue = []
        self._counter = itertools.count()

    def __len__(self):
        return len(self._queue)

    def call_at(self, timestamp, callback, *args):
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if timestamp < self.clock.now - 1e-12:
            raise SimulationError(
                "cannot schedule at %.9f, now is %.9f" % (timestamp, self.clock.now)
            )
        heapq.heappush(
            self._queue, (max(timestamp, self.clock.now), next(self._counter), callback, args)
        )

    def call_in(self, delay, callback, *args):
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        self.call_at(self.clock.now + delay, callback, *args)

    def event(self):
        """Create a fresh :class:`Event` bound to this loop."""
        return Event(self)

    def process(self, generator):
        """Start a generator as a simulation process; returns the Process."""
        proc = Process(self, generator)
        self.call_in(0.0, proc._resume, None)
        return proc

    def step(self):
        """Run the single earliest pending event; returns False if idle."""
        if not self._queue:
            return False
        timestamp, _seq, callback, args = heapq.heappop(self._queue)
        self.clock.advance_to(timestamp)
        callback(*args)
        return True

    def run(self, until=None, max_events=None):
        """Drain the queue in time order.

        Stops when the queue empties, when the next event lies beyond
        ``until`` (clock is then advanced to ``until``), or after
        ``max_events`` dispatches (a runaway-simulation guard).
        Returns the number of events dispatched.
        """
        dispatched = 0
        while self._queue:
            if max_events is not None and dispatched >= max_events:
                break
            if until is not None and self._queue[0][0] > until:
                self.clock.advance_to(until)
                return dispatched
            self.step()
            dispatched += 1
        if until is not None:
            self.clock.advance_to(until)
        return dispatched
