"""Latency distributions for device service-time models.

Each distribution exposes ``sample(stream)`` drawing one latency in
seconds from a :class:`repro.sim.rand.RandomStream`, and ``mean()`` for
analytic uses. SSD read latency under interference is modelled as a
:class:`Mixture` of a fast path and a heavy slow tail, matching the
erase-induced stalls Section 2.1 of the paper describes.
"""

import math


class Distribution:
    """Base interface for one-dimensional latency distributions."""

    def sample(self, stream):
        """Draw one value using the given random stream."""
        raise NotImplementedError

    def mean(self):
        """Analytic mean of the distribution."""
        raise NotImplementedError


class Constant(Distribution):
    """Degenerate distribution: always ``value``."""

    def __init__(self, value):
        if value < 0:
            raise ValueError("latency must be non-negative, got %r" % value)
        self.value = float(value)

    def sample(self, stream):
        return self.value

    def mean(self):
        return self.value

    def __repr__(self):
        return "Constant(%.3g)" % self.value


class Uniform(Distribution):
    """Uniform over [low, high]."""

    def __init__(self, low, high):
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high, got %r, %r" % (low, high))
        self.low = float(low)
        self.high = float(high)

    def sample(self, stream):
        return stream.uniform(self.low, self.high)

    def mean(self):
        return (self.low + self.high) / 2.0

    def __repr__(self):
        return "Uniform(%.3g, %.3g)" % (self.low, self.high)


class Exponential(Distribution):
    """Exponential with the given mean."""

    def __init__(self, mean):
        if mean <= 0:
            raise ValueError("mean must be positive, got %r" % mean)
        self._mean = float(mean)

    def sample(self, stream):
        return stream.expovariate(1.0 / self._mean)

    def mean(self):
        return self._mean

    def __repr__(self):
        return "Exponential(mean=%.3g)" % self._mean


class LogNormal(Distribution):
    """Log-normal parameterized by its own median and sigma.

    ``median`` is the distribution median (exp(mu)); ``sigma`` is the
    shape parameter of the underlying normal.
    """

    def __init__(self, median, sigma):
        if median <= 0:
            raise ValueError("median must be positive, got %r" % median)
        if sigma < 0:
            raise ValueError("sigma must be non-negative, got %r" % sigma)
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)

    def sample(self, stream):
        return stream.lognormvariate(self._mu, self.sigma)

    def mean(self):
        return math.exp(self._mu + self.sigma ** 2 / 2.0)

    def __repr__(self):
        return "LogNormal(median=%.3g, sigma=%.3g)" % (self.median, self.sigma)


class Mixture(Distribution):
    """Weighted mixture of component distributions.

    ``components`` is a list of ``(weight, distribution)`` pairs; weights
    are normalized internally.
    """

    def __init__(self, components):
        if not components:
            raise ValueError("mixture needs at least one component")
        total = float(sum(w for w, _ in components))
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self.components = [(w / total, dist) for w, dist in components]

    def sample(self, stream):
        target = stream.random()
        acc = 0.0
        for weight, dist in self.components:
            acc += weight
            if target < acc:
                return dist.sample(stream)
        return self.components[-1][1].sample(stream)

    def mean(self):
        return sum(w * dist.mean() for w, dist in self.components)

    def __repr__(self):
        parts = ", ".join("%.3g:%r" % (w, d) for w, d in self.components)
        return "Mixture(%s)" % parts


def percentile(samples, fraction):
    """The ``fraction`` quantile of ``samples`` (nearest-rank, inclusive).

    ``fraction`` is in [0, 1]; e.g. 0.999 gives the 99.9th percentile.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1], got %r" % fraction)
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]
