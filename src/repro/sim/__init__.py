"""Discrete-event simulation substrate.

The paper evaluates Purity on physical hardware; here, device timing is
produced by a small discrete-event simulator. :class:`SimClock` carries
the current simulated time, :class:`EventLoop` schedules and runs
callbacks, and :mod:`repro.sim.distributions` provides the latency
distributions the device models draw from.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventLoop, Process
from repro.sim.rand import RandomStream
from repro.sim.distributions import (
    Constant,
    Exponential,
    LogNormal,
    Mixture,
    Uniform,
    percentile,
)

__all__ = [
    "SimClock",
    "Event",
    "EventLoop",
    "Process",
    "RandomStream",
    "Constant",
    "Exponential",
    "LogNormal",
    "Mixture",
    "Uniform",
    "percentile",
]
