"""Simulated wall clock.

All device models and the array share one :class:`SimClock`. Time is a
float number of seconds and only ever moves forward; the event loop is
the sole advancer during simulation runs, but tests may call
:meth:`SimClock.advance` directly.
"""

from repro.errors import PurityError


class ClockError(PurityError):
    """Attempt to move the simulated clock backwards."""


class SimClock:
    """Monotonically increasing simulated time in seconds."""

    def __init__(self, start=0.0):
        self._now = float(start)

    @property
    def now(self):
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta):
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ClockError("cannot advance clock by negative delta %r" % delta)
        self._now += delta
        return self._now

    def advance_to(self, timestamp):
        """Move time forward to ``timestamp`` (no-op if already past it)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self):
        return "SimClock(now=%.9f)" % self._now
