"""Workload abstractions: operations, traces, and the driver loop."""

import enum
from dataclasses import dataclass


class OpKind(enum.Enum):
    """The I/O operation classes arrays serve."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class IOOperation:
    """One array operation a workload emits."""

    kind: OpKind
    volume: str
    offset: int
    length: int = 0
    data: bytes = b""

    def __post_init__(self):
        if self.kind is OpKind.WRITE and not self.data:
            raise ValueError("write operations carry data")
        if self.kind is OpKind.READ and self.length <= 0:
            raise ValueError("read operations need a positive length")


class IOTrace:
    """A finite recorded sequence of operations plus summary stats."""

    def __init__(self, operations=()):
        self.operations = list(operations)

    def __len__(self):
        return len(self.operations)

    def __iter__(self):
        return iter(self.operations)

    def append(self, operation):
        self.operations.append(operation)

    @property
    def bytes_written(self):
        return sum(
            len(op.data) for op in self.operations if op.kind is OpKind.WRITE
        )

    @property
    def bytes_read(self):
        return sum(
            op.length for op in self.operations if op.kind is OpKind.READ
        )

    @property
    def mean_io_size(self):
        """Mean transfer size across all operations (paper: ~55 KiB)."""
        sizes = [
            len(op.data) if op.kind is OpKind.WRITE else op.length
            for op in self.operations
        ]
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)


def run_trace(array, trace, advance_clock=True):
    """Drive a trace against an array; returns (read latencies, write
    latencies) in operation order."""
    read_latencies = []
    write_latencies = []
    for op in trace:
        if op.kind is OpKind.WRITE:
            latency = array.write(
                op.volume, op.offset, op.data, advance_clock=advance_clock
            )
            write_latencies.append(latency)
        else:
            _data, latency = array.read(
                op.volume, op.offset, op.length, advance_clock=advance_clock
            )
            read_latencies.append(latency)
    return read_latencies, write_latencies
