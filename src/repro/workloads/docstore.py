"""A document-store (MongoDB-style) workload.

Documents are verbose, self-describing, and repetitive — the paper
reports ~10x reduction for document stores. The generator emits batches
of JSON-shaped documents with shared schema vocabulary (compression
feast) and frequent near-identical documents (dedup feast), written in
large sequential batches as storage engines do.
"""

from dataclasses import dataclass

from repro.units import KIB, SECTOR, align_up
from repro.workloads.base import IOOperation, IOTrace, OpKind


@dataclass(frozen=True)
class DocStoreConfig:
    """Parameters of one simulated document collection."""

    document_size: int = 2 * KIB
    documents_per_batch: int = 32
    batch_count: int = 32
    #: Fraction of documents that are boilerplate copies of a template.
    template_fraction: float = 0.6
    read_fraction: float = 0.5


class DocStoreWorkload:
    """Generates collection loads and mixed operations."""

    def __init__(self, config, stream, volume="docs"):
        self.config = config
        self.stream = stream
        self.volume = volume
        self._templates = [self._fresh_document(i) for i in range(8)]
        self._written_batches = 0

    def _fresh_document(self, doc_id):
        body = (
            b'{"_id": "%016x", "type": "order", "status": "open", '
            b'"customer": {"region": "us-west", "tier": "gold"}, '
            b'"lines": [{"sku": "%08d", "qty": 1, "price": 9.99}], '
            b'"audit": {"created_by": "svc", "notes": "%s"}}'
        ) % (doc_id, doc_id % 10 ** 8, b"n" * 64)
        padded = body + b" " * (self.config.document_size - len(body) % self.config.document_size)
        return padded[: self.config.document_size]

    def _document(self, doc_id):
        if self.stream.random() < self.config.template_fraction:
            return self.stream.choice(self._templates)
        return self._fresh_document(doc_id)

    @property
    def batch_bytes(self):
        raw = self.config.document_size * self.config.documents_per_batch
        return align_up(raw, SECTOR)

    @property
    def volume_size(self):
        return self.batch_bytes * self.config.batch_count * 2

    def _batch_payload(self, batch_index):
        docs = b"".join(
            self._document(batch_index * 1000 + i)
            for i in range(self.config.documents_per_batch)
        )
        return docs + b"\x00" * (self.batch_bytes - len(docs))

    def load_trace(self):
        """Bulk-load the collection."""
        trace = IOTrace()
        for batch in range(self.config.batch_count):
            trace.append(
                IOOperation(
                    kind=OpKind.WRITE,
                    volume=self.volume,
                    offset=batch * self.batch_bytes,
                    data=self._batch_payload(batch),
                )
            )
        self._written_batches = self.config.batch_count
        return trace

    def run_trace(self, operations):
        """Mixed batch reads and new batch appends.

        Appends stop at the volume's end; once full, remaining
        operations become reads.
        """
        max_batches = self.volume_size // self.batch_bytes
        trace = IOTrace()
        for _ in range(operations):
            full = self._written_batches >= max_batches
            if full or self.stream.random() < self.config.read_fraction:
                batch = self.stream.randint(0, self._written_batches - 1)
                trace.append(
                    IOOperation(
                        kind=OpKind.READ,
                        volume=self.volume,
                        offset=batch * self.batch_bytes,
                        length=self.batch_bytes,
                    )
                )
            else:
                batch = self._written_batches
                self._written_batches += 1
                trace.append(
                    IOOperation(
                        kind=OpKind.WRITE,
                        volume=self.volume,
                        offset=batch * self.batch_bytes,
                        data=self._batch_payload(batch),
                    )
                )
        return trace
