"""YCSB-style key-value workloads (Section 2.3's comparison basis).

The standard mixes A-F over a fixed record population, mapped onto a
block volume: record ``i`` lives at ``i * record_size``. Key choice is
Zipf-skewed like the YCSB default.
"""

from dataclasses import dataclass

from repro.units import KIB
from repro.workloads.base import IOOperation, IOTrace, OpKind
from repro.workloads.datagen import DataGenerator

#: (read fraction, update fraction, insert fraction) per standard mix.
YCSB_MIXES = {
    "A": (0.50, 0.50, 0.00),  # update heavy
    "B": (0.95, 0.05, 0.00),  # read mostly
    "C": (1.00, 0.00, 0.00),  # read only
    "D": (0.95, 0.00, 0.05),  # read latest
    "E": (0.95, 0.00, 0.05),  # short ranges (approximated as reads)
    "F": (0.50, 0.50, 0.00),  # read-modify-write
}


@dataclass(frozen=True)
class YCSBConfig:
    """Parameters of one YCSB run."""

    mix: str = "B"
    record_count: int = 256
    record_size: int = 32 * KIB  # the paper's pessimistic object size
    zipf_theta: float = 0.99
    data_profile: str = "docstore"

    def __post_init__(self):
        if self.mix not in YCSB_MIXES:
            raise ValueError("unknown YCSB mix %r" % self.mix)
        if self.record_size % 512:
            raise ValueError("record size must be sector aligned")


class YCSBWorkload:
    """Generates load and run traces for one YCSB configuration."""

    def __init__(self, config, stream, volume="ycsb"):
        self.config = config
        self.stream = stream
        self.volume = volume
        self.generator = DataGenerator(
            config.data_profile, stream.fork("data"), block_size=4096
        )
        self._inserted = 0

    @property
    def volume_size(self):
        # Headroom for inserts beyond the initial population.
        return self.config.record_count * self.config.record_size * 2

    def _record_payload(self):
        size = self.config.record_size
        block = self.generator.block_size
        return self.generator.buffer((size // block) * block) + b"\x00" * (
            size % block
        )

    def _offset_of(self, record_index):
        return record_index * self.config.record_size

    def load_trace(self):
        """The initial population phase."""
        trace = IOTrace()
        for record in range(self.config.record_count):
            trace.append(
                IOOperation(
                    kind=OpKind.WRITE,
                    volume=self.volume,
                    offset=self._offset_of(record),
                    data=self._record_payload(),
                )
            )
        self._inserted = self.config.record_count
        return trace

    def run_trace(self, operations):
        """``operations`` transactions of the configured mix."""
        read_fraction, update_fraction, _insert_fraction = YCSB_MIXES[
            self.config.mix
        ]
        trace = IOTrace()
        for _ in range(operations):
            roll = self.stream.random()
            if roll < read_fraction:
                record = self.stream.zipf_index(
                    self._inserted, self.config.zipf_theta
                )
                trace.append(
                    IOOperation(
                        kind=OpKind.READ,
                        volume=self.volume,
                        offset=self._offset_of(record),
                        length=self.config.record_size,
                    )
                )
            elif roll < read_fraction + update_fraction:
                record = self.stream.zipf_index(
                    self._inserted, self.config.zipf_theta
                )
                trace.append(
                    IOOperation(
                        kind=OpKind.WRITE,
                        volume=self.volume,
                        offset=self._offset_of(record),
                        data=self._record_payload(),
                    )
                )
            else:
                record = self._inserted
                self._inserted += 1
                trace.append(
                    IOOperation(
                        kind=OpKind.WRITE,
                        volume=self.volume,
                        offset=self._offset_of(record),
                        data=self._record_payload(),
                    )
                )
        return trace
