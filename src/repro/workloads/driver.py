"""Open-loop workload driving over the discrete-event loop.

Closed-loop drivers (``run_trace``) issue the next operation when the
previous acknowledges — fine for correctness, wrong for tail-latency
claims, where what matters is how the array behaves under an *arrival
process* it does not control. :class:`OpenLoopDriver` schedules
operations at exponential (Poisson) interarrival times on the shared
simulation clock and records each operation's acknowledged latency.

The paper's "typical installations have 99.9 % latencies under 1 ms" is
a statement about exactly this regime: offered load comfortably below
saturation.
"""

from dataclasses import dataclass, field

from repro.sim.events import EventLoop
from repro.workloads.base import OpKind


@dataclass
class DriveResult:
    """Latencies collected by one open-loop run."""

    read_latencies: list = field(default_factory=list)
    write_latencies: list = field(default_factory=list)
    operations: int = 0
    elapsed: float = 0.0

    @property
    def offered_rate(self):
        """Operations per second the driver actually offered."""
        if self.elapsed <= 0:
            return 0.0
        return self.operations / self.elapsed


class OpenLoopDriver:
    """Issues a trace at a Poisson arrival rate against one array."""

    def __init__(self, array, arrival_rate, stream):
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.array = array
        self.arrival_rate = arrival_rate
        self.stream = stream

    def run(self, trace):
        """Drive every operation of ``trace``; returns a DriveResult.

        Operations are scheduled at their arrival times on the array's
        clock; each executes without advancing the clock itself (the
        event loop owns time), so concurrent arrivals contend on the
        simulated devices exactly as an open system would.
        """
        loop = EventLoop(self.array.clock)
        result = DriveResult()
        start = self.array.clock.now
        arrival = start
        for op in trace:
            arrival += self.stream.expovariate(self.arrival_rate)
            loop.call_at(arrival, self._execute, op, result)
        loop.run()
        result.elapsed = max(self.array.clock.now - start, arrival - start)
        return result

    def _execute(self, op, result):
        if op.kind is OpKind.WRITE:
            latency = self.array.write(
                op.volume, op.offset, op.data, advance_clock=False
            )
            result.write_latencies.append(latency)
        else:
            _data, latency = self.array.read(
                op.volume, op.offset, op.length, advance_clock=False
            )
            result.read_latencies.append(latency)
        result.operations += 1
