"""An OLTP / relational-database page workload.

Models the I/O shape of the paper's flagship customer workload (Oracle,
SQL Server): fixed-size pages with structured headers updated under a
Zipf skew, a sequential redo log with its own transfer size, and
prefetch-style multi-page reads — the behaviour that defeats per-volume
block-size tuning (Section 4.6) and reduces 3-8x (Section 5.2).
"""

from dataclasses import dataclass

from repro.units import KIB
from repro.workloads.base import IOOperation, IOTrace, OpKind
from repro.workloads.datagen import DataGenerator


@dataclass(frozen=True)
class OLTPConfig:
    """Parameters of one simulated database instance."""

    page_size: int = 8 * KIB
    page_count: int = 512
    log_write_size: int = 32 * KIB
    log_region_pages: int = 128
    read_fraction: float = 0.70
    log_write_fraction: float = 0.25  # of writes
    prefetch_pages: int = 4
    prefetch_probability: float = 0.3
    zipf_theta: float = 0.9
    data_profile: str = "rdbms"


class OLTPWorkload:
    """Generates database-shaped traces over one volume."""

    def __init__(self, config, stream, volume="oltp"):
        self.config = config
        self.stream = stream
        self.volume = volume
        self.generator = DataGenerator(
            config.data_profile, stream.fork("pages"),
            block_size=config.page_size,
        )
        self.log_generator = DataGenerator(
            "rdbms", stream.fork("log"), block_size=4096
        )
        self._log_cursor = 0

    @property
    def data_region_bytes(self):
        return self.config.page_count * self.config.page_size

    @property
    def log_region_bytes(self):
        return self.config.log_region_pages * self.config.log_write_size

    @property
    def volume_size(self):
        return self.data_region_bytes + self.log_region_bytes

    def _page_offset(self, page):
        return page * self.config.page_size

    def _log_write(self):
        offset = self.data_region_bytes + self._log_cursor
        self._log_cursor = (
            self._log_cursor + self.config.log_write_size
        ) % self.log_region_bytes
        return IOOperation(
            kind=OpKind.WRITE,
            volume=self.volume,
            offset=offset,
            data=self.log_generator.buffer(self.config.log_write_size),
        )

    def load_trace(self):
        """Populate every data page once."""
        trace = IOTrace()
        for page in range(self.config.page_count):
            trace.append(
                IOOperation(
                    kind=OpKind.WRITE,
                    volume=self.volume,
                    offset=self._page_offset(page),
                    data=self.generator.buffer(self.config.page_size),
                )
            )
        return trace

    def run_trace(self, operations):
        """``operations`` of mixed page reads, page writes, log writes."""
        config = self.config
        trace = IOTrace()
        for _ in range(operations):
            if self.stream.random() < config.read_fraction:
                page = self.stream.zipf_index(config.page_count, config.zipf_theta)
                pages = 1
                if self.stream.random() < config.prefetch_probability:
                    pages = min(
                        config.prefetch_pages, config.page_count - page
                    )
                trace.append(
                    IOOperation(
                        kind=OpKind.READ,
                        volume=self.volume,
                        offset=self._page_offset(page),
                        length=pages * config.page_size,
                    )
                )
            elif self.stream.random() < config.log_write_fraction:
                trace.append(self._log_write())
            else:
                page = self.stream.zipf_index(config.page_count, config.zipf_theta)
                trace.append(
                    IOOperation(
                        kind=OpKind.WRITE,
                        volume=self.volume,
                        offset=self._page_offset(page),
                        data=self.generator.buffer(config.page_size),
                    )
                )
        return trace
