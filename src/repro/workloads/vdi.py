"""A virtual-desktop (VDI) fleet workload.

Section 5.3: thousands of near-identical virtual machine images —
cash registers, terminals, standardized desktops — deduplicate at 20x
or better. The generator builds one gold OS image, "boots" many
desktops from it (each image differs only in small per-machine deltas),
and then applies a software update that rewrites the same blocks in
every image (which Purity re-deduplicates across the fleet).
"""

from dataclasses import dataclass

from repro.units import KIB
from repro.workloads.base import IOOperation, IOTrace, OpKind
from repro.workloads.datagen import DataGenerator


@dataclass(frozen=True)
class VDIConfig:
    """Parameters of one simulated desktop fleet."""

    image_blocks: int = 24  # blocks per OS image
    block_size: int = 16 * KIB
    desktop_count: int = 12
    #: Fraction of each desktop's image that diverges from gold.
    delta_fraction: float = 0.05
    #: Fraction of the image a software update rewrites (same bytes on
    #: every desktop).
    update_fraction: float = 0.25


class VDIWorkload:
    """Generates fleet provisioning and patching traces.

    Each desktop is one volume named ``desktop<N>``.
    """

    def __init__(self, config, stream):
        self.config = config
        self.stream = stream
        generator = DataGenerator("virtualization", stream.fork("gold"),
                                  block_size=config.block_size)
        self._gold = [generator.block() for _ in range(config.image_blocks)]
        self._update_gen = DataGenerator(
            "virtualization", stream.fork("update"), block_size=config.block_size
        )
        self._update_blocks = None

    @property
    def image_bytes(self):
        return self.config.image_blocks * self.config.block_size

    @property
    def volume_size(self):
        return self.image_bytes

    def volume_names(self):
        return ["desktop%03d" % index for index in range(self.config.desktop_count)]

    def provision_trace(self):
        """Every desktop writes its (nearly identical) image."""
        config = self.config
        trace = IOTrace()
        delta_blocks = max(1, int(config.image_blocks * config.delta_fraction))
        for _desktop, volume in enumerate(self.volume_names()):
            delta_at = set(
                self.stream.sample(range(config.image_blocks), delta_blocks)
            )
            for block_index in range(config.image_blocks):
                if block_index in delta_at:
                    payload = self.stream.randbytes(config.block_size)
                else:
                    payload = self._gold[block_index]
                trace.append(
                    IOOperation(
                        kind=OpKind.WRITE,
                        volume=volume,
                        offset=block_index * config.block_size,
                        data=payload,
                    )
                )
        return trace

    def update_trace(self):
        """A fleet-wide software update: identical rewrites everywhere."""
        config = self.config
        if self._update_blocks is None:
            count = max(1, int(config.image_blocks * config.update_fraction))
            positions = sorted(
                self.stream.sample(range(config.image_blocks), count)
            )
            self._update_blocks = [
                (position, self._update_gen.block()) for position in positions
            ]
        trace = IOTrace()
        for volume in self.volume_names():
            for block_index, payload in self._update_blocks:
                trace.append(
                    IOOperation(
                        kind=OpKind.WRITE,
                        volume=volume,
                        offset=block_index * config.block_size,
                        data=payload,
                    )
                )
        return trace

    def boot_storm_trace(self):
        """Every desktop reads its whole image (morning login storm)."""
        trace = IOTrace()
        for volume in self.volume_names():
            trace.append(
                IOOperation(
                    kind=OpKind.READ,
                    volume=volume,
                    offset=0,
                    length=self.image_bytes,
                )
            )
        return trace
