"""Synthetic data with controlled compressibility and duplication.

Reduction ratios must be *earned* by the engine, so the generator
controls two orthogonal knobs:

* ``compressibility`` — fraction of each block that is low-entropy
  structure (repeated tokens, zero padding) versus random payload;
* ``dup_fraction`` — probability that a generated block repeats one of
  the last ``dup_pool`` blocks exactly (what deduplication catches).

Profiles approximating the paper's workload classes are provided.
"""

from dataclasses import dataclass

from repro.units import SECTOR


@dataclass(frozen=True)
class DataProfile:
    """The redundancy structure of one workload class."""

    name: str
    compressibility: float  # 0 = pure entropy, 1 = pure structure
    dup_fraction: float  # probability a block duplicates a recent one
    dup_pool: int = 256  # how far back duplicates reach

    def __post_init__(self):
        if not 0.0 <= self.compressibility <= 1.0:
            raise ValueError("compressibility must be in [0, 1]")
        if not 0.0 <= self.dup_fraction < 1.0:
            raise ValueError("dup_fraction must be in [0, 1)")


#: Paper-aligned profiles: RDBMS 3-8x, document stores ~10x, VDI 20x+.
PROFILES = {
    "incompressible": DataProfile("incompressible", 0.0, 0.0),
    "rdbms": DataProfile("rdbms", 0.75, 0.12),
    "docstore": DataProfile("docstore", 0.85, 0.30),
    "virtualization": DataProfile("virtualization", 0.75, 0.50),
    "vdi": DataProfile("vdi", 0.75, 0.85, dup_pool=64),
}


class DataGenerator:
    """Produces sector-aligned blocks matching a :class:`DataProfile`."""

    def __init__(self, profile, stream, block_size=4096):
        if block_size % SECTOR:
            raise ValueError("block size must be a sector multiple")
        if isinstance(profile, str):
            profile = PROFILES[profile]
        self.profile = profile
        self.stream = stream
        self.block_size = block_size
        self._pool = []
        self._token_cycle = 0

    def _structured_bytes(self, length):
        """Low-entropy filler: repeated header-ish tokens."""
        self._token_cycle += 1
        token = b"field=%06d;pad....;" % (self._token_cycle % 50)
        repeated = token * (length // len(token) + 1)
        return repeated[:length]

    def _fresh_block(self):
        structured = int(self.block_size * self.profile.compressibility)
        random_part = self.stream.randbytes(self.block_size - structured)
        return self._structured_bytes(structured) + random_part

    def block(self):
        """One block: either a duplicate of a pooled block or fresh."""
        if self._pool and self.stream.random() < self.profile.dup_fraction:
            return self.stream.choice(self._pool)
        block = self._fresh_block()
        self._pool.append(block)
        if len(self._pool) > self.profile.dup_pool:
            self._pool.pop(0)
        return block

    def buffer(self, nbytes):
        """``nbytes`` of profile-shaped data (block-size granularity)."""
        if nbytes % self.block_size:
            raise ValueError(
                "buffer size %d is not a multiple of block size %d"
                % (nbytes, self.block_size)
            )
        return b"".join(self.block() for _ in range(nbytes // self.block_size))


def paper_io_size_mix(stream):
    """One transfer size from a mix averaging ~55 KiB (Section 4.6).

    Small metadata-ish I/Os, dominant 32-64 KiB database transfers, and
    occasional large prefetch runs.
    """
    roll = stream.random()
    if roll < 0.25:
        return stream.choice([4096, 8192, 16384])
    if roll < 0.85:
        return stream.choice([32768, 65536])
    return stream.choice([131072, 262144])
