"""Workload generators.

The paper's data-reduction and performance numbers come from customer
telemetry: relational databases reduce 3-8x, document stores ~10x,
virtualization 5-10x, VDI fleets 20x+; I/O requests average ~55 KiB.
These generators synthesize workloads with the same *redundancy
structure* (repeated page headers, cloned images, skewed updates) so
the engine has to earn its reduction ratios through its own dedup and
compression path.
"""

from repro.workloads.base import IOOperation, IOTrace, OpKind
from repro.workloads.datagen import DataGenerator, DataProfile
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload, YCSB_MIXES
from repro.workloads.oltp import OLTPConfig, OLTPWorkload
from repro.workloads.docstore import DocStoreConfig, DocStoreWorkload
from repro.workloads.vdi import VDIConfig, VDIWorkload

__all__ = [
    "OpKind",
    "IOOperation",
    "IOTrace",
    "DataProfile",
    "DataGenerator",
    "YCSBConfig",
    "YCSBWorkload",
    "YCSB_MIXES",
    "OLTPConfig",
    "OLTPWorkload",
    "DocStoreConfig",
    "DocStoreWorkload",
    "VDIConfig",
    "VDIWorkload",
]
