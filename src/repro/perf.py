"""Hot-path performance counters: monotonic-ns stage timers + counters.

The write/read pipeline brackets each stage (nvram-commit, hash,
dedup-verify, compress, rs-encode, segio-append, ...) with a
:meth:`PerfCounters.timer`, and caches bump named counters (cblock
cache hits/misses/evictions/invalidations). ``perf_report()`` rolls the
totals up into a plain dict benchmarks print and regress against.

This module sits below every subsystem (it imports only the standard
library) so the erasure, dedup, compression, and layout layers can all
feed the same singleton without import cycles. The friendly re-exports
live in :mod:`repro.core.telemetry`.
"""

import time


class _StageTimer:
    """Context manager charging one monotonic-ns interval to a stage."""

    __slots__ = ("_perf", "_stage", "_start")

    def __init__(self, perf, stage):
        self._perf = perf
        self._stage = stage

    def __enter__(self):
        self._start = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self._perf.add_time(self._stage, time.monotonic_ns() - self._start)
        return False


class PerfCounters:
    """Per-stage wall-time totals plus named event counters."""

    def __init__(self):
        self._total_ns = {}
        self._calls = {}
        self._counters = {}

    # -- timers --------------------------------------------------------

    def timer(self, stage):
        """``with PERF.timer("rs-encode"): ...`` charges the block."""
        return _StageTimer(self, stage)

    def add_time(self, stage, elapsed_ns):
        self._total_ns[stage] = self._total_ns.get(stage, 0) + elapsed_ns
        self._calls[stage] = self._calls.get(stage, 0) + 1

    def stage_ns(self, stage):
        return self._total_ns.get(stage, 0)

    def stage_calls(self, stage):
        return self._calls.get(stage, 0)

    # -- counters ------------------------------------------------------

    def incr(self, name, amount=1):
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name):
        return self._counters.get(name, 0)

    # -- reporting -----------------------------------------------------

    def report(self):
        """Rolled-up snapshot: stages, counters, and derived rates."""
        stages = {}
        for stage in sorted(self._total_ns):
            total_ns = self._total_ns[stage]
            calls = self._calls[stage]
            stages[stage] = {
                "calls": calls,
                "total_ms": total_ns / 1e6,
                "mean_us": (total_ns / calls) / 1e3 if calls else 0.0,
            }
        counters = {name: self._counters[name] for name in sorted(self._counters)}
        derived = {}
        hits = counters.get("cblock-cache-hit", 0)
        misses = counters.get("cblock-cache-miss", 0)
        if hits + misses:
            derived["cblock-cache-hit-rate"] = hits / (hits + misses)
        return {"stages": stages, "counters": counters, "derived": derived}

    def reset(self):
        self._total_ns.clear()
        self._calls.clear()
        self._counters.clear()


#: Process-wide counters every pipeline stage charges into.
PERF = PerfCounters()


def perf_report():
    """Snapshot of the global perf counters (see :class:`PerfCounters`)."""
    return PERF.report()


def reset_perf_counters():
    """Zero the global counters (benchmark harnesses, test isolation)."""
    PERF.reset()


def format_perf_report(report=None):
    """Human-readable rendering of :func:`perf_report` for benchmarks."""
    report = report if report is not None else perf_report()
    lines = ["stage                    calls     total_ms     mean_us"]
    for stage, row in report["stages"].items():
        lines.append(
            "%-22s %8d %12.3f %11.3f"
            % (stage, row["calls"], row["total_ms"], row["mean_us"])
        )
    if report["counters"]:
        lines.append("counters:")
        for name, value in report["counters"].items():
            lines.append("  %-28s %12d" % (name, value))
    for name, value in report["derived"].items():
        lines.append("  %-28s %12.3f" % (name, value))
    return "\n".join(lines)
