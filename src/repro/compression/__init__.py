"""Compression and the cblock on-disk format (paper Section 4.6).

Mediums store application data as *cblocks*: compressed blocks sized to
match application writes, from one 512 B sector up to 32 KiB. Because
the layout is log-structured, cblocks pack tightly with no alignment
padding — the compression win the paper contrasts with update-in-place
systems.
"""

from repro.compression.engine import (
    CompressionStats,
    Compressor,
    NullCompressor,
    ZlibCompressor,
    best_effort_compress,
    decompress_payload,
)
from repro.compression.cblock import (
    build_cblock,
    cblock_logical_length,
    parse_cblock,
    split_write,
)

__all__ = [
    "Compressor",
    "NullCompressor",
    "ZlibCompressor",
    "CompressionStats",
    "best_effort_compress",
    "decompress_payload",
    "build_cblock",
    "parse_cblock",
    "cblock_logical_length",
    "split_write",
]
