"""Compressors and the stored-vs-compressed decision.

Purity compresses on the fly (Section 3.1); a block that does not
shrink is stored raw, so compression never *costs* capacity. Codecs are
identified by small integers recorded in each cblock header so the read
path can decompress without any per-volume configuration.
"""

import zlib

from dataclasses import dataclass, field

from repro.errors import EncodingError

#: Codec ids recorded in cblock headers.
CODEC_STORED = 0
CODEC_ZLIB = 1


class Compressor:
    """Interface: compress/decompress plus the codec id stored on disk."""

    codec_id = None

    def compress(self, data):
        raise NotImplementedError

    def decompress(self, payload):
        raise NotImplementedError


class NullCompressor(Compressor):
    """Identity codec: stores bytes as-is."""

    codec_id = CODEC_STORED

    def compress(self, data):
        return bytes(data)

    def decompress(self, payload):
        return bytes(payload)


class ZlibCompressor(Compressor):
    """DEFLATE via zlib; level 1 approximates a fast inline codec."""

    codec_id = CODEC_ZLIB

    def __init__(self, level=1):
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be 0-9, got %r" % level)
        self.level = level

    def compress(self, data):
        # zlib accepts any buffer, so memoryview chunks compress without
        # an intermediate bytes copy.
        return zlib.compress(data, self.level)

    def decompress(self, payload):
        return zlib.decompress(bytes(payload))


_DECOMPRESSORS = {
    CODEC_STORED: NullCompressor(),
    CODEC_ZLIB: ZlibCompressor(),
}


def best_effort_compress(data, compressor):
    """Compress if it helps; returns (codec_id, payload).

    Falls back to stored bytes when the codec fails to shrink the data,
    so incompressible writes never inflate.
    """
    compressed = compressor.compress(data)
    if len(compressed) < len(data):
        return compressor.codec_id, compressed
    return CODEC_STORED, bytes(data)


def decompress_payload(codec_id, payload):
    """Invert :func:`best_effort_compress` using the recorded codec id."""
    codec = _DECOMPRESSORS.get(codec_id)
    if codec is None:
        raise EncodingError("unknown codec id %d" % codec_id)
    return codec.decompress(payload)


@dataclass
class CompressionStats:
    """Running totals for data-reduction reporting."""

    logical_bytes: int = 0
    stored_bytes: int = 0
    cblocks: int = 0
    incompressible_cblocks: int = 0
    extra: dict = field(default_factory=dict)

    def note(self, logical_length, stored_length, codec_id):
        """Record one cblock's reduction."""
        self.logical_bytes += logical_length
        self.stored_bytes += stored_length
        self.cblocks += 1
        if codec_id == CODEC_STORED:
            self.incompressible_cblocks += 1

    @property
    def ratio(self):
        """Compression ratio (logical / stored); 1.0 when empty."""
        if not self.stored_bytes:
            return 1.0
        return self.logical_bytes / self.stored_bytes
