"""The cblock format and write-size inference.

A cblock is a self-describing compressed block: a small header (codec
id, logical length, payload length) followed by the compressed payload.
Cblocks are sized to match application writes up to 32 KiB
(Section 4.6) — Purity infers transfer sizes from the I/O stream
instead of exposing block-size tuning knobs, because reads almost
always use the same alignment and size as the write that created the
data.
"""

from repro.compression.engine import best_effort_compress, decompress_payload
from repro.errors import EncodingError
from repro.pyramid.tuples import decode_value, encode_value
from repro.units import MAX_CBLOCK, SECTOR


def split_write(offset, data, max_cblock=MAX_CBLOCK):
    """Break one application write into cblock-sized extents.

    Yields (offset, chunk) pairs; chunks are zero-copy memoryviews of
    ``data``, so splitting never duplicates the incoming write. Writes
    must be sector-aligned with sector-multiple lengths (the 512 B
    minimum block size existing storage protocols dictate). Chunks
    match the write size up to ``max_cblock``, so a 55 KiB write
    becomes a 32 KiB and a 23 KiB cblock rather than many fixed-size
    pages.
    """
    if offset % SECTOR:
        raise ValueError("write offset %d is not sector-aligned" % offset)
    if len(data) % SECTOR:
        raise ValueError("write length %d is not a sector multiple" % len(data))
    if max_cblock % SECTOR or max_cblock <= 0:
        raise ValueError("max_cblock must be a positive sector multiple")
    view = memoryview(data)
    cursor = 0
    while cursor < len(view):
        chunk = view[cursor : cursor + max_cblock]
        yield offset + cursor, chunk
        cursor += len(chunk)


def build_cblock(data, compressor):
    """Compress ``data`` into a self-describing cblock blob.

    Returns (blob, codec_id). The blob is what lands in a segment's
    data region.
    """
    if not data:
        raise ValueError("cannot build an empty cblock")
    codec_id, payload = best_effort_compress(data, compressor)
    header = encode_value((codec_id, len(data), len(payload)))
    return header + payload, codec_id


def parse_cblock(blob):
    """Decompress a cblock blob back to its logical bytes."""
    try:
        (codec_id, logical_length, payload_length), offset = decode_value(blob)
    except EncodingError as error:
        raise EncodingError("corrupt cblock header: %s" % error) from error
    payload = blob[offset : offset + payload_length]
    if len(payload) != payload_length:
        raise EncodingError(
            "cblock truncated: header claims %d payload bytes, have %d"
            % (payload_length, len(payload))
        )
    data = decompress_payload(codec_id, payload)
    if len(data) != logical_length:
        raise EncodingError(
            "cblock decompressed to %d bytes, header claims %d"
            % (len(data), logical_length)
        )
    return data


def cblock_logical_length(blob):
    """Logical (uncompressed) length recorded in a cblock header."""
    (_codec_id, logical_length, _payload_length), _offset = decode_value(blob)
    return logical_length
