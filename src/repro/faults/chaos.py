"""The chaos verification harness.

Runs a deterministic client workload (YCSB-style zipfian reads/writes
plus OLTP-style read-modify-writes) against a live array while a
:class:`~repro.faults.injector.FaultInjector` fires a seeded
:class:`~repro.faults.plan.FaultPlan`, and asserts the availability
contract the paper claims:

* **byte-exact reads** — every read returns exactly the bytes an oracle
  says were last acknowledged (a write interrupted by a crash may
  surface either its old or its new content, but the first read pins
  the outcome and all later reads must agree);
* **fault tolerance** — any schedule inside the parity budget (at most
  two concurrent shard losses) completes with zero violations;
* **crash consistency** — every injected controller crash recovers
  inside the 30 s client I/O timeout (Section 4.3);
* **self-healing** — scrubbing and rebuild repair everything the
  schedule corrupted: the final sweep reaches zero corrupt shards and
  full 7+2 placement on alive drives;
* **no silent loss** — schedules *beyond* the parity budget must raise
  :class:`~repro.errors.DataLossError` / ``UncorrectableError``
  (detected loss), never return wrong bytes.

Same seed → same plan → same fault trace (:meth:`ChaosReport.trace`),
which is what makes a chaos failure debuggable: replay the seed and
every fault fires at the identical op index and simulated time.
"""

from dataclasses import dataclass, field

from repro.core.array import PurityArray
from repro.core.config import ArrayConfig
from repro.core.ha import CLIENT_TIMEOUT_SECONDS
from repro.errors import (
    DataLossError,
    InjectedCrashError,
    ReadOnlyModeError,
    UncorrectableError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.perf import PERF
from repro.sim.rand import RandomStream


class InvariantViolation(AssertionError):
    """A chaos invariant was broken (also recorded on the report)."""

    def __init__(self, invariant, detail):
        super().__init__("%s: %s" % (invariant, detail))
        self.invariant = invariant
        self.detail = detail


@dataclass
class ChaosReport:
    """Everything one chaos run observed."""

    seed: int = None
    ops: int = 0
    reads: int = 0
    writes: int = 0
    rmws: int = 0
    crashes: int = 0
    recoveries: int = 0
    #: Per-recovery downtime in simulated seconds (each < 30 s).
    downtimes: list = field(default_factory=list)
    faults_fired: int = 0
    kinds_used: list = field(default_factory=list)
    drives_replaced: int = 0
    segments_rebuilt: int = 0
    scrub_passes: int = 0
    #: Final-sweep scrub passes needed to reach zero corrupt shards.
    repair_passes: int = 0
    #: Set when the run ended in *detected* data loss (only legal for
    #: schedules beyond the parity budget).
    data_loss: str = None
    violations: list = field(default_factory=list)
    #: The comparable fault trace (same seed → identical list).
    trace: list = field(default_factory=list)
    #: Degradation-ladder state -> byte-exact read checks performed
    #: while the array was in that state (the "detected loss is never
    #: wrong bytes" invariant is asserted per state, not just overall).
    reads_by_state: dict = field(default_factory=dict)
    #: Every ladder state any controller of this run ever visited.
    ladder_states: list = field(default_factory=list)

    @property
    def max_downtime(self):
        return max(self.downtimes, default=0.0)


class ChaosHarness:
    """One seeded chaos run: workload + fault plan + invariant checks."""

    #: Sample the observability series (queue depth, cache hit rate)
    #: every this many client ops when tracing is enabled.
    SAMPLE_EVERY = 5

    def __init__(self, seed, config=None, plan=None, total_ops=200,
                 record_size=4096, record_slots=16, read_fraction=0.3,
                 rmw_fraction=0.15, maintenance_every=40,
                 expect_data_loss=False, tracing=False):
        self.seed = seed
        self.config = config or ArrayConfig.small(seed=seed)
        self.total_ops = total_ops
        self.record_size = record_size
        self.record_slots = record_slots
        self.read_fraction = read_fraction
        self.rmw_fraction = rmw_fraction
        self.maintenance_every = maintenance_every
        #: Schedules beyond the parity budget are expected to *detect*
        #: loss; surviving one silently would itself be a bug, but the
        #: harness only asserts the never-wrong-bytes half.
        self.expect_data_loss = expect_data_loss
        self.array = PurityArray.create(self.config)
        #: The run-wide observability handle: survives controller
        #: failovers (threaded through recovery), so one chaos run is
        #: one trace. Deterministic: same seed → byte-identical JSONL.
        self.obs = self.array.obs
        if tracing:
            self.obs.enable_tracing()
        self.volume = "chaos0"
        self.array.create_volume(self.volume, record_slots * record_size)
        if plan is None:
            plan = FaultPlan.generate(
                seed,
                total_ops,
                sorted(self.array.drives),
                maintenance_every=maintenance_every,
                parity_shards=self.config.segment_geometry.parity_shards,
            )
        self.plan = plan
        self.injector = FaultInjector(plan).attach(self.array)
        self._wstream = RandomStream(seed).fork("chaos-workload")
        self._mstream = RandomStream(seed).fork("chaos-maintenance")
        #: Oracle: slot -> set of byte strings the slot may legally hold.
        #: One element normally; two while a crash-interrupted write is
        #: unresolved (the first read observation pins it back to one).
        self._possible = {}
        self.report = ChaosReport(seed=seed)

    # ------------------------------------------------------------------
    # Oracle

    def _slot_possible(self, slot):
        values = self._possible.get(slot)
        if values is None:
            values = {bytes(self.record_size)}  # never written: zeros
            self._possible[slot] = values
        return values

    def _check_read(self, where, slot, data):
        """Byte-exact invariant; pins crash-ambiguous slots.

        Tagged with the current degradation-ladder state so the report
        proves the invariant held in *every* mode the run visited, not
        just in aggregate.
        """
        state = self.array.degrade.state
        self.report.reads_by_state[state] = (
            self.report.reads_by_state.get(state, 0) + 1
        )
        possible = self._slot_possible(slot)
        if data not in possible:
            self._violate(
                "byte-exact-read",
                "%s slot %d returned %d bytes matching none of the %d "
                "acknowledged candidates (ladder state %s)"
                % (where, slot, len(data), len(possible), state),
            )
        self._possible[slot] = {data}

    def _violate(self, invariant, detail):
        self.report.violations.append((invariant, detail))
        PERF.incr("chaos-invariant-violation")
        raise InvariantViolation(invariant, detail)

    # ------------------------------------------------------------------
    # Crash / recovery

    def _collect_ladder_states(self):
        """Fold the current controller's ladder history into the report.

        Called before each failover and at run end: each controller has
        its own ladder (rebuilt from substrate evidence at boot), so the
        run-wide "states visited" set is the union over controllers.
        """
        seen = set(self.report.ladder_states)
        ladder = self.array.degrade.ladder
        seen.add(ladder.state)
        seen.update(t.to_state for t in ladder.transitions)
        seen.update(t.from_state for t in ladder.transitions)
        from repro.degrade.ladder import RUNG

        self.report.ladder_states = sorted(seen, key=RUNG.__getitem__)

    def _recover(self):
        """Fail the controller over the surviving substrate."""
        self.report.crashes += 1
        PERF.incr("chaos-crash")
        self._collect_ladder_states()
        shelf, boot_region, clock = self.array.crash()
        before = clock.now
        with PERF.timer("chaos-recovery"):
            array, _report = PurityArray.recover(
                self.config, shelf, boot_region, clock, obs=self.obs
            )
        downtime = clock.now - before
        self.report.recoveries += 1
        self.report.downtimes.append(downtime)
        if downtime >= CLIENT_TIMEOUT_SECONDS:
            self._violate(
                "recovery-within-client-timeout",
                "recovery took %.3f s (timeout %.0f s)"
                % (downtime, CLIENT_TIMEOUT_SECONDS),
            )
        self.array = array
        # Re-arm against the new controller: drive-level damage (torn
        # ranges, burst counters) carries over, as on-media state would.
        self.injector.attach(array)

    # ------------------------------------------------------------------
    # Workload

    def _payload(self, op, slot):
        """Deterministic record content, mixed compressibility."""
        if self._wstream.random() < 0.3:
            return self._wstream.randbytes(self.record_size)
        pattern = b"chaos-%d-%d-%d|" % (self.seed, op, slot)
        reps = self.record_size // len(pattern) + 1
        return (pattern * reps)[: self.record_size]

    def _run_op(self, op):
        roll = self._wstream.random()
        slot = self._wstream.zipf_index(self.record_slots)
        offset = slot * self.record_size
        if roll < self.read_fraction:
            self.report.reads += 1
            data, _latency = self.array.read(
                self.volume, offset, self.record_size
            )
            self._check_read("op %d" % op, slot, data)
            return
        if roll < self.read_fraction + self.rmw_fraction:
            # OLTP-style read-modify-write: validate, transform, write.
            self.report.rmws += 1
            data, _latency = self.array.read(
                self.volume, offset, self.record_size
            )
            self._check_read("rmw %d" % op, slot, data)
            payload = data[::-1]
        else:
            self.report.writes += 1
            payload = self._payload(op, slot)
        try:
            self.array.write(self.volume, offset, payload)
        except InjectedCrashError:
            # The crash may have landed before or after the NVRAM
            # commit: both contents are legal until a read pins one.
            possible = set(self._slot_possible(slot))
            possible.add(payload)
            self._possible[slot] = possible
            self._recover()
        else:
            self._possible[slot] = {payload}

    # ------------------------------------------------------------------
    # Maintenance

    def _replace_failed_drives(self):
        for name in sorted(self.array.drives):
            if self.array.drives[name].failed:
                self.array.replace_drive(name)
                self.report.drives_replaced += 1
                PERF.incr("chaos-drive-replaced")
        self.injector.refresh_drives()

    def _maintenance(self):
        """Slot-boundary upkeep: replace, rebuild, scrub, sometimes GC.

        Any step may hit an armed crashpoint; the harness recovers and
        retries, exactly as a real array's background services restart
        after failover.
        """
        for _attempt in range(3):
            try:
                if self.injector.has_armed_tear:
                    # A tear armed this slot but no flush has landed
                    # yet: drain so it fires now, where the scrub
                    # below can repair it — otherwise it would tear a
                    # stripe *after* this maintenance pass, with the
                    # next slot's fault free to take a third shard.
                    self.array.drain()
                self._replace_failed_drives()
                self.report.segments_rebuilt += self.array.service_health()
                self.report.segments_rebuilt += self.array.rebuild()
                if self._mstream.random() < 0.5:
                    self.array.run_gc()
                if self._mstream.random() < 0.34:
                    self.array.checkpoint()
                # Scrub last: maintenance exits with the array verified
                # clean, so two destructive faults always have a repair
                # between them.
                scrub = self.array.scrub()
                self.report.scrub_passes += 1
                if scrub.corrupt_shards or scrub.parity_mismatches:
                    PERF.incr("chaos-scrub-found-damage")
                return
            except InjectedCrashError:
                self._recover()
        self._violate(
            "maintenance-convergence",
            "maintenance crashed on three consecutive attempts",
        )

    # ------------------------------------------------------------------
    # Final verification

    def _final_verify(self):
        self._maintenance()
        # The scrubber must repair every injected corruption: repeated
        # passes converge to zero corrupt shards (bursts drain, torn
        # stripes are evacuated and their AUs erased).
        for sweep in range(4):
            scrub = self.array.scrub()
            self.report.scrub_passes += 1
            self.report.repair_passes = sweep + 1
            if not scrub.corrupt_shards and not scrub.parity_mismatches:
                break
        else:
            self._violate(
                "scrubber-repairs-injected-damage",
                "corruption still visible after %d scrub sweeps"
                % self.report.repair_passes,
            )
        # Full protection restored: every segment lives on alive drives.
        for fact in self.array.tables.segments.scan():
            for drive_name, _au in fact.value[0]:
                drive = self.array.drives.get(drive_name)
                if drive is None or drive.failed:
                    self._violate(
                        "full-protection-restored",
                        "segment %d still places a shard on dead drive %s"
                        % (fact.key[0], drive_name),
                    )
        # Byte-exact read-back of the whole keyspace through a fresh
        # read path (any surviving in-doubt slots get pinned here).
        for slot in range(self.record_slots):
            data, _latency = self.array.read(
                self.volume, slot * self.record_size, self.record_size
            )
            self._check_read("final", slot, data)

    # ------------------------------------------------------------------
    # Entry point

    def run(self):
        """Execute the schedule; returns the :class:`ChaosReport`.

        Raises :class:`InvariantViolation` the moment an invariant
        breaks. Detected data loss (``DataLossError`` on an
        over-budget schedule) ends the run cleanly with
        ``report.data_loss`` set; on a survivable schedule it is a
        violation — the array must ride out anything inside the parity
        budget.
        """
        try:
            for op in range(self.total_ops):
                self.injector.advance_to_op(op)
                try:
                    self._run_op(op)
                except InjectedCrashError:
                    # A crash on the read path (e.g. an armed GC
                    # crashpoint hit by a flush a read triggered).
                    self._recover()
                self.report.ops += 1
                PERF.incr("chaos-op")
                if self.obs.tracing and (op + 1) % self.SAMPLE_EVERY == 0:
                    self.array.observe_sample()
                if (op + 1) % self.maintenance_every == 0:
                    self._maintenance()
            for _attempt in range(3):
                try:
                    self._final_verify()
                    break
                except InjectedCrashError:
                    # A still-armed crashpoint fired inside the final
                    # sweep (e.g. during a scrub-triggered evacuation).
                    self._recover()
            else:
                self._violate(
                    "final-verify-convergence",
                    "final verification crashed on three attempts",
                )
        except (DataLossError, UncorrectableError, ReadOnlyModeError) as exc:
            # ReadOnlyModeError is the write-path face of detected
            # loss: beyond-budget damage pinned the ladder read-only
            # and a client write was refused instead of being accepted
            # into an unprotectable stripe.
            self.report.data_loss = str(exc)
            PERF.incr("chaos-data-loss-detected")
            if not self.expect_data_loss:
                self._violate(
                    "survivable-schedule-survived",
                    "data loss on an in-budget schedule: %s" % exc,
                )
        self._collect_ladder_states()
        self.report.faults_fired = self.injector.faults_fired
        self.report.kinds_used = self.plan.kinds_used()
        self.report.trace = self.injector.trace_keys()
        return self.report

    def export_obs(self, directory, prefix="chaos"):
        """Write the run's trace + metrics JSONL under ``directory``.

        Returns (trace_path, metrics_path). Same seed → byte-identical
        trace file, which is the artifact CI uploads from chaos lanes.
        """
        from repro.obs.export import dump_run

        return dump_run(self.obs, directory, prefix=prefix)
