"""Fault plans: declarative, seeded schedules of component failures.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec`s keyed by
*operation index* — the nth client operation the harness will issue.
Keying by op index (rather than wall time) makes plans deterministic
regardless of how latencies accumulate, which is what makes same-seed
replay byte-identical.

Fault taxonomy (each maps to a mechanism in the injector):

========================  ====================================================
``drive-fail``            whole-drive death (the Section 1 pulled-drive demo)
``corrupt-burst``         latent-sector corruption: the next N reads of one
                          drive return corrupted data (rotting flash)
``stall-storm``           firmware stall: reads of one drive stall for a
                          simulated-time window (Section 2.1 misbehaviour)
``torn-flush``            the next segio flush persists only a subset of its
                          shards (power loss inside a stripe write); torn
                          shards read back as checksum failures
``nvram-torn``            controller crash inside an NVRAM commit, losing the
                          partially-appended record (un-acknowledged only)
``crash``                 controller crash at a named ``crashpoint(...)``
========================  ====================================================
"""

from dataclasses import dataclass, field

from repro.sim.rand import RandomStream

DRIVE_FAIL = "drive-fail"
CORRUPT_BURST = "corrupt-burst"
STALL_STORM = "stall-storm"
TORN_FLUSH = "torn-flush"
NVRAM_TORN = "nvram-torn"
CRASH = "crash"
# Cluster-level kinds (fired by the cluster chaos harness, see
# repro.cluster.chaos): a whole-array controller kill, the matching
# revive, and a timed network partition isolating one array.
ARRAY_KILL = "array-kill"
ARRAY_REVIVE = "array-revive"
NET_PARTITION = "net-partition"

FAULT_KINDS = (
    DRIVE_FAIL,
    CORRUPT_BURST,
    STALL_STORM,
    TORN_FLUSH,
    NVRAM_TORN,
    CRASH,
    ARRAY_KILL,
    ARRAY_REVIVE,
    NET_PARTITION,
)

#: Kinds a cluster-level plan may schedule. ``drive-fail`` rides along
#: with an ``<array>:<drive>`` target so a cluster schedule also pushes
#: individual member arrays onto their degradation ladders.
CLUSTER_FAULT_KINDS = (ARRAY_KILL, NET_PARTITION, DRIVE_FAIL)

#: Crashpoints a generated plan may crash at. Every entry is a named
#: hook instrumented through the write/flush/GC paths; see
#: :class:`repro.faults.injector.CrashpointRouter` call sites.
CRASHPOINT_CHOICES = (
    "datapath.write-start",
    "datapath.post-commit",
    "datapath.post-process",
    "segwriter.pre-flush",
    "segwriter.mid-flush",
    "segwriter.post-flush",
    "gc.pre-collect",
    "gc.post-rewrite",
    "gc.pre-release",
)

#: Every crashpoint name instrumented anywhere in the tree — the full
#: registry the ``name-registry-sync`` lint rule checks ``cp.hit("...")``
#: call sites against. :data:`CRASHPOINT_CHOICES` is the subset a
#: generated plan may schedule a ``crash`` at; the NVRAM pair is hit by
#: the ``nvram-torn`` mechanism instead (see
#: :meth:`repro.faults.injector.FaultInjector.on_crashpoint`).
CRASHPOINTS = CRASHPOINT_CHOICES + (
    "nvram.pre-append",
    "nvram.post-append",
)

#: Drive-affecting kinds: at most one may land per maintenance slot so a
#: scrub/rebuild pass always separates two shard-destroying events.
DESTRUCTIVE_KINDS = (DRIVE_FAIL, CORRUPT_BURST, STALL_STORM, TORN_FLUSH)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``at_op`` is the client-operation index at which the fault arms;
    ``target`` names a drive (drive faults) or a crashpoint (crashes);
    ``params`` carries kind-specific tuning (burst length, shard count,
    stall seconds) and stays hashable so plans can be compared.
    """

    at_op: int
    kind: str
    target: str = None
    params: tuple = ()

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r" % (self.kind,))


@dataclass
class FaultPlan:
    """An ordered fault schedule plus the seed that produced it."""

    specs: list = field(default_factory=list)
    seed: int = None

    def __iter__(self):
        return iter(self.specs)

    def __len__(self):
        return len(self.specs)

    def add(self, spec):
        self.specs.append(spec)
        self.specs.sort(key=lambda s: s.at_op)
        return self

    def kinds_used(self):
        return sorted({spec.kind for spec in self.specs})

    def due(self, op_index):
        """Specs arming at exactly ``op_index`` (plan is pre-sorted)."""
        return [spec for spec in self.specs if spec.at_op == op_index]

    # ------------------------------------------------------------------
    # Seeded generation

    @classmethod
    def generate(cls, seed, total_ops, drive_names, maintenance_every=40,
                 parity_shards=2, kinds=FAULT_KINDS, crash_budget=2):
        """Generate a randomized schedule that the array should survive.

        The schedule is built on a slot grid of ``maintenance_every``
        operations — the harness runs scrub + rebuild at every slot
        boundary — with the constraints that keep the plan inside the
        array's fault-tolerance budget:

        * at most one destructive (shard-losing) fault per slot, so a
          maintenance pass always repairs between two of them;
        * at most ``parity_shards`` whole-drive failures before a
          replace/rebuild cycle has run;
        * torn flushes drop at most ``parity_shards`` shards.

        Crashes and NVRAM tears are recoverable by design and land
        freely. Same (seed, total_ops, drives) → identical plan.
        """
        stream = RandomStream(seed).fork("fault-plan")
        plan = cls(seed=seed)
        slots = max(1, total_ops // maintenance_every)
        destructive = [k for k in kinds if k in DESTRUCTIVE_KINDS]
        drive_kills = 0
        for slot in range(slots):
            slot_start = slot * maintenance_every
            if not destructive:
                break
            kind = stream.choice(destructive)
            if kind == DRIVE_FAIL and drive_kills >= parity_shards:
                kind = CORRUPT_BURST  # budget spent; degrade to a burst
            # Land inside the slot, clear of the boundary maintenance.
            at_op = slot_start + stream.randint(2, max(3, maintenance_every - 4))
            if kind == DRIVE_FAIL:
                drive_kills += 1
                target = stream.choice(list(drive_names))
                plan.add(FaultSpec(at_op, DRIVE_FAIL, target))
            elif kind == CORRUPT_BURST:
                target = stream.choice(list(drive_names))
                burst = stream.randint(3, 8)
                plan.add(FaultSpec(at_op, CORRUPT_BURST, target, (burst,)))
            elif kind == STALL_STORM:
                target = stream.choice(list(drive_names))
                duration = round(stream.uniform(0.05, 0.5), 3)
                plan.add(FaultSpec(at_op, STALL_STORM, target, (duration,)))
            elif kind == TORN_FLUSH:
                shards = stream.randint(1, parity_shards)
                plan.add(FaultSpec(at_op, TORN_FLUSH, None, (shards,)))
        crash_kinds = [k for k in kinds if k in (CRASH, NVRAM_TORN)]
        if crash_kinds and crash_budget:
            for _ in range(crash_budget):
                kind = stream.choice(crash_kinds)
                at_op = stream.randint(1, max(2, total_ops - 2))
                if kind == CRASH:
                    point = stream.choice(CRASHPOINT_CHOICES)
                    plan.add(FaultSpec(at_op, CRASH, point))
                else:
                    plan.add(FaultSpec(at_op, NVRAM_TORN, None))
        return plan

    @classmethod
    def generate_cluster(cls, seed, total_ops, array_ids, drive_names=(),
                         maintenance_every=40, kinds=CLUSTER_FAULT_KINDS,
                         partition_seconds=2.5):
        """Generate a survivable cluster-level disruption schedule.

        The grid is pairs of maintenance slots: a disruption lands in
        the first slot of each pair, and the second slot is left clear
        so the cluster's detect→reroute→rebuild cycle completes before
        the next event — the cluster-level analogue of the single-array
        rule that a scrub pass separates two shard-destroying faults.
        Constraints that keep every schedule inside the cluster's
        replication budget (one array-sized failure domain at a time):

        * at most one array is down (killed or partitioned) at any op;
        * every ``array-kill`` is paired with an ``array-revive`` one
          maintenance slot later, so rebuild has a rejoin target;
        * partitions are timed (``params[0]`` sim seconds) and heal on
          their own, always inside the clear slot.

        ``drive-fail`` specs target ``<array>:<drive>`` so member arrays
        also visit their degradation-ladder states mid-schedule.
        Same (seed, total_ops, array_ids, drive_names) → identical plan.
        """
        stream = RandomStream(seed).fork("cluster-fault-plan")
        plan = cls(seed=seed)
        array_ids = list(array_ids)
        if len(array_ids) < 2:
            # A 1-array cluster has no survivable array-sized faults;
            # fall back to intra-array drive faults only.
            kinds = tuple(k for k in kinds if k == DRIVE_FAIL)
        pairs = max(1, total_ops // (2 * maintenance_every))
        usable = [k for k in kinds if k in CLUSTER_FAULT_KINDS]
        if DRIVE_FAIL in usable and not drive_names:
            usable = [k for k in usable if k != DRIVE_FAIL]
        for pair in range(pairs):
            if not usable:
                break
            slot_start = pair * 2 * maintenance_every
            at_op = slot_start + stream.randint(
                2, max(3, maintenance_every - 4)
            )
            kind = stream.choice(usable)
            if kind == ARRAY_KILL:
                target = stream.choice(array_ids)
                plan.add(FaultSpec(at_op, ARRAY_KILL, target))
                plan.add(FaultSpec(
                    min(at_op + maintenance_every, total_ops - 1),
                    ARRAY_REVIVE, target,
                ))
            elif kind == NET_PARTITION:
                target = stream.choice(array_ids)
                duration = round(stream.uniform(
                    0.5 * partition_seconds, partition_seconds), 3)
                plan.add(FaultSpec(at_op, NET_PARTITION, target, (duration,)))
            elif kind == DRIVE_FAIL:
                target = "%s:%s" % (stream.choice(array_ids),
                                    stream.choice(list(drive_names)))
                plan.add(FaultSpec(at_op, DRIVE_FAIL, target))
        return plan
