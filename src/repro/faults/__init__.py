"""Deterministic fault injection for the Purity reproduction.

The paper's headline claim is availability under component failure;
this package makes failure a first-class, *scheduled* input instead of
something tests poke in by hand:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan`s (what
  breaks, when), including seeded random generation that respects the
  array's fault-tolerance budget.
* :mod:`repro.faults.injector` — the :class:`FaultInjector` that arms a
  plan against a live array: device-level corruption/stall/torn-write
  hooks inside the simulated SSD timeline, and named ``crashpoint``
  hooks threaded through the datapath, segment writer, WAL, and GC.
* :mod:`repro.faults.chaos` — the chaos harness: run a workload under a
  plan, crash and recover on schedule, and verify the availability
  invariants (byte-exact reads, bounded recovery time, loss is always
  *reported*).

Same seed → same plan → same fault trace, so any chaos failure replays
exactly.
"""

from repro.faults.plan import (
    CORRUPT_BURST,
    CRASH,
    DRIVE_FAIL,
    FAULT_KINDS,
    NVRAM_TORN,
    STALL_STORM,
    TORN_FLUSH,
    FaultPlan,
    FaultSpec,
)
from repro.faults.injector import CrashpointRouter, FaultEvent, FaultInjector
from repro.faults.chaos import ChaosHarness, ChaosReport, InvariantViolation

__all__ = [
    "ChaosHarness",
    "ChaosReport",
    "InvariantViolation",
    "CrashpointRouter",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
    "DRIVE_FAIL",
    "CORRUPT_BURST",
    "STALL_STORM",
    "TORN_FLUSH",
    "NVRAM_TORN",
    "CRASH",
]
