"""The fault injector: arms a :class:`FaultPlan` against a live array.

Faults fire *inside* the simulated timeline, not around it:

* drive faults hook :class:`~repro.ssd.device.SimulatedSSD` reads and
  writes via the device's ``fault_model`` slot (corruption bursts,
  stall storms, torn-write detection);
* controller crashes fire at named ``crashpoint("...")`` hooks threaded
  through the datapath, segment writer, WAL, and GC via per-component
  :class:`CrashpointRouter`s (no global state — multi-array tests stay
  isolated);
* torn segio flushes intercept the segment writer's shard fan-out and
  drop a subset of shard programs, marking the dropped write units so
  later reads fail their (modelled) checksum instead of returning
  zeros as valid data.

Every fired fault is appended to :attr:`FaultInjector.trace`; a plan
replayed from the same seed produces an identical trace, which is the
debugging contract the chaos harness asserts.
"""

from dataclasses import dataclass

from repro.errors import InjectedCrashError
from repro.faults import plan as P
from repro.perf import PERF


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (the unit of the replay trace)."""

    op_index: int
    time: float
    kind: str
    target: str
    detail: tuple = ()

    def key(self):
        """Comparable identity for trace equality (time included: the
        sim clock is deterministic, so replays must match it too)."""
        return (self.op_index, round(self.time, 9), self.kind, self.target,
                self.detail)


class CrashpointRouter:
    """Per-component crashpoint hook.

    Instrumented code calls ``router.hit("segwriter.pre-flush", ...)``;
    components hold ``crashpoints = None`` by default, so the
    uninstrumented cost is one attribute test.
    """

    def __init__(self, injector):
        self._injector = injector

    def hit(self, name, **context):
        self._injector.on_crashpoint(name, context)


class FaultInjector:
    """Schedules, fires, and records faults against one array."""

    def __init__(self, fault_plan=None, clock=None):
        self.plan = fault_plan if fault_plan is not None else P.FaultPlan()
        self.clock = clock
        self.array = None
        #: Observability handle; adopted from the array at attach() so
        #: fired faults also land in the trace as ``fault`` events.
        self.obs = None
        self.trace = []
        self.op_index = 0
        self._next_spec = 0
        # Armed state.
        self._corrupt_bursts = {}   # drive name -> reads remaining
        self._stall_until = {}      # drive name -> sim time, extra stall
        self._torn_flush_shards = 0  # shards to drop at the next flush
        self._armed_crashpoints = set()
        self._nvram_torn = False
        # Torn write units: drive name -> [(start, end)], modelling the
        # on-media checksum that makes a torn write detectable.
        self._torn_ranges = {}
        self.crashes_fired = 0
        self.faults_fired = 0

    # ------------------------------------------------------------------
    # Attachment

    def attach(self, array):
        """Arm this injector against ``array`` (idempotent, re-entrant
        after recovery — drive-level state like torn ranges survives,
        exactly as on-media damage would)."""
        self.array = array
        if self.clock is None:
            self.clock = array.clock
        self.obs = getattr(array, "obs", None)
        router = CrashpointRouter(self)
        array.datapath.crashpoints = router
        array.segwriter.crashpoints = router
        array.segwriter.flush_interceptor = self.filter_flush_shards
        array.pipeline.wal.crashpoints = router
        array.gc.crashpoints = router
        self.refresh_drives()
        return self

    def detach(self):
        array = self.array
        if array is None:
            return
        array.datapath.crashpoints = None
        array.segwriter.crashpoints = None
        array.segwriter.flush_interceptor = None
        array.pipeline.wal.crashpoints = None
        array.gc.crashpoints = None
        for drive in array.drives.values():
            if drive.fault_model is self:
                drive.fault_model = None
        self.array = None

    def refresh_drives(self):
        """Hook any drive not yet instrumented (replacements, recovery)."""
        for drive in self.array.drives.values():
            drive.fault_model = self

    # ------------------------------------------------------------------
    # Scheduling

    def advance_to_op(self, op_index):
        """Arm every spec due at or before ``op_index``.

        The harness calls this before issuing each client operation;
        drive faults fire immediately, crash/torn faults arm and fire
        at their crashpoint or flush.
        """
        self.op_index = op_index
        specs = self.plan.specs
        while self._next_spec < len(specs) and specs[self._next_spec].at_op <= op_index:
            self._arm(specs[self._next_spec])
            self._next_spec += 1

    def _arm(self, spec):
        if spec.kind == P.DRIVE_FAIL:
            self._fire_drive_fail(spec)
        elif spec.kind == P.CORRUPT_BURST:
            target = self._resolve_drive(spec.target)
            if target is None:
                return
            burst = spec.params[0] if spec.params else 4
            self._corrupt_bursts[target] = (
                self._corrupt_bursts.get(target, 0) + burst
            )
            self._record(P.CORRUPT_BURST, target, (burst,))
        elif spec.kind == P.STALL_STORM:
            target = self._resolve_drive(spec.target)
            if target is None:
                return
            duration = spec.params[0] if spec.params else 0.1
            self._stall_until[target] = self.clock.now + duration
            self._record(P.STALL_STORM, target, (duration,))
        elif spec.kind == P.TORN_FLUSH:
            shards = spec.params[0] if spec.params else 1
            self._torn_flush_shards = max(self._torn_flush_shards, shards)
            self._record(P.TORN_FLUSH, "armed", (shards,))
        elif spec.kind == P.NVRAM_TORN:
            self._nvram_torn = True
            self._record(P.NVRAM_TORN, "armed")
        elif spec.kind == P.CRASH:
            self._armed_crashpoints.add(spec.target)
            self._record(P.CRASH, spec.target, ("armed",))

    def _resolve_drive(self, name):
        """Map a planned drive name onto a currently-alive drive.

        Plans are written against the boot-time drive set; by fire time
        the named drive may be dead or replaced. Falling back to the
        first alive drive (sorted, hence deterministic) keeps the
        schedule meaningful without breaking replay.
        """
        drives = self.array.drives
        drive = drives.get(name)
        if drive is not None and not drive.failed:
            return name
        alive = sorted(n for n, d in drives.items() if not d.failed)
        return alive[0] if alive else None

    def _fire_drive_fail(self, spec):
        target = self._resolve_drive(spec.target)
        if target is None:
            return
        self.array.fail_drive(target)
        self._record(P.DRIVE_FAIL, target)
        PERF.incr("fault-drive-fail")

    def _record(self, kind, target, detail=()):
        self.faults_fired += 1
        self.trace.append(
            FaultEvent(self.op_index, self.clock.now, kind, target,
                       tuple(detail))
        )
        PERF.incr("fault-fired")
        obs = self.obs
        if obs is not None and obs.tracing:
            obs.event(
                "fault",
                op=self.op_index,
                kind=kind,
                target=target,
                detail=list(detail),
            )
        if obs is not None:
            obs.metrics.counter("faults.fired").inc()

    def trace_keys(self):
        """The comparable replay trace (same seed → identical list)."""
        return [event.key() for event in self.trace]

    @property
    def has_armed_tear(self):
        """A torn flush is armed but has not found a flush to tear yet."""
        return self._torn_flush_shards > 0

    # ------------------------------------------------------------------
    # Device hooks (called from SimulatedSSD inside read/write/discard)

    def on_read(self, drive, offset, nbytes, now):
        """Returns (force_corrupted, extra_stall_seconds)."""
        corrupted = False
        stall = 0.0
        if self._overlaps_torn(drive.name, offset, nbytes):
            corrupted = True
            PERF.incr("fault-torn-read")
        remaining = self._corrupt_bursts.get(drive.name, 0)
        if remaining > 0:
            self._corrupt_bursts[drive.name] = remaining - 1
            corrupted = True
            PERF.incr("fault-corrupt-read")
        until = self._stall_until.get(drive.name, 0.0)
        if now < until:
            stall = drive.timing.write_interference_stall * 4
            PERF.incr("fault-stalled-read")
        return corrupted, stall

    def peek_stall(self, drive, now):
        """Pure preview of :meth:`on_read`'s stall term.

        The hedged-read policy calls this through
        :meth:`SimulatedSSD.estimated_read_wait`; it must not count as
        a fault firing or mutate any armed state.
        """
        if now < self._stall_until.get(drive.name, 0.0):
            return drive.timing.write_interference_stall * 4
        return 0.0

    def on_write(self, drive, offset, nbytes):
        """A successful program heals any torn marks it overwrites."""
        self._heal_torn(drive.name, offset, nbytes)

    def on_discard(self, drive, offset, nbytes):
        """Erase drops torn marks — the AU is blank, not torn."""
        self._heal_torn(drive.name, offset, nbytes)

    def _overlaps_torn(self, drive_name, offset, nbytes):
        ranges = self._torn_ranges.get(drive_name)
        if not ranges:
            return False
        end = offset + nbytes
        return any(start < end and offset < stop for start, stop in ranges)

    def _heal_torn(self, drive_name, offset, nbytes):
        ranges = self._torn_ranges.get(drive_name)
        if not ranges:
            return
        end = offset + nbytes
        kept = [r for r in ranges if not (r[0] >= offset and r[1] <= end)]
        if kept:
            self._torn_ranges[drive_name] = kept
        else:
            del self._torn_ranges[drive_name]

    # ------------------------------------------------------------------
    # Segment-writer hook (torn flushes)

    def filter_flush_shards(self, descriptor, segio_index, pending):
        """Drop shard programs from one flush, marking them torn.

        ``pending`` is the segment writer's [(drive, device_offset,
        unit)] fan-out; the last ``n`` entries are torn off (a power
        cut kills the laggard programs first), and the dropped write
        units are remembered so reads of them report corruption.

        The tear is capped to the stripe's remaining parity budget: a
        stripe already writing degraded (failed drives skipped) has
        fewer shards to spare, and generated plans promise to stay
        survivable. With no budget at all the tear stays armed for the
        next healthier flush.
        """
        shards = self._torn_flush_shards
        if not shards or not pending:
            return pending
        geometry = self.array.config.segment_geometry
        missing = geometry.total_shards - len(pending)
        budget = geometry.parity_shards - missing
        if budget <= 0:
            return pending
        self._torn_flush_shards = 0
        shards = min(shards, budget, len(pending))
        kept, torn = pending[:-shards], pending[-shards:]
        torn_names = []
        for drive, device_offset, unit in torn:
            self._torn_ranges.setdefault(drive.name, []).append(
                (device_offset, device_offset + len(unit))
            )
            torn_names.append(drive.name)
        self._record(
            P.TORN_FLUSH,
            "segment-%d" % descriptor.segment_id,
            tuple(torn_names),
        )
        PERF.incr("fault-torn-flush")
        return kept

    # ------------------------------------------------------------------
    # Crashpoints

    def on_crashpoint(self, name, context):
        if self._nvram_torn and name == "nvram.post-append":
            self._nvram_torn = False
            nvram = context["nvram"]
            record_id = context["record_id"]
            dropped = nvram.drop_tail(record_id)
            note = getattr(nvram, "note_tear", None)
            if note is not None:
                note(dropped)
            self._record(P.NVRAM_TORN, name, (record_id,))
            self.crashes_fired += 1
            PERF.incr("fault-crash")
            raise InjectedCrashError(name, "NVRAM commit torn at record %d"
                                     % record_id)
        if name in self._armed_crashpoints:
            self._armed_crashpoints.discard(name)
            if name == "segwriter.mid-flush":
                # The crash interrupts the shard fan-out: the waves not
                # yet programmed read back as checksum failures, never
                # as valid zeros.
                for drive, device_offset, unit in context.get("remaining", ()):
                    self._torn_ranges.setdefault(drive.name, []).append(
                        (device_offset, device_offset + len(unit))
                    )
            self._record(P.CRASH, name, ("fired",))
            self.crashes_fired += 1
            PERF.incr("fault-crash")
            raise InjectedCrashError(name)
