"""Render observability JSONL into the paper-defense views.

``python -m repro.obs.report trace.jsonl [metrics.jsonl]`` prints:

* **per-stage latency** — every span name with call counts and
  simulated-latency stats, the Figure-style "where did the time go"
  breakdown;
* **gauge series** — queue depth, cache hit rate, and any other sampled
  series, summarized with an ASCII sparkline;
* **fault correlation** — every injector event joined onto the client
  I/O latencies around it: mean/max latency in a window before versus
  after the fault, so a latency cliff points straight at its cause.

All functions also accept in-memory record lists, so tests and
benchmarks render without touching disk.
"""

import argparse

from repro.analysis.reporting import format_table
from repro.obs.export import load_jsonl
from repro.sim.distributions import percentile

#: Client-I/O root span names (the unit of the correlation join).
IO_SPAN_NAMES = ("io.write", "io.read")

_SPARK = " .:-=+*#%@"


def _sparkline(values, width=24):
    if not values:
        return ""
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK[1] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int((v - lo) * scale)] for v in values)


def per_stage_table(records):
    """Span-name rollup: calls and simulated-latency stats."""
    groups = {}
    for record in records:
        if record["type"] != "span":
            continue
        groups.setdefault(record["name"], []).append(record)
    rows = []
    for name in sorted(groups):
        spans = groups[name]
        lats = [s["attrs"]["lat"] for s in spans if "lat" in s["attrs"]]
        if lats:
            rows.append([
                name, len(spans),
                sum(lats) * 1e3,
                sum(lats) / len(lats) * 1e6,
                percentile(lats, 0.5) * 1e6,
                percentile(lats, 0.99) * 1e6,
                max(lats) * 1e6,
            ])
        else:
            rows.append([name, len(spans), None, None, None, None, None])
    return format_table(
        ["Stage", "Spans", "Total (ms)", "Mean (us)", "p50 (us)",
         "p99 (us)", "Max (us)"],
        rows,
        title="Per-stage simulated latency (from spans)")


def series_table(metrics_records):
    """Sampled gauge series: shape summary plus a sparkline."""
    rows = []
    for record in metrics_records:
        if record["type"] != "series":
            continue
        points = record["points"]
        values = [value for _time, value in points]
        if not values:
            continue
        rows.append([
            record["name"], len(points),
            min(values), sum(values) / len(values), max(values), values[-1],
            _sparkline(values),
        ])
    return format_table(
        ["Series", "Points", "Min", "Mean", "Max", "Last", "Shape"],
        rows,
        title="Sampled series (sim-time ordered)")


def histogram_table(metrics_records):
    """Latency histograms from a metrics JSONL snapshot."""
    rows = []
    for record in metrics_records:
        if record["type"] != "histogram" or not record.get("count"):
            continue
        rows.append([
            record["name"], record["count"],
            record["mean"] * 1e6, record["p50"] * 1e6,
            record["p99"] * 1e6, record["max"] * 1e6,
        ])
    return format_table(
        ["Histogram", "Count", "Mean (us)", "p50 (us)", "p99 (us)", "Max (us)"],
        rows,
        title="Latency histograms (unified registry)")


_QUEUE_DEPTH_PREFIX = "service.queue_depth."
_TENANT_LATENCY_PREFIX = "service.request.latency."


def service_tenant_table(metrics_records):
    """Per-tenant service-plane view: queue depth + request latency.

    Joins the dynamic per-tenant series (``service.queue_depth.<t>``)
    and histograms (``service.request.latency.<t>``) the front end
    emits into one row per tenant. Returns None when the run carried
    no service plane, so the section disappears from non-service runs.
    Field meanings are documented in docs/SERVICE_PLANE.md.
    """
    depths = {}
    latencies = {}
    for record in metrics_records:
        name = record["name"]
        if record["type"] == "series" \
                and name.startswith(_QUEUE_DEPTH_PREFIX):
            depths[name[len(_QUEUE_DEPTH_PREFIX):]] = record
        elif record["type"] == "histogram" and record.get("count") \
                and name.startswith(_TENANT_LATENCY_PREFIX):
            latencies[name[len(_TENANT_LATENCY_PREFIX):]] = record
    tenants = sorted(set(depths) | set(latencies))
    if not tenants:
        return None
    rows = []
    for tenant in tenants:
        depth = depths.get(tenant)
        values = [value for _time, value in depth["points"]] \
            if depth else []
        latency = latencies.get(tenant)
        rows.append([
            tenant,
            values[-1] if values else None,
            max(values) if values else None,
            _sparkline(values),
            latency["count"] if latency else 0,
            latency["p50"] * 1e6 if latency else None,
            latency["p99"] * 1e6 if latency else None,
        ])
    return format_table(
        ["Tenant", "Queue last", "Queue max", "Depth shape",
         "Requests", "Lat p50 (us)", "Lat p99 (us)"],
        rows,
        title="Service plane per-tenant queues and latency")


def _io_latencies(records):
    """[(start_time, latency)] of every client I/O span, time-ordered."""
    points = [
        (record["start"], record["attrs"]["lat"])
        for record in records
        if record["type"] == "span"
        and record["name"] in IO_SPAN_NAMES
        and "lat" in record["attrs"]
    ]
    points.sort()
    return points


def _window_stats(points, lo, hi):
    window = [lat for time, lat in points if lo <= time < hi]
    if not window:
        return None
    return (len(window), sum(window) / len(window), max(window))


def fault_correlation(records, window=None):
    """Join injector events onto surrounding client-I/O latencies.

    For each ``fault`` event, compares mean/max I/O latency in the
    ``window`` seconds before the fault against the window after it.
    ``window`` defaults to 1/20th of the traced time range.
    """
    points = _io_latencies(records)
    faults = [r for r in records if r["type"] == "event" and r["name"] == "fault"]
    if window is None:
        if points:
            span = points[-1][0] - points[0][0]
            window = max(span / 20.0, 1e-3)
        else:
            window = 1.0
    rows = []
    for fault in faults:
        time = fault["time"]
        attrs = fault["attrs"]
        before = _window_stats(points, time - window, time)
        after = _window_stats(points, time, time + window)
        spike = None
        if before and after and before[1] > 0:
            spike = after[1] / before[1]
        rows.append([
            round(time, 6),
            attrs.get("kind", fault["name"]),
            attrs.get("target", "-"),
            before[0] if before else 0,
            before[1] * 1e6 if before else None,
            after[0] if after else 0,
            after[1] * 1e6 if after else None,
            after[2] * 1e6 if after else None,
            round(spike, 2) if spike is not None else None,
        ])
    return format_table(
        ["Fault t (s)", "Kind", "Target", "IOs before", "Mean before (us)",
         "IOs after", "Mean after (us)", "Max after (us)", "Spike x"],
        rows,
        title="Fault correlation (±%.3f s window around each injector event)"
              % window)


def render_report(trace_records, metrics_records=None, window=None):
    """The full text report over one run's records."""
    sections = [per_stage_table(trace_records)]
    if metrics_records:
        histograms = histogram_table(metrics_records)
        sections.append(histograms)
        sections.append(series_table(metrics_records))
        tenants = service_tenant_table(metrics_records)
        if tenants is not None:
            sections.append(tenants)
    sections.append(fault_correlation(trace_records, window=window))
    return "\n\n".join(sections)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__)
    parser.add_argument("trace", help="trace JSONL from repro.obs.export")
    parser.add_argument("metrics", nargs="?", default=None,
                        help="optional metrics JSONL from the same run")
    parser.add_argument("--window", type=float, default=None,
                        help="fault-correlation window in simulated seconds")
    args = parser.parse_args(argv)
    trace_records = load_jsonl(args.trace)
    metrics_records = load_jsonl(args.metrics) if args.metrics else None
    print(render_report(trace_records, metrics_records, window=args.window))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
