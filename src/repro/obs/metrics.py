"""The unified metrics registry.

One namespace for every number the simulation reports:

* **counters** — monotone event counts (``io.write.ops``);
* **gauges** — last-value-wins instantaneous readings;
* **histograms** — latency distributions with fixed log-scale buckets
  (4 per decade, 1 µs .. ~100 s) *plus* the raw samples, so bucket rows
  render cheaply while percentiles stay exact;
* **series** — (sim time, value) points sampled periodically (queue
  depth, cache hit rate), the raw material of the report's time plots.

Naming convention: dotted ``<subsystem>.<thing>[.<unit>]`` — e.g.
``io.write.latency``, ``device.queue_depth``, ``gc.segments_collected``.
The :mod:`repro.perf` wall-clock counters join the same namespace in
:meth:`MetricsRegistry.snapshot` under ``perf.counter.*`` and
``perf.stage.*``; snapshots meant for deterministic export exclude the
wall-clock stage timings (sim-time numbers replay exactly, host wall
time does not).
"""

from repro import perf as _perf

#: Histogram bucket upper bounds in seconds: 4 log-scale buckets per
#: decade from 1 µs to ~100 s, then +inf. Fixed at import time so every
#: histogram in every run buckets identically.
BUCKET_BOUNDS = tuple(10.0 ** (exponent / 4.0) for exponent in range(-24, 9))


class Counter:
    """A monotone event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount


class Gauge:
    """An instantaneous reading; last set wins."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0.0

    def set(self, value):
        self.value = value


class Histogram:
    """Fixed log-bucket latency histogram with exact percentiles.

    Buckets make the shape renderable without the samples; the raw
    samples (simulation scale keeps them small) make ``percentile``
    exact rather than bucket-interpolated.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "samples",
                 "_sorted")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        self.samples = []
        self._sorted = None

    def reset(self):
        """Zero everything; the histogram object (and name) survive."""
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        self.samples = []
        self._sorted = None

    def record(self, value):
        """Add one sample (seconds for latency metrics)."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        lo, hi = 0, len(BUCKET_BOUNDS)
        while lo < hi:
            mid = (lo + hi) // 2
            if BUCKET_BOUNDS[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.buckets[lo] += 1
        self.samples.append(value)
        self._sorted = None

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction):
        """Exact percentile over the recorded samples (fraction in [0,1])."""
        if not self.samples:
            raise ValueError("percentile of empty histogram %r" % self.name)
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        ordered = self._sorted
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def bucket_rows(self):
        """Non-empty (upper_bound_seconds_or_None, count) rows."""
        rows = []
        for index, count in enumerate(self.buckets):
            if not count:
                continue
            bound = BUCKET_BOUNDS[index] if index < len(BUCKET_BOUNDS) else None
            rows.append((bound, count))
        return rows

    def summary(self):
        """Plain-dict rollup for snapshots and JSONL export."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }


class Series:
    """A (sim time, value) time series sampled by the harness."""

    __slots__ = ("name", "points")

    def __init__(self, name):
        self.name = name
        self.points = []

    def sample(self, time, value):
        self.points.append((time, value))

    def last(self):
        return self.points[-1][1] if self.points else None


class MetricsRegistry:
    """Get-or-create home for every metric of one simulated system."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._series = {}

    # -- accessors (get-or-create, so call sites never pre-register) ----

    def counter(self, name):
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name):
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def series(self, name):
        metric = self._series.get(name)
        if metric is None:
            metric = self._series[name] = Series(name)
        return metric

    def histograms(self):
        return [self._histograms[name] for name in sorted(self._histograms)]

    def histogram_names(self):
        return sorted(self._histograms)

    def all_series(self):
        return [self._series[name] for name in sorted(self._series)]

    # -- snapshots ------------------------------------------------------

    def snapshot(self, include_wall_time=True):
        """Everything, as one sorted plain dict.

        The global :mod:`repro.perf` counters join under
        ``perf.counter.*``; with ``include_wall_time`` the per-stage
        wall timings join under ``perf.stage.*`` (leave it off for
        deterministic exports — wall time is not replayable).
        """
        perf_report = _perf.perf_report()
        counters = {
            name: self._counters[name].value for name in sorted(self._counters)
        }
        for name in sorted(perf_report["counters"]):
            counters["perf.counter.%s" % name] = perf_report["counters"][name]
        snapshot = {
            "counters": counters,
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
            "series": {
                name: list(self._series[name].points)
                for name in sorted(self._series)
            },
        }
        if include_wall_time:
            snapshot["perf.stage"] = {
                name: dict(row)
                for name, row in sorted(perf_report["stages"].items())
            }
        return snapshot

    def clear(self):
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._series.clear()
