"""The central registry of span, event, and metric names.

Every trace span the pipeline opens, every point event it fires, and
every metric name a call site passes to the
:class:`~repro.obs.metrics.MetricsRegistry` must appear here. The
``name-registry-sync`` lint rule checks string literals at call sites
against these sets, which is what catches typo drift ("io.wrte") and
silently-forked names ("segio-flush" vs "segio.flush") statically —
before a report quietly renders an empty table.

Adding an instrumented site is a two-line change: add the name here,
use it there. The registry is data, not behaviour: nothing imports it
on the hot path.
"""

#: Span names, one per instrumented pipeline stage or service root.
SPAN_NAMES = frozenset({
    # client-operation roots
    "io.write",
    "io.read",
    # write-path stages
    "nvram-commit",
    "dedup",
    "compress",
    "segio-append",
    "segio.flush",
    "rs-encode",
    # read-path stages
    "cblock-read",
    "segread.reconstruct",
    "segread.hedge",
    # background service roots
    "gc.run",
    "gc.collect",
    "scrub.run",
    "recovery",
    "rebuild",
    # parallel fan-out (one span per ordered map, any worker count)
    "parallel.map",
    # cluster layer (see repro.cluster): client-operation roots; the
    # wrapped array's io.* spans nest under these via the shared
    # TraceBuffer, so one trace crosses the client→MDM→node hop.
    "cluster.write",
    "cluster.read",
    "cluster.failover",
    # service front end (see repro.service): per-op dispatch roots —
    # the backend's io.*/cluster.* spans nest under these — plus one
    # span per management-API call.
    "service.read",
    "service.write",
    "service.unmap",
    "service.api",
})

#: Point-event names recorded into the span tree.
EVENT_NAMES = frozenset({
    "fault",
    "drive.replace",
    "degrade.transition",
    "parallel.pool_broken",
    # cluster layer: membership transitions (alive/suspect/dead/
    # rejoin), stale-epoch rejections seen by the client, timed
    # partitions, and per-volume replica-refresh copy completions.
    "cluster.membership",
    "cluster.stale-epoch",
    "cluster.partition",
    "cluster.copy",
    # service front end: admission verdicts that did not simply admit.
    "service.shed",
    "service.delay",
})

#: Metric names: dotted ``<subsystem>.<thing>[.<unit>]`` (see
#: :mod:`repro.obs.metrics` for the convention).
METRIC_NAMES = frozenset({
    # latency histograms
    "io.write.latency",
    "io.read.latency",
    "segio.flush.latency",
    "recovery.downtime",
    # counters
    "faults.fired",
    "segread.reconstructed",
    "gc.segments_collected",
    "gc.bytes_rewritten",
    "recovery.count",
    "scrub.segments_scanned",
    "scrub.corrupt_shards",
    "rebuild.segments",
    "rebuild.deferred_segments",
    # hedged reads (see repro.degrade.hedge)
    "hedge.fired",
    "hedge.won",
    "hedge.lost",
    "hedge.wasted",
    # degradation ladder / repair debt (see repro.degrade.ladder)
    "degrade.transitions",
    "degrade.write_through",
    "parallel.pool_broken",
    "parallel.maps",
    "parallel.items",
    "parallel.chunks",
    "pool.segio.hits",
    "pool.segio.misses",
    "pool.read.hits",
    "pool.read.misses",
    # cluster layer (cluster-scoped registry; node registries keep the
    # per-array namespace above)
    "cluster.writes",
    "cluster.reads",
    "cluster.stale_retries",
    "cluster.failovers",
    "cluster.heartbeats",
    "cluster.heartbeats_dropped",
    "cluster.reroute.latency",
    "cluster.rebalance.volumes_moved",
    "cluster.rebalance.bytes_copied",
    "cluster.epoch",
    "cluster.members_alive",
    # service front end (see repro.service). Per-tenant variants are
    # assembled dynamically ("service.queue_depth.<tenant>") and are
    # deliberately not registered: the registry holds the static
    # aggregate names only.
    "service.submitted",
    "service.admitted",
    "service.delayed",
    "service.shed",
    "service.dispatched",
    "service.errors",
    "service.api.calls",
    "service.wait.latency",
    "service.request.latency",
    "service.queue_depth",
    # gauges and sampled series
    "drives.alive",
    "degrade.ladder_state",
    "degrade.repair_debt",
    "rebuild.throttle_rate",
    "device.queue_depth",
    "cache.cblock_hit_rate",
    "dedup.savings_fraction",
})
