"""Deterministic JSONL exporters for traces and metric snapshots.

Every record is one line of ``json.dumps(..., sort_keys=True)`` with
fixed separators, so two runs from the same seed produce byte-identical
files. Metric exports exclude the :mod:`repro.perf` wall-clock stage
timings by default — host wall time is the one thing a replay cannot
reproduce — while keeping every sim-time number and event count.
"""

import json
import os


def _dumps(record):
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def trace_lines(obs):
    """The trace as a list of JSONL strings (no trailing newlines)."""
    return [_dumps(record) for record in obs.records]


def trace_text(obs):
    """The whole trace as one JSONL string (the golden-test unit)."""
    lines = trace_lines(obs)
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_lines(obs, include_wall_time=False):
    """Metric snapshot as JSONL records, one per metric."""
    snapshot = obs.metrics.snapshot(include_wall_time=include_wall_time)
    lines = []
    for name in sorted(snapshot["counters"]):
        lines.append(_dumps({"type": "counter", "name": name,
                             "value": snapshot["counters"][name]}))
    for name in sorted(snapshot["gauges"]):
        lines.append(_dumps({"type": "gauge", "name": name,
                             "value": snapshot["gauges"][name]}))
    for name in sorted(snapshot["histograms"]):
        lines.append(_dumps({"type": "histogram", "name": name,
                             **snapshot["histograms"][name]}))
    for name in sorted(snapshot["series"]):
        lines.append(_dumps({"type": "series", "name": name,
                             "points": snapshot["series"][name]}))
    perf_stages = snapshot.get("perf.stage", {})
    for name in sorted(perf_stages):
        lines.append(_dumps({"type": "perf-stage", "name": name,
                             **perf_stages[name]}))
    return lines


def metrics_text(obs, include_wall_time=False):
    lines = metrics_lines(obs, include_wall_time=include_wall_time)
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(obs, path):
    """Write the trace JSONL; returns the path."""
    with open(path, "w") as handle:
        handle.write(trace_text(obs))
    return path


def write_metrics(obs, path, include_wall_time=False):
    """Write the metrics JSONL; returns the path."""
    with open(path, "w") as handle:
        handle.write(metrics_text(obs, include_wall_time=include_wall_time))
    return path


def dump_run(obs, directory, prefix="obs"):
    """Write ``<prefix>_trace.jsonl`` + ``<prefix>_metrics.jsonl``.

    Returns (trace_path, metrics_path) — the artifacts the CI chaos
    lane uploads and ``python -m repro.obs.report`` consumes.
    """
    os.makedirs(directory, exist_ok=True)
    trace_path = os.path.join(directory, "%s_trace.jsonl" % prefix)
    metrics_path = os.path.join(directory, "%s_metrics.jsonl" % prefix)
    write_trace(obs, trace_path)
    write_metrics(obs, metrics_path)
    return trace_path, metrics_path


def load_jsonl(path):
    """Read a JSONL file back into a list of records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
