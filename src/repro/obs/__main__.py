"""``python -m repro.obs`` == ``python -m repro.obs.report``."""

from repro.obs.report import main

raise SystemExit(main())
