"""Unified observability: per-I/O tracing, sim-clock metrics, reports.

The paper's evaluation (Section 6) is only defensible if every number
can be decomposed: which stage spent the time, what the cache was doing
when the tail spiked, which injected fault caused which latency cliff.
``repro.obs`` is that single lens:

* :mod:`repro.obs.trace` — spans per client I/O with child spans per
  pipeline stage, timestamped on the **simulated** clock, so the same
  seed replays to a byte-identical trace;
* :mod:`repro.obs.metrics` — one registry of counters, gauges,
  log-bucket latency histograms, and time series (the one source of
  ``io.<op>.latency`` truth), unifying with the :mod:`repro.perf`
  hot-path counters under one namespace;
* :mod:`repro.obs.export` — deterministic JSONL snapshots of traces and
  metrics;
* :mod:`repro.obs.report` — ``python -m repro.obs.report`` renders
  per-stage latency tables, gauge series, and the fault-correlation
  view that joins :class:`~repro.faults.injector.FaultInjector` events
  onto latency spikes.

Tracing is off by default and costs a single flag check per
instrumented site (no allocation); enable it with
:meth:`Observability.enable_tracing`.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Series
from repro.obs.trace import NULL_OBS, Observability, Span, TraceBuffer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "Series",
    "Span",
    "TraceBuffer",
]
