"""Deterministic per-I/O tracing on the simulated clock.

A client operation opens a root span (``io.write``, ``io.read``);
pipeline stages open child spans (``nvram-commit``, ``dedup``,
``compress``, ``segio-append``, ``segio.flush``, ``rs-encode``,
``cblock-read``, ``segread.reconstruct``); background services get
their own roots (``gc.run``, ``scrub.run``, ``recovery``, ``rebuild``).
Point events (``fault``) share the span tree, which is what makes the
fault-correlation report a pure join.

Determinism contract: span ids are a per-:class:`Observability`
sequence, timestamps are :class:`~repro.sim.clock.SimClock` readings,
and simulated durations travel as explicit ``lat`` attributes (the sim
clock does not advance *inside* a pipeline stage — stages report the
latency their device models charged). Nothing wall-clock ever enters a
record, so the same seed emits byte-identical JSONL.

Cost contract: every instrumented site is guarded by
``obs is not None and obs.tracing`` — one attribute test and one flag
test, no allocation — when tracing is off. Span construction bumps the
``obs-span`` perf counter (and events ``obs-event``), which is how the
golden test proves the disabled hot path allocates nothing.
"""

from repro.perf import PERF


class Span:
    """One open span; finished spans become plain trace records."""

    __slots__ = ("span_id", "parent_id", "name", "start", "attrs")

    def __init__(self, span_id, parent_id, name, start, attrs):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attrs = attrs

    def set(self, **attrs):
        """Attach attributes (e.g. the simulated latency) before end."""
        self.attrs.update(attrs)


class TraceBuffer:
    """The mutable trace state: finished records, open stack, id counter.

    Split out of :class:`Observability` so several instances can share
    one buffer while keeping separate metric registries — the cluster
    layer gives every array node its own ``Observability`` (per-node
    metrics scoping) but threads one ``TraceBuffer`` through the
    client, the metadata manager, and every node, so a single trace
    follows an I/O across the client→MDM→node hop and through a
    failover. Span ids come from the shared counter, which keeps the
    interleaved multi-node trace deterministic.
    """

    __slots__ = ("records", "stack", "next_id")

    def __init__(self):
        #: Finished spans and fired events, in completion order.
        self.records = []
        self.stack = []
        self.next_id = 1

    def reset(self):
        self.records.clear()
        self.stack.clear()
        self.next_id = 1


class Observability:
    """Trace collector + metrics registry for one simulated system.

    One instance follows a system across controller failovers (pass it
    back through ``PurityArray.recover``), so a chaos run's whole
    timeline lands in a single trace. Passing an existing ``buffer``
    (see :class:`TraceBuffer`) joins this instance onto another's
    trace while keeping its metrics registry private — the per-node
    scoping the cluster layer relies on.
    """

    def __init__(self, clock, registry=None, buffer=None):
        from repro.obs.metrics import MetricsRegistry

        self.clock = clock
        #: The single flag every instrumented site checks.
        self.tracing = False
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.buffer = buffer if buffer is not None else TraceBuffer()

    @property
    def records(self):
        """Finished spans and fired events, in completion order."""
        return self.buffer.records

    # -- switches -------------------------------------------------------

    def enable_tracing(self):
        self.tracing = True
        return self

    def disable_tracing(self):
        self.tracing = False
        return self

    def reset(self):
        """Drop collected records and restart span numbering."""
        self.buffer.reset()

    # -- spans ----------------------------------------------------------

    @property
    def current_span_id(self):
        stack = self.buffer.stack
        return stack[-1].span_id if stack else 0

    def begin(self, name, **attrs):
        """Open a child of the current span; returns the :class:`Span`.

        Callers must pair with :meth:`end` (use ``try/finally`` where
        injected crashes can unwind through the stage).
        """
        PERF.incr("obs-span")
        buffer = self.buffer
        span = Span(buffer.next_id, self.current_span_id, name,
                    self.clock.now, attrs)
        buffer.next_id += 1
        buffer.stack.append(span)
        return span

    def end(self, span, **attrs):
        """Close ``span``; abandoned inner spans (crash unwinds that
        skipped their ``end``) are discarded, keeping replay exact."""
        if attrs:
            span.attrs.update(attrs)
        stack = self.buffer.stack
        while stack:
            top = stack.pop()
            if top is span:
                break
        self.buffer.records.append({
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": self.clock.now,
            "attrs": span.attrs,
        })

    def event(self, name, **attrs):
        """Record a point event (fault firings, crashes) in the tree."""
        PERF.incr("obs-event")
        buffer = self.buffer
        record = {
            "type": "event",
            "id": buffer.next_id,
            "parent": self.current_span_id,
            "name": name,
            "time": self.clock.now,
            "attrs": attrs,
        }
        buffer.next_id += 1
        buffer.records.append(record)
        return record

    # -- views ----------------------------------------------------------

    def spans(self, name=None):
        """Finished span records, optionally filtered by name."""
        return [
            record for record in self.records
            if record["type"] == "span" and (name is None or record["name"] == name)
        ]

    def events(self, name=None):
        return [
            record for record in self.records
            if record["type"] == "event" and (name is None or record["name"] == name)
        ]


#: Shared always-off instance for components constructed standalone
#: (unit tests); real arrays wire their own Observability in.
class _NullClock:
    now = 0.0


NULL_OBS = Observability(_NullClock())
