"""High availability: dual controllers over shared shelves (Figure 2).

Clients treat ports on both controllers interchangeably (active-active
networking), but only one controller serves traffic; the other forwards
requests over internal InfiniBand, which is the throughput bottleneck
of current arrays. When the secondary fails, latencies *improve*
slightly (no more forwarding). When the primary fails, the secondary —
whose cache the primary warms asynchronously — takes over by running
recovery over the shared drives; with the frontier set, that completes
far inside the 30-second client I/O timeout.
"""

from dataclasses import dataclass

from repro.core.array import PurityArray
from repro.errors import ControllerError
from repro.sim.rand import RandomStream
from repro.units import MICROSECOND

#: Clients time out and declare the array dead after this long.
CLIENT_TIMEOUT_SECONDS = 30.0


@dataclass
class FailoverResult:
    """Outcome of a controller failover."""

    downtime: float
    recovery_report: object

    @property
    def within_client_timeout(self):
        return self.downtime < CLIENT_TIMEOUT_SECONDS


class DualControllerArray:
    """The two-controller appliance wrapper."""

    def __init__(self, config=None, ib_forward_latency=15 * MICROSECOND,
                 secondary_port_fraction=0.5, warm_cache_fraction=0.8):
        self.active = PurityArray.create(config)
        self.config = self.active.config
        self.clock = self.active.clock
        self.ib_forward_latency = ib_forward_latency
        self.secondary_port_fraction = secondary_port_fraction
        self.warm_cache_fraction = warm_cache_fraction
        self.secondary_alive = True
        self.failovers = 0
        self._stream = RandomStream(self.config.seed).fork("ha")

    def _forwarding_penalty(self):
        """Extra latency when the request lands on the standby's ports."""
        if not self.secondary_alive:
            return 0.0
        if self._stream.random() < self.secondary_port_fraction:
            return self.ib_forward_latency
        return 0.0

    # ------------------------------------------------------------------
    # Client path

    def create_volume(self, name, size):
        return self.active.create_volume(name, size)

    def write(self, volume, offset, data):
        """Client write via either controller's ports."""
        penalty = self._forwarding_penalty()
        latency = self.active.write(volume, offset, data) + penalty
        if penalty:
            self.clock.advance(penalty)
        return latency

    def read(self, volume, offset, length):
        """Client read via either controller's ports."""
        penalty = self._forwarding_penalty()
        data, latency = self.active.read(volume, offset, length)
        if penalty:
            self.clock.advance(penalty)
        return data, latency + penalty

    def snapshot(self, volume, name):
        return self.active.snapshot(volume, name)

    def clone(self, volume, snapshot_name, new_volume):
        return self.active.clone(volume, snapshot_name, new_volume)

    @property
    def degraded_mode(self):
        """The serving controller's degradation-ladder state.

        This is the client-visible operating mode, and it survives
        failovers: the ladder is rebuilt from substrate evidence (failed
        drives, a torn NVRAM mirror) when the standby boots, not copied
        from the dead controller's memory.
        """
        return self.active.degrade.state

    # ------------------------------------------------------------------
    # Failure handling

    def fail_secondary(self):
        """Lose the standby: service continues, latencies improve."""
        if not self.secondary_alive:
            raise ControllerError("secondary is already down")
        self.secondary_alive = False

    def fail_primary(self):
        """Lose the serving controller: the standby recovers and takes over.

        The interposers hand the drives to the survivor; the survivor's
        warmed cache discounts patch loads. Returns a FailoverResult.
        """
        if not self.secondary_alive:
            raise ControllerError(
                "both controllers down: the array is unavailable"
            )
        shelf, boot_region, clock = self.active.crash()
        from repro.core.recovery import recover_array

        before = clock.now
        survivor, report = recover_array(
            PurityArray,
            self.config,
            shelf,
            boot_region,
            clock,
            warm_cache_fraction=self.warm_cache_fraction,
        )
        downtime = clock.now - before
        self.active = survivor
        self.secondary_alive = False
        self.failovers += 1
        return FailoverResult(downtime=downtime, recovery_report=report)

    def replace_failed_controller(self):
        """Install a fresh standby (the 4-hour-SLA service call)."""
        if self.secondary_alive:
            raise ControllerError("both controller slots are already filled")
        self.secondary_alive = True
