"""The data path: application writes in, application reads out.

Write path (Sections 4.6–4.7): a write is committed to NVRAM (the
acknowledged latency), split into cblock-sized pieces matching the
write, deduplicated inline (lookup every sector hash, byte-verify,
anchor-extend), and the unique remainder is compressed into cblocks
appended to the open segio. Address-map facts record where everything
went; they are derived facts, replayable from the raw NVRAM record.

Read path (Sections 3.4, 4.5): resolve the medium chain, gather every
address-map extent overlapping the range at each level, and paint
newest-over-oldest — each medium's extents are a patch applied over its
underlying medium. Extra random reads (dedup references, chain hops)
are the price of the capacity savings, and flash makes them cheap.
"""

from collections import OrderedDict

from repro.compression.cblock import build_cblock, parse_cblock, split_write
from repro.compression.engine import CompressionStats, ZlibCompressor
from repro.core import tables as T
from repro.dedup.hashing import sampled_sector_hashes
from repro.dedup.index import DedupIndex, DedupLocation
from repro.dedup.inline import InlineDeduper
from repro.errors import SnapshotError, VolumeError
from repro.layout.segment import SegmentDescriptor
from repro.mediums.medium import MEDIUM_NONE
from repro.parallel.workers import compress_cblocks
from repro.perf import PERF
from repro.units import MAX_CBLOCK, SECTOR

#: Depth guard for medium recursion (GC keeps real chains <= 3).
MAX_PAINT_DEPTH = 64


class CBlockCache:
    """LRU cache of decompressed cblocks, indexed by segment.

    Keys are (segment_id, payload_offset). A per-segment key index
    makes :meth:`invalidate_segment` proportional to the entries cached
    *for that segment* instead of a scan of the whole cache, and every
    lookup/eviction/invalidation feeds both local counters (unit
    tests) and the global perf counters (``perf_report()``).
    """

    def __init__(self, capacity):
        self.capacity = capacity
        self._entries = OrderedDict()
        self._segment_keys = {}  # segment_id -> set of cached keys
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        return key in self._entries

    def get(self, key):
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            PERF.incr("cblock-cache-miss")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        PERF.incr("cblock-cache-hit")
        return value

    def _drop_key_index(self, key):
        keys = self._segment_keys.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._segment_keys[key[0]]

    def put(self, key, value):
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
        else:
            self._segment_keys.setdefault(key[0], set()).add(key)
        entries[key] = value
        while len(entries) > self.capacity:
            evicted_key, _value = entries.popitem(last=False)
            self._drop_key_index(evicted_key)
            self.evictions += 1
            PERF.incr("cblock-cache-eviction")

    def invalidate_segment(self, segment_id):
        """Drop every entry of one segment; returns how many went."""
        keys = self._segment_keys.pop(segment_id, None)
        if not keys:
            return 0
        for key in keys:
            del self._entries[key]
        self.invalidations += len(keys)
        PERF.incr("cblock-cache-invalidation", len(keys))
        return len(keys)

    def clear(self):
        self._entries.clear()
        self._segment_keys.clear()

    def counters(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
        }


class DataPath:
    """Write and read pipelines over one array's substrate."""

    def __init__(self, pipeline, medium_table, segwriter, segreader, config):
        self.pipeline = pipeline
        self.tables = pipeline.tables
        self.medium_table = medium_table
        self.segwriter = segwriter
        self.segreader = segreader
        self.config = config
        self.compressor = ZlibCompressor(config.compression_level)
        self.compression_stats = CompressionStats()
        self.dedup_index = DedupIndex(
            recent_capacity=config.dedup_recent_capacity,
            frequent_capacity=config.dedup_frequent_capacity,
        )
        self.deduper = InlineDeduper(
            self.dedup_index,
            self._fetch_sector,
            min_run_sectors=config.dedup_min_run_sectors,
            fetch_run=self._fetch_run,
        )
        self._cblock_cache = CBlockCache(config.cblock_cache_entries)
        self._descriptor_cache = {}
        #: Fault-injection crashpoint router (see :mod:`repro.faults`).
        self.crashpoints = None
        #: Observability handle (see :mod:`repro.obs`); the array wires
        #: its own in. None-safe: standalone datapaths trace nothing.
        self.obs = None
        #: Parallel executor (see :mod:`repro.parallel`); None-safe —
        #: standalone datapaths compress serially inline.
        self.parallel = None
        #: Recycled read paint buffers; None-safe (fresh bytearrays).
        self.read_pool = None
        #: Optional :class:`repro.degrade.DegradeEngine`; wired by the
        #: array. Gates writes (read-only rung) and forces write-through
        #: flushing while the NVRAM mirror is torn.
        self.degrade = None
        self.logical_bytes_written = 0
        self.dedup_bytes_saved = 0

    # ------------------------------------------------------------------
    # Physical plumbing

    def descriptor_for(self, segment_id):
        """Resolve a segment id to its descriptor via the segment table."""
        cached = self._descriptor_cache.get(segment_id)
        if cached is not None:
            return cached
        fact = self.tables.segments.get((segment_id,))
        if fact is None:
            raise VolumeError("segment %d is unknown" % segment_id)
        placements = tuple(tuple(pair) for pair in fact.value[0])
        descriptor = SegmentDescriptor(segment_id=segment_id, placements=placements)
        self._descriptor_cache[segment_id] = descriptor
        return descriptor

    def drop_caches(self):
        """Empty the controller's read caches (tests and failover drills)."""
        self._cblock_cache.clear()
        self._descriptor_cache.clear()

    def invalidate_segment(self, segment_id):
        """Drop caches after GC frees or rewrites a segment."""
        self._descriptor_cache.pop(segment_id, None)
        self._cblock_cache.invalidate_segment(segment_id)

    def _read_cblock(self, segment_id, payload_offset, stored_length):
        """Fetch + decompress one cblock; returns (logical bytes, latency)."""
        cache_key = (segment_id, payload_offset)
        cached = self._cblock_cache.get(cache_key)
        if cached is not None:
            return cached, 0.0
        obs = self.obs
        span = None
        if obs is not None and obs.tracing:
            span = obs.begin("cblock-read", segment=segment_id,
                             offset=payload_offset)
        try:
            # Data still sitting in the open segio is served from RAM;
            # the commit already lives in NVRAM, so this is safe and fast.
            blob = self.segwriter.read_unflushed(
                segment_id, payload_offset, stored_length
            )
            latency = 0.0
            source = "segio-ram"
            if blob is None:
                descriptor = self.descriptor_for(segment_id)
                blob, latency = self.segreader.read_payload(
                    descriptor, payload_offset, stored_length
                )
                source = "media"
            data = parse_cblock(blob)
        except BaseException:
            if span is not None:
                obs.end(span, failed=True)
            raise
        if span is not None:
            obs.end(span, lat=latency, source=source)
        self._cblock_cache.put(cache_key, data)
        return data, latency

    def _fetch_sector(self, location):
        """Dedup verify callback: one sector's bytes, or None."""
        if location.sector_index < 0:
            return None
        try:
            data, _latency = self._read_cblock(
                location.segment_id, location.payload_offset, location.stored_length
            )
        except Exception:
            return None  # stale index entry: treat as a miss, never an error
        start = location.sector_index * SECTOR
        if start + SECTOR > len(data):
            return None
        return data[start : start + SECTOR]

    def _fetch_run(self, location, sector_count):
        """Bulk dedup-extension callback: up to ``sector_count`` whole
        sectors starting at ``location``, as a zero-copy memoryview, or
        None when the start sector is unreadable."""
        if location.sector_index < 0 or sector_count <= 0:
            return None
        try:
            data, _latency = self._read_cblock(
                location.segment_id, location.payload_offset, location.stored_length
            )
        except Exception:
            return None  # stale index entry: treat as a miss, never an error
        start = location.sector_index * SECTOR
        if start + SECTOR > len(data):
            return None
        whole = (len(data) // SECTOR) * SECTOR
        end = min(whole, start + sector_count * SECTOR)
        return memoryview(data)[start:end]

    # ------------------------------------------------------------------
    # Write path

    def write(self, medium_id, offset, data):
        """Write ``data`` at (medium, offset); returns commit latency."""
        if not data:
            raise VolumeError("zero-length write")
        if offset % SECTOR or len(data) % SECTOR:
            raise VolumeError("writes must be 512 B aligned")
        degrade = self.degrade
        if degrade is not None:
            degrade.check_writable()
        cp = self.crashpoints
        if cp is not None:
            cp.hit("datapath.write-start", medium_id=medium_id, offset=offset)
        obs = self.obs
        span = None
        if obs is not None and obs.tracing:
            span = obs.begin("nvram-commit", nbytes=len(data))
        try:
            with PERF.timer("nvram-commit"):
                _fact, latency = self.pipeline.commit_raw_write(
                    medium_id, offset, data
                )
        except BaseException:
            if span is not None:
                obs.end(span, crashed=True)
            raise
        if span is not None:
            obs.end(span, lat=latency)
        # Past this point the write is durable in NVRAM: a crash below
        # loses the acknowledgement, never the data (recovery replays).
        if cp is not None:
            cp.hit("datapath.post-commit", medium_id=medium_id, offset=offset)
        self.process_write(medium_id, offset, data)
        if cp is not None:
            cp.hit("datapath.post-process", medium_id=medium_id, offset=offset)
        self.pipeline.after_raw_write_processed()
        if degrade is not None and degrade.write_through:
            # nvram-degraded rung: the mirror is torn, so an ack backed
            # only by NVRAM is not durable enough. Push the commit all
            # the way to flash before returning; the replay debt this
            # write would have carried is settled by reaching media.
            self.pipeline.drain()
            degrade.note_write_through_drain()
        return latency

    def process_write(self, medium_id, offset, data):
        """Run the dedup/compress/segment pipeline (also recovery replay)."""
        self.logical_bytes_written += len(data)
        self._ingest(medium_id, offset, data)

    def _ingest(self, medium_id, offset, data):
        # Address-map entries are keyed by (medium, start offset), so a
        # write that starts where a longer extent starts replaces that
        # extent wholesale. Capture the soon-to-be-shadowed tail bytes
        # first and re-ingest them after the write — the read-modify-
        # write half of a partial overwrite. Uniform-size rewrites never
        # displace a tail, so the common path is untouched.
        tail = self._displaced_tail(medium_id, offset, len(data))
        chunks = list(split_write(offset, data))
        blobs = self._speculate_compress(chunks)
        for index, (cblock_offset, chunk) in enumerate(chunks):
            self._process_cblock(
                medium_id, cblock_offset, chunk,
                precompressed=None if blobs is None else blobs[index],
            )
        if tail is not None:
            tail_offset, tail_bytes = tail
            self._ingest(medium_id, tail_offset, tail_bytes)

    def _displaced_tail(self, medium_id, offset, length):
        """Visible bytes past ``offset+length`` that this write's extent
        inserts would orphan: any existing extent starting inside the
        write span may be replaced at its key, and if it extends past
        the write it carries bytes the new extents do not. Returns
        (offset, bytes) to re-ingest, or None when nothing is at risk.
        """
        end = offset + length
        tail_end = end
        for fact in self.tables.address_map.scan(
            (medium_id, offset), (medium_id, end - 1)
        ):
            extent_end = fact.key[1] + self._extent_logical_length(fact.value)
            if extent_end > tail_end:
                tail_end = extent_end
        if tail_end == end:
            return None
        buffer = bytearray(tail_end - end)
        self._paint(medium_id, end, tail_end - end, buffer, 0, 0, [0.0])
        return end, bytes(buffer)

    def _speculate_compress(self, chunks):
        """Precompress whole cblocks in the worker pool, ahead of dedup.

        Speculative: a chunk's blob is adopted only when inline dedup
        leaves the entire chunk unique — exactly the case where the
        serial path would compress the identical bytes, so adoption is
        byte-for-byte equivalent. The map runs with ``record=False``
        (no spans, no counters) so traces stay byte-identical across
        worker counts; at ``workers=0`` it never runs at all.
        """
        executor = self.parallel
        if (executor is None or not self.config.inline_compression
                or not executor.should_speculate(len(chunks))):
            return None
        level = self.config.compression_level
        items = [(bytes(chunk), level) for _offset, chunk in chunks]
        return executor.map(
            "parallel.compress", compress_cblocks, items,
            costs=[len(data) for data, _level in items], record=False,
        )

    def _process_cblock(self, medium_id, offset, chunk, precompressed=None):
        obs = self.obs
        if self.config.inline_dedup:
            span = None
            if obs is not None and obs.tracing:
                span = obs.begin("dedup", nbytes=len(chunk))
            try:
                matches = self.deduper.find_matches(chunk)
            except BaseException:
                if span is not None:
                    obs.end(span, crashed=True)
                raise
            if span is not None:
                obs.end(span, matches=len(matches))
        else:
            matches = []
        cursor = 0
        for match in matches:
            if match.byte_start > cursor:
                self._store_unique(
                    medium_id, offset + cursor, chunk[cursor : match.byte_start]
                )
            self._record_dedup_extent(medium_id, offset + match.byte_start, match)
            cursor = match.byte_start + match.byte_length
        if cursor < len(chunk):
            self._store_unique(
                medium_id, offset + cursor, chunk[cursor:],
                precompressed=precompressed if not matches else None,
            )

    def _store_unique(self, medium_id, offset, data, precompressed=None):
        """Compress + append one unique cblock, record its extent."""
        compressor = self.compressor if self.config.inline_compression else None
        if compressor is None:
            from repro.compression.engine import NullCompressor

            compressor = NullCompressor()
        obs = self.obs
        tracing = obs is not None and obs.tracing
        span = obs.begin("compress", nbytes=len(data)) if tracing else None
        with PERF.timer("compress"):
            if precompressed is not None:
                blob, codec_id = precompressed
            else:
                blob, codec_id = build_cblock(data, compressor)
        if span is not None:
            obs.end(span, stored=len(blob))
        span = obs.begin("segio-append", nbytes=len(blob)) if tracing else None
        try:
            with PERF.timer("segio-append"):
                descriptor, payload_offset, flush_latency = (
                    self.segwriter.append_data(blob)
                )
        except BaseException:
            if span is not None:
                obs.end(span, crashed=True)
            raise
        if span is not None:
            obs.end(span, lat=flush_latency, segment=descriptor.segment_id)
        self.compression_stats.note(len(data), len(blob), codec_id)
        self.pipeline.insert_derived(
            T.ADDRESS_MAP,
            (medium_id, offset),
            (T.EXTENT_DIRECT, descriptor.segment_id, payload_offset,
             len(blob), len(data)),
        )
        # Warm the cblock cache: freshly written data is the most likely
        # to be read (and to anchor dedup verifies) next.
        self._cblock_cache.put((descriptor.segment_id, payload_offset), data)
        self._record_hashes(descriptor.segment_id, payload_offset, len(blob), data)

    def _record_hashes(self, segment_id, payload_offset, stored_length, data):
        """Record every Nth sector hash for future dedup (Section 4.7).

        Only the sampled sectors are digested — the other 7/8 (at the
        default rate) were never going to be recorded, so hashing them
        here would be pure waste.
        """
        with PERF.timer("hash"):
            sampled = sampled_sector_hashes(data, self.config.dedup_sample_every)
        for sector, value in sampled:
            self.dedup_index.record(
                value,
                DedupLocation(segment_id, payload_offset, stored_length, sector),
            )

    def _record_dedup_extent(self, medium_id, offset, match):
        location = match.location
        self.dedup_bytes_saved += match.byte_length
        self.pipeline.insert_derived(
            T.ADDRESS_MAP,
            (medium_id, offset),
            (T.EXTENT_DEDUP, location.segment_id, location.payload_offset,
             location.stored_length, match.byte_length, location.sector_index),
        )

    # ------------------------------------------------------------------
    # Read path

    def read(self, medium_id, offset, length):
        """Read a byte range; returns (bytes, latency)."""
        if length <= 0:
            raise VolumeError("zero-length read")
        pool = self.read_pool
        buffer = pool.acquire(length) if pool is not None else bytearray(length)
        latencies = [0.0]
        try:
            self._paint(medium_id, offset, length, buffer, 0, 0, latencies)
            return bytes(buffer), max(latencies)
        finally:
            if pool is not None:
                pool.release(buffer)

    def _paint(self, medium_id, offset, length, buffer, dest, depth, latencies):
        """Fill ``buffer[dest:dest+length]`` with (medium, offset)'s data."""
        if depth > MAX_PAINT_DEPTH:
            raise SnapshotError("medium chain too deep at medium %d" % medium_id)
        end = offset + length
        for row in self.medium_table.ranges_of(medium_id):
            sub_start = max(offset, row.start)
            sub_end = min(end, row.end)
            if sub_start >= sub_end:
                continue
            if row.target != MEDIUM_NONE:
                self._paint(
                    row.target,
                    row.target_offset + (sub_start - row.start),
                    sub_end - sub_start,
                    buffer,
                    dest + (sub_start - offset),
                    depth + 1,
                    latencies,
                )
        # This medium's own extents overlay whatever the chain supplied.
        self._overlay_extents(medium_id, offset, length, buffer, dest, latencies)

    def _overlay_extents(self, medium_id, offset, length, buffer, dest, latencies):
        end = offset + length
        scan_lo = (medium_id, max(0, offset - MAX_CBLOCK + SECTOR))
        scan_hi = (medium_id, end - 1)
        overlapping = []
        for fact in self.tables.address_map.scan(scan_lo, scan_hi):
            extent_offset = fact.key[1]
            logical_length = self._extent_logical_length(fact.value)
            if extent_offset + logical_length <= offset or extent_offset >= end:
                continue
            overlapping.append(fact)
        overlapping.sort(key=lambda fact: fact.seqno)
        for fact in overlapping:
            self._paint_extent(fact, offset, end, buffer, dest, latencies)

    @staticmethod
    def _extent_logical_length(value):
        tag = value[0]
        if tag == T.EXTENT_HOLE:
            return value[1]
        return value[4]

    def _paint_extent(self, fact, window_start, window_end, buffer, dest, latencies):
        extent_offset = fact.key[1]
        value = fact.value
        tag = value[0]
        logical_length = self._extent_logical_length(value)
        paint_lo = max(window_start, extent_offset)
        paint_hi = min(window_end, extent_offset + logical_length)
        if paint_lo >= paint_hi:
            return
        if tag == T.EXTENT_HOLE:
            data = b"\x00" * (paint_hi - paint_lo)
        else:
            _tag, segment_id, payload_offset, stored_length, _len = value[:5]
            cblock, latency = self._read_cblock(
                segment_id, payload_offset, stored_length
            )
            latencies.append(latency)
            skew_bytes = value[5] * SECTOR if tag == T.EXTENT_DEDUP else 0
            inner_lo = skew_bytes + (paint_lo - extent_offset)
            data = cblock[inner_lo : inner_lo + (paint_hi - paint_lo)]
            if len(data) != paint_hi - paint_lo:
                raise VolumeError(
                    "extent at (%d, %d) shorter than mapped range"
                    % (fact.key[0], extent_offset)
                )
        base = dest + (paint_lo - window_start)
        buffer[base : base + len(data)] = data

    # ------------------------------------------------------------------
    # Liveness accounting (GC + telemetry)

    def visible_extents(self):
        """Every visible address-map fact (latest per key, elisions applied)."""
        return list(self.tables.address_map.scan())

    def live_cblocks_by_segment(self):
        """segment_id -> {(payload_offset, stored_length)} of live cblocks."""
        by_segment = {}
        for fact in self.visible_extents():
            value = fact.value
            if value[0] == T.EXTENT_HOLE:
                continue
            segment_id = value[1]
            by_segment.setdefault(segment_id, set()).add((value[2], value[3]))
        return by_segment
