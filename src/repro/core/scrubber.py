"""Background scrubbing (paper Section 5.1).

Worn flash leaks charge faster than new flash, and endurance ratings
assume a year of unpowered retention. Purity periodically scrubs and
rewrites stored data, so worn cells are refreshed far more often than
the rating assumed — which is how arrays run safely past rated wear.

The scrubber walks sealed segments, reads every shard, checks parity
consistency, and evacuates (rewrites) any segment showing corrupt pages
or sitting on heavily worn erase blocks. Evacuation reuses the garbage
collector, which re-reads through Reed-Solomon reconstruction, so a
scrub repairs as it refreshes.
"""

from dataclasses import dataclass, field

from repro.errors import VolumeError
from repro.parallel.workers import verify_stripes


@dataclass
class ScrubReport:
    """What one scrub pass found and fixed."""

    segments_scanned: int = 0
    #: Segments whose descriptor vanished between the table scan and the
    #: shard reads (GC freed them mid-pass) — skipped, not an error.
    segments_skipped: int = 0
    shards_read: int = 0
    corrupt_shards: int = 0
    parity_mismatches: int = 0
    segments_rewritten: int = 0
    #: Rewrites the rebuild governor deferred to protect foreground SLO.
    segments_deferred: int = 0
    details: list = field(default_factory=list)


class Scrubber:
    """Proactive data-integrity sweeps for one array."""

    #: Rewrite segments whose worst erase block exceeds this wear.
    WEAR_REFRESH_THRESHOLD = 0.9

    def __init__(self, array):
        self.array = array
        self.passes = 0

    def run(self, max_segments=None):
        """Scrub sealed segments; returns a :class:`ScrubReport`."""
        report = ScrubReport()
        array = self.array
        obs = array.obs
        span = None
        if obs is not None and obs.tracing:
            span = obs.begin("scrub.run")
        try:
            geometry = array.config.segment_geometry
            segment_ids = [fact.key[0] for fact in array.tables.segments.scan()]
            if max_segments is not None:
                segment_ids = segment_ids[:max_segments]
            governor = getattr(array, "rebuild_governor", None)
            for segment_id in segment_ids:
                needs_rewrite = self._scrub_segment(segment_id, geometry, report)
                if not needs_rewrite:
                    continue
                if governor is not None and not governor.grant():
                    # Foreground p99 is over the SLO: leave the rewrite
                    # for a later pass rather than piling on repair I/O.
                    report.segments_deferred += 1
                    continue
                if array.gc.collect_segment(segment_id):
                    report.segments_rewritten += 1
        except BaseException:
            if span is not None:
                obs.end(span, crashed=True)
            raise
        self.passes += 1
        if span is not None:
            obs.end(
                span,
                scanned=report.segments_scanned,
                corrupt_shards=report.corrupt_shards,
                rewritten=report.segments_rewritten,
            )
        if obs is not None:
            obs.metrics.counter("scrub.segments_scanned").inc(
                report.segments_scanned
            )
            obs.metrics.counter("scrub.corrupt_shards").inc(
                report.corrupt_shards
            )
            if report.segments_deferred:
                obs.metrics.counter("rebuild.deferred_segments").inc(
                    report.segments_deferred
                )
        return report

    def _scrub_segment(self, segment_id, geometry, report):
        array = self.array
        try:
            descriptor = array.datapath.descriptor_for(segment_id)
        except VolumeError:
            # Only the missing-descriptor race (GC freed the segment
            # after the table scan) is skippable; any other failure in
            # a scrub is a real bug and must propagate.
            report.segments_skipped += 1
            return False
        report.segments_scanned += 1
        corrupt = False
        worn = False
        stripes = []  # complete stripes, parity-checked in one batch below
        for segio in range(geometry.segios_per_segment):
            written = self._segio_state(descriptor, geometry, segio)
            if written == "unwritten":
                continue  # never flushed (open or retired segment tail)
            if written == "corrupt":
                corrupt = True
            bodies = []
            for _shard, (drive_name, au_index) in enumerate(descriptor.placements):
                drive = array.drives.get(drive_name)
                if drive is None or drive.failed:
                    corrupt = True
                    bodies.append(None)
                    continue
                offset = geometry.device_offset(
                    au_index * geometry.au_size,
                    segio,
                    geometry.wu_header_size,
                )
                result = drive.read(offset, geometry.shard_body)
                report.shards_read += 1
                if result.corrupted:
                    report.corrupt_shards += 1
                    corrupt = True
                    bodies.append(None)
                    continue
                bodies.append(result.data)
                erase_block = drive.geometry.erase_block_of(offset)
                if drive.wear.wear_fraction(erase_block) > self.WEAR_REFRESH_THRESHOLD:
                    worn = True
            if all(body is not None for body in bodies):
                stripes.append(tuple(bodies))
        for ok in self._verify_stripes(stripes):
            if not ok:
                report.parity_mismatches += 1
                corrupt = True
        return corrupt or worn

    def _verify_stripes(self, stripes):
        """Parity-check complete stripes, batched per segment.

        The drive reads above stay serial and in their original order
        (they mutate sim state); only the pure verify math fans out
        through the array's parallel executor when one is wired.
        """
        if not stripes:
            return []
        array = self.array
        codec = array.codec
        executor = getattr(array, "parallel", None)
        if executor is None:
            return [codec.verify(list(stripe)) for stripe in stripes]
        items = [(codec.data_shards, codec.parity_shards, stripe)
                 for stripe in stripes]
        costs = [sum(len(body) for body in stripe) for stripe in stripes]
        return executor.map(
            "parallel.scrub-verify", verify_stripes, items, costs=costs
        )

    def _segio_state(self, descriptor, geometry, segio):
        """Classify one segio: "written", "unwritten", or "corrupt".

        Headers are replicated on every shard: a valid header anywhere
        means written; a corrupted header read means the flash is
        rotting; all-zero header bytes on every alive shard means the
        stripe was never flushed.
        """
        from repro.layout.segment import SegioHeader

        saw_corruption = False
        for drive_name, au_index in descriptor.placements:
            drive = self.array.drives.get(drive_name)
            if drive is None or drive.failed:
                continue
            offset = geometry.device_offset(
                au_index * geometry.au_size, segio, 0
            )
            result = drive.read(offset, geometry.wu_header_size)
            if result.corrupted:
                saw_corruption = True
                continue
            if SegioHeader.decode(result.data) is not None:
                return "written"
            if any(result.data):
                saw_corruption = True  # non-zero garbage where a header was
        return "corrupt" if saw_corruption else "unwritten"
