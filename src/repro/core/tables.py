"""The standard metadata relations of a Purity array.

Section 4.8 names the important tables: the medium table, the segment
table, deduplication/link bookkeeping, and (here) the volume and
snapshot catalogs. Each is a :class:`~repro.pyramid.relation.Relation`
of immutable facts; this module fixes their names, key shapes, and
value layouts so the data path, recovery, and garbage collector agree.

Address-map values are tagged tuples:

* direct extent:  (EXTENT_DIRECT, segment_id, payload_offset,
  stored_length, logical_length)
* dedup reference: (EXTENT_DEDUP, segment_id, payload_offset,
  stored_length, logical_length, sector_skew) — points into another
  extent's cblock, ``sector_skew`` sectors in.
* hole: (EXTENT_HOLE, logical_length) — an overwrite that explicitly
  zeroes a range (volume truncation, unmap).
"""

from repro.pyramid.relation import Relation

EXTENT_DIRECT = 0
EXTENT_DEDUP = 1
EXTENT_HOLE = 2

#: Relation names are stable identifiers used in WAL records and
#: boot-region patch pointers.
ADDRESS_MAP = "address_map"
MEDIUMS = "mediums"
SEGMENTS = "segments"
VOLUMES = "volumes"
SNAPSHOTS = "snapshots"
#: Persisted elide records: deletion predicates are themselves
#: immutable facts (Section 4.10), so deletions survive crashes.
ELIDES = "__elides"
RAW_WRITES = "__raw_writes"


class TableSet:
    """All relations of one array, keyed by name."""

    def __init__(self, fanout=8):
        self.relations = {
            # (medium_id, byte_offset) -> extent value
            ADDRESS_MAP: Relation(ADDRESS_MAP, key_arity=2, fanout=fanout),
            # (medium_id, start) -> (end, target, target_offset, status)
            MEDIUMS: Relation(MEDIUMS, key_arity=2, fanout=fanout),
            # (segment_id,) -> (placements_flat..., ) as a nested tuple
            SEGMENTS: Relation(SEGMENTS, key_arity=1, fanout=fanout),
            # (volume_name,) -> (size, anchor_medium, status)
            VOLUMES: Relation(VOLUMES, key_arity=1, fanout=fanout),
            # (volume_name, snapshot_name) -> (medium_id, size)
            SNAPSHOTS: Relation(SNAPSHOTS, key_arity=2, fanout=fanout),
            # (target_relation_name, predicate_spec) -> ()
            ELIDES: Relation(ELIDES, key_arity=2, fanout=fanout),
        }

    def __getitem__(self, name):
        return self.relations[name]

    def __iter__(self):
        return iter(self.relations.values())

    def names(self):
        return list(self.relations)

    @property
    def address_map(self):
        return self.relations[ADDRESS_MAP]

    @property
    def mediums(self):
        return self.relations[MEDIUMS]

    @property
    def segments(self):
        return self.relations[SEGMENTS]

    @property
    def volumes(self):
        return self.relations[VOLUMES]

    @property
    def snapshots(self):
        return self.relations[SNAPSHOTS]

    def max_seqno(self):
        """Highest sequence number stored anywhere (for recovery)."""
        highest = 0
        for relation in self:
            for patch in relation.pyramid.patches:
                highest = max(highest, patch.max_seq)
            memtable = relation.pyramid.memtable
            if memtable.max_seq is not None:
                highest = max(highest, memtable.max_seq)
        return highest
