"""Garbage collection (paper Sections 4.5, 4.7, 4.10).

Purity's user data is unordered, so GC is cheap segment evacuation:
pick the segments with the least live data, rewrite their live cblocks
into the open segio, repoint the address map, and free the allocation
units. Elide records are applied during pyramid merges (space for
deleted metadata), and deduplicated cblocks are rewritten first so they
cluster into their own segments (the paper's dedup segregation).

The collector also owns two medium-tree duties: sweeping unreferenced
mediums (snapshot/volume deletion only drops *references*) and keeping
delegation chains short enough that reads touch at most three levels.
"""

from dataclasses import dataclass, field

from repro.core import tables as T
from repro.errors import AllocationError
from repro.mediums.medium import MEDIUM_NONE


@dataclass
class GCReport:
    """What one GC pass did."""

    segments_examined: int = 0
    segments_collected: int = 0
    cblocks_rewritten: int = 0
    bytes_rewritten: int = 0
    aus_released: int = 0
    mediums_swept: int = 0
    chains_shortened: int = 0
    details: list = field(default_factory=list)


class GarbageCollector:
    """Background space reclamation for one array."""

    #: Collect segments whose live fraction is below this.
    LIVE_RATIO_THRESHOLD = 0.75

    def __init__(self, array):
        self.array = array
        #: Fault-injection crashpoint router (see :mod:`repro.faults`).
        self.crashpoints = None
        self.total_segments_collected = 0
        self.total_bytes_rewritten = 0

    # ------------------------------------------------------------------
    # Liveness

    def segment_liveness(self):
        """[(segment_id, live_bytes, capacity)] for every sealed segment."""
        datapath = self.array.datapath
        live_map = datapath.live_cblocks_by_segment()
        capacity = self.array.config.segment_geometry.payload_per_segment
        rows = []
        for fact in self.array.tables.segments.scan():
            segment_id = fact.key[0]
            live = sum(
                stored for _offset, stored in live_map.get(segment_id, ())
            )
            rows.append((segment_id, live, capacity))
        return rows

    def _open_segment_id(self):
        descriptor = self.array.segwriter.current_descriptor
        return descriptor.segment_id if descriptor is not None else None

    def _pinned_identities(self):
        """(drive, au) first-placement pairs of patch-pinned segments."""
        return self.array.pipeline.pinned_segment_ids()

    def _is_pinned(self, descriptor):
        first = descriptor.placements[0]
        return (first[0], first[1]) in self._pinned_identities()

    # ------------------------------------------------------------------
    # Segment collection

    def run(self, max_segments=4):
        """Collect up to ``max_segments`` of the emptiest segments."""
        obs = self.array.obs
        span = None
        if obs is not None and obs.tracing:
            span = obs.begin("gc.run", max_segments=max_segments)
        report = GCReport()
        try:
            liveness = self.segment_liveness()
            report.segments_examined = len(liveness)
            candidates = sorted(
                (row for row in liveness if row[1] / row[2] < self.LIVE_RATIO_THRESHOLD),
                key=lambda row: row[1] / row[2],
            )
            for segment_id, _live, _capacity in candidates[:max_segments]:
                if self.collect_segment(segment_id, report):
                    report.segments_collected += 1
            self.sweep_mediums(report)
            self.shorten_chains(report)
            self.array.pipeline.compact()
        except BaseException:
            if span is not None:
                obs.end(span, crashed=True)
            raise
        if span is not None:
            obs.end(
                span,
                collected=report.segments_collected,
                rewritten=report.bytes_rewritten,
            )
        if obs is not None:
            obs.metrics.counter("gc.segments_collected").inc(
                report.segments_collected
            )
            obs.metrics.counter("gc.bytes_rewritten").inc(report.bytes_rewritten)
        return report

    def collect_segment(self, segment_id, report=None):
        """Evacuate one segment; returns True if it was freed."""
        report = report if report is not None else GCReport()
        array = self.array
        datapath = array.datapath
        try:
            descriptor = datapath.descriptor_for(segment_id)
        except Exception:
            return False
        cp = self.crashpoints
        obs = array.obs
        span = None
        if obs is not None and obs.tracing:
            span = obs.begin("gc.collect", segment=segment_id)
        try:
            return self._collect_segment_traced(
                segment_id, descriptor, report, cp, obs, span
            )
        except BaseException:
            if span is not None:
                obs.end(span, crashed=True)
            raise

    def _collect_segment_traced(self, segment_id, descriptor, report, cp, obs,
                                span):
        array = self.array
        datapath = array.datapath
        if cp is not None:
            cp.hit("gc.pre-collect", segment_id=segment_id)
        if segment_id == self._open_segment_id():
            # Evacuating the open segment: retire it first so rewrites
            # (and re-homed patches) land in a fresh segment.
            array.segwriter.retire_current_segment()
        if self._is_pinned(descriptor):
            first = descriptor.placements[0]
            array.pipeline.unpin_segment((first[0], first[1]))
            if self._is_pinned(descriptor):
                if span is not None:
                    obs.end(span, skipped="pinned")
                return False
        referencing = [
            fact for fact in datapath.visible_extents()
            if fact.value[0] != T.EXTENT_HOLE and fact.value[1] == segment_id
        ]
        relocations = self._rewrite_live_cblocks(
            descriptor, referencing, report
        )
        # Durability barrier: the rewritten cblocks must be on media
        # *before* the repointed facts commit to the WAL. Repoint facts
        # survive a crash via NVRAM, so if they could reference data
        # still sitting in the open segio's RAM, recovery would rebuild
        # an address map pointing at never-flushed locations.
        if relocations:
            array.segwriter.flush()
        if cp is not None:
            cp.hit("gc.post-rewrite", segment_id=segment_id)
        self._repoint_extents(referencing, relocations)
        datapath.dedup_index.rewrite_segment(
            segment_id,
            lambda location: self._relocate_location(location, relocations),
        )
        # Durability barriers: the repointed facts must be persisted and
        # the segment row durably elided *before* the old bits are
        # destroyed — a crash in between must never resurrect the row
        # and double-free AUs another segment now owns.
        array.pipeline.drain()
        array.pipeline.elide_key_range(T.SEGMENTS, segment_id, segment_id)
        if cp is not None:
            # A crash here leaks the old AUs until the next full sweep
            # but must never lose data: the facts above are durable.
            cp.hit("gc.pre-release", segment_id=segment_id)
        self._release_segment(descriptor, report)
        datapath.invalidate_segment(segment_id)
        self.total_segments_collected += 1
        if span is not None:
            obs.end(
                span,
                rewritten=report.cblocks_rewritten,
                released=report.aus_released,
            )
        return True

    def _rewrite_live_cblocks(self, descriptor, referencing, report):
        """Copy live cblocks to the open segio; returns the relocation map.

        Multi-reference (deduplicated) cblocks are rewritten first so
        they cluster together — they are the blocks least likely to die
        from future overwrites.
        """
        reference_counts = {}
        for fact in referencing:
            key = (fact.value[2], fact.value[3])
            reference_counts[key] = reference_counts.get(key, 0) + 1
        ordered = sorted(
            reference_counts, key=lambda key: -reference_counts[key]
        )
        relocations = {}
        for payload_offset, stored_length in ordered:
            blob, _latency = self.array.segreader.read_payload(
                descriptor, payload_offset, stored_length
            )
            new_descriptor, new_offset, _lat = self.array.segwriter.append_data(
                blob
            )
            relocations[(payload_offset, stored_length)] = (
                new_descriptor.segment_id,
                new_offset,
            )
            report.cblocks_rewritten += 1
            report.bytes_rewritten += stored_length
            self.total_bytes_rewritten += stored_length
        return relocations

    def _repoint_extents(self, referencing, relocations):
        entries = []
        for fact in referencing:
            value = list(fact.value)
            target = relocations.get((value[2], value[3]))
            if target is None:
                continue
            value[1], value[2] = target
            entries.append((fact.key, tuple(value)))
        if entries:
            self.array.pipeline.insert_meta_batch(T.ADDRESS_MAP, entries)

    @staticmethod
    def _relocate_location(location, relocations):
        target = relocations.get((location.payload_offset, location.stored_length))
        if target is None:
            return None
        new_segment, new_offset = target
        from repro.dedup.index import DedupLocation

        return DedupLocation(
            new_segment, new_offset, location.stored_length, location.sector_index
        )

    def _release_segment(self, descriptor, report):
        geometry = self.array.config.segment_geometry
        for drive_name, au_index in descriptor.placements:
            drive = self.array.drives.get(drive_name)
            if drive is not None and not drive.failed:
                drive.discard(au_index * geometry.au_size, geometry.au_size)
            try:
                self.array.allocator.release([(drive_name, au_index)])
                report.aus_released += 1
            # lint: allow[no-bare-except] drive dropped from the allocator after failure; nothing to release
            except AllocationError:
                pass

    # ------------------------------------------------------------------
    # Background deduplication (Section 4.7)

    def background_dedup(self, min_run_sectors=None):
        """The deeper dedup pass inline processing did not have time for.

        Inline dedup only consults a bounded index of recent and
        frequent hashes; as garbage collection scans in the background
        it re-hashes live data exhaustively and remaps whole extents
        whose bytes already exist elsewhere. Byte-equality is verified
        before any remap (hashes select candidates, never decide).

        Returns (extents remapped, logical bytes deduplicated).
        """
        from repro.dedup.hashing import sector_hashes
        from repro.units import SECTOR

        datapath = self.array.datapath
        min_run = (
            min_run_sectors
            if min_run_sectors is not None
            else self.array.config.dedup_min_run_sectors
        )
        # Canonical map: sector hash -> (cblock key, sector index).
        canonical_sectors = {}
        canonical_keys = set()
        remapped = 0
        bytes_saved = 0
        entries = []
        for fact in sorted(datapath.visible_extents()):
            value = fact.value
            if value[0] != T.EXTENT_DIRECT:
                continue
            _tag, segment_id, payload_offset, stored_length, logical = value
            cblock_key = (segment_id, payload_offset)
            try:
                data, _latency = datapath._read_cblock(
                    segment_id, payload_offset, stored_length
                )
            except Exception:
                continue
            usable = (len(data) // SECTOR) * SECTOR
            hashes = sector_hashes(data[:usable])
            target = self._whole_extent_match(
                data, hashes, canonical_sectors, canonical_keys,
                cblock_key, min_run, datapath,
            )
            if target is not None:
                target_key, target_sector, target_stored = target
                entries.append(
                    (
                        fact.key,
                        (T.EXTENT_DEDUP, target_key[0], target_key[1],
                         target_stored, logical, target_sector),
                    )
                )
                remapped += 1
                bytes_saved += logical
                continue
            # This cblock becomes canonical for its sectors.
            canonical_keys.add(cblock_key)
            for sector, value_hash in enumerate(hashes):
                canonical_sectors.setdefault(
                    value_hash, (cblock_key, sector, stored_length)
                )
        if entries:
            self.array.pipeline.insert_meta_batch(T.ADDRESS_MAP, entries)
        return remapped, bytes_saved

    def _whole_extent_match(self, data, hashes, canonical_sectors,
                            canonical_keys, own_key, min_run, datapath):
        """Find a canonical run holding this extent's exact bytes.

        Returns (canonical cblock key, start sector, stored_length) or
        None. Only whole-extent matches are remapped: partial overlap
        would fragment extents for marginal savings.
        """
        from repro.units import SECTOR

        if len(hashes) < min_run:
            return None
        first = canonical_sectors.get(hashes[0])
        if first is None:
            return None
        (target_key, start_sector, stored_length) = first
        if target_key == own_key or target_key not in canonical_keys:
            return None
        try:
            target_data, _latency = datapath._read_cblock(
                target_key[0], target_key[1], stored_length
            )
        except Exception:
            return None
        start = start_sector * SECTOR
        usable = (len(data) // SECTOR) * SECTOR
        if start + len(data) > len(target_data):
            return None
        if target_data[start : start + usable] != data[:usable]:
            return None  # hash collision: the byte compare is the law
        if data[usable:] and target_data[start + usable : start + len(data)] != data[usable:]:
            return None
        return (target_key, start_sector, stored_length)

    # ------------------------------------------------------------------
    # Medium-tree maintenance

    def live_medium_closure(self):
        """Roots (anchors + snapshots) plus every medium they delegate to."""
        table = self.array.medium_table
        live = set()
        frontier = list(self.array.volumes.referenced_mediums())
        while frontier:
            medium_id = frontier.pop()
            if medium_id in live or medium_id == MEDIUM_NONE:
                continue
            live.add(medium_id)
            for row in table.ranges_of(medium_id):
                if row.target != MEDIUM_NONE:
                    frontier.append(row.target)
        return live

    def sweep_mediums(self, report=None):
        """Drop mediums no volume, snapshot, or chain references."""
        report = report if report is not None else GCReport()
        table = self.array.medium_table
        live = self.live_medium_closure()
        for medium_id in table.all_medium_ids():
            if medium_id not in live:
                table.drop_medium(medium_id)
                self.array.pipeline.elide_prefix(T.ADDRESS_MAP, (medium_id,))
                report.mediums_swept += 1
        return report

    def shorten_chains(self, report=None, max_depth=3):
        """Keep every read path at ``max_depth`` hops or fewer.

        Two tools, cheapest first (Section 4.5: "the garbage collector
        rewrites trees of mediums in a flattened form so that
        application reads never have to access more than three
        cblocks"):

        * **shortcuts** — a delegating range skips intermediates that
          hold no extents for it (no data moves);
        * **copy-up flattening** — when a chain is still too deep
          because intermediates do hold data, the range's fully
          resolved content is written into the top medium (inline dedup
          usually turns the copy into references) and the range is
          retargeted to "own data".
        """
        report = report if report is not None else GCReport()
        table = self.array.medium_table
        for medium_id in table.all_medium_ids():
            for row in table.ranges_of(medium_id):
                if row.target == MEDIUM_NONE:
                    continue
                final_target, final_offset, hops = self._deepest_shortcut(row)
                if hops > 0:
                    table.retarget_range(row, final_target, final_offset)
                    row = table.range_covering(medium_id, row.start)
                    report.chains_shortened += 1
        # Second pass: anything still too deep gets materialized.
        for medium_id in self._anchors_only():
            if self._max_chain_depth(medium_id) > max_depth:
                self.flatten_medium(medium_id, report)
        return report

    def _anchors_only(self):
        """Writable roots (volume anchors): the mediums reads start from."""
        return sorted(self.array.volumes.referenced_mediums())

    def _max_chain_depth(self, medium_id):
        from repro.mediums.resolver import chain_depth

        table = self.array.medium_table
        deepest = 0
        for row in table.ranges_of(medium_id):
            for probe in (row.start, max(row.start, row.end - 1)):
                deepest = max(deepest, chain_depth(table, medium_id, probe))
        return deepest

    def flatten_medium(self, medium_id, report=None):
        """Copy-up: materialize a medium's resolved content as its own.

        The content is read through the chain and rewritten into the
        medium (deduplication collapses the copies back onto the
        existing cblocks), the derived facts are drained durable, and
        only then are the delegating ranges retargeted to "own data" —
        a crash in between leaves the old chain intact plus harmless
        duplicate facts.
        """
        from repro.units import MAX_CBLOCK

        from repro.units import SECTOR

        report = report if report is not None else GCReport()
        array = self.array
        table = array.medium_table
        rows = [
            row for row in table.ranges_of(medium_id)
            if row.target != MEDIUM_NONE
            and row.start % SECTOR == 0
            and row.end % SECTOR == 0
        ]
        for row in rows:
            cursor = row.start
            while cursor < row.end:
                length = min(MAX_CBLOCK, row.end - cursor)
                data, _latency = array.datapath.read(medium_id, cursor, length)
                array.datapath.process_write(medium_id, cursor, data)
                cursor += length
        array.pipeline.drain()
        for row in rows:
            table.retarget_range(
                table.range_covering(medium_id, row.start), MEDIUM_NONE, 0
            )
        report.chains_shortened += len(rows)
        return report

    def _deepest_shortcut(self, row):
        """Walk past extent-free intermediates; returns (target, offset, hops)."""
        table = self.array.medium_table
        target, offset = row.target, row.target_offset
        length = row.length
        hops = 0
        for _ in range(32):
            covering = table.range_covering(target, offset)
            if covering is None or covering.maps_directly():
                break
            if covering.end < offset + length:
                break  # the range splits across rows; stop conservatively
            if self._has_extents(target, offset, length):
                break
            target, offset = (
                covering.target,
                covering.target_offset + (offset - covering.start),
            )
            hops += 1
        return target, offset, hops

    def _has_extents(self, medium_id, offset, length):
        address_map = self.array.tables.address_map
        from repro.units import MAX_CBLOCK, SECTOR

        lo = (medium_id, max(0, offset - MAX_CBLOCK + SECTOR))
        hi = (medium_id, offset + length - 1)
        for fact in address_map.scan(lo, hi):
            logical = self.array.datapath._extent_logical_length(fact.value)
            if fact.key[1] + logical > offset:
                return True
        return False
