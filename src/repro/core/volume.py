"""Volumes, snapshots, and clones.

Purity exports virtual block devices ("volumes") addressed by
<volume, offset>; internally every volume is just a pointer to its
current *anchor medium*. Snapshots freeze the anchor and move the
volume onto a fresh child medium; clones are writable mediums layered
over a snapshot. All of it is medium-table bookkeeping — no data moves.
"""

from repro.core import tables as T
from repro.errors import (
    SnapshotError,
    VolumeError,
    VolumeExistsError,
    VolumeNotFoundError,
)
from repro.units import MAX_CBLOCK, SECTOR

VOLUME_LIVE = 0

#: Hole extents are chunked so no extent exceeds the read path's
#: overlap-scan window.
_HOLE_CHUNK = MAX_CBLOCK


class VolumeManager:
    """The volume and snapshot catalog over the medium table."""

    def __init__(self, pipeline, medium_table, datapath):
        self.pipeline = pipeline
        self.medium_table = medium_table
        self.datapath = datapath
        self.tables = pipeline.tables

    # ------------------------------------------------------------------
    # Catalog lookups

    def _volume_fact(self, name):
        fact = self.tables.volumes.get((name,))
        if fact is None:
            raise VolumeNotFoundError("no volume named %r" % name)
        return fact

    def volume_names(self):
        """All live volume names."""
        return sorted(fact.key[0] for fact in self.tables.volumes.scan())

    def volume_size(self, name):
        return self._volume_fact(name).value[0]

    def anchor_medium(self, name):
        """The medium a volume's writes currently land in."""
        return self._volume_fact(name).value[1]

    def provisioned_bytes(self):
        """Sum of live volume sizes (thin-provisioning numerator)."""
        return sum(fact.value[0] for fact in self.tables.volumes.scan())

    def snapshot_names(self, volume_name):
        lo = (volume_name, "")
        hi = (volume_name, "￿")
        return sorted(fact.key[1] for fact in self.tables.snapshots.scan(lo, hi))

    def _snapshot_fact(self, volume_name, snapshot_name):
        fact = self.tables.snapshots.get((volume_name, snapshot_name))
        if fact is None:
            raise SnapshotError(
                "volume %r has no snapshot %r" % (volume_name, snapshot_name)
            )
        return fact

    # ------------------------------------------------------------------
    # Volume lifecycle

    def create_volume(self, name, size):
        """Provision a volume; space is consumed only as data is written."""
        if size <= 0 or size % SECTOR:
            raise VolumeError("volume size must be a positive sector multiple")
        if self.tables.volumes.get((name,)) is not None:
            raise VolumeExistsError("volume %r already exists" % name)
        medium_id = self.medium_table.create_medium(size)
        self.pipeline.set_medium_id_hint(medium_id + 1)
        self.pipeline.insert_meta(T.VOLUMES, (name,), (size, medium_id, VOLUME_LIVE))
        return medium_id

    def destroy_volume(self, name):
        """Delete a volume: one elide per catalog, one per medium.

        Mediums shared with snapshots or clones survive; the medium
        liveness sweep in the garbage collector reclaims them when the
        last referencing snapshot goes away.
        """
        fact = self._volume_fact(name)
        anchor = fact.value[1]
        # Sequence-bounded so a later volume of the same name survives.
        self.pipeline.elide_prefix(T.VOLUMES, (name,), bound_now=True)
        self.medium_table.drop_medium(anchor)
        self.pipeline.elide_prefix(T.ADDRESS_MAP, (anchor,))

    def destroy_snapshot(self, volume_name, snapshot_name):
        """Delete a snapshot's catalog entry.

        The snapshot's medium is *not* dropped here — clones may still
        delegate to it. The garbage collector's medium sweep reclaims it
        (and its address-map extents) once nothing references it.
        """
        self._snapshot_fact(volume_name, snapshot_name)  # existence check
        self.pipeline.elide_prefix(
            T.SNAPSHOTS, (volume_name, snapshot_name), bound_now=True
        )

    # ------------------------------------------------------------------
    # I/O

    def _check_range(self, name, offset, length):
        size = self.volume_size(name)
        if offset < 0 or offset + length > size:
            raise VolumeError(
                "range [%d, %d) outside volume %r of size %d"
                % (offset, offset + length, name, size)
            )

    def write(self, name, offset, data):
        """Write to a volume; returns commit latency."""
        self._check_range(name, offset, len(data))
        medium_id = self.anchor_medium(name)
        return self.datapath.write(medium_id, offset, data)

    def read(self, name, offset, length):
        """Read from a volume; returns (bytes, latency)."""
        self._check_range(name, offset, length)
        medium_id = self.anchor_medium(name)
        return self.datapath.read(medium_id, offset, length)

    def unmap(self, name, offset, length):
        """Punch a zero hole (SCSI UNMAP): insert hole extents."""
        if offset % SECTOR or length % SECTOR or length <= 0:
            raise VolumeError("unmap must cover whole sectors")
        self._check_range(name, offset, length)
        medium_id = self.anchor_medium(name)
        entries = []
        cursor = offset
        while cursor < offset + length:
            chunk = min(_HOLE_CHUNK, offset + length - cursor)
            entries.append(((medium_id, cursor), (T.EXTENT_HOLE, chunk)))
            cursor += chunk
        self.pipeline.insert_meta_batch(T.ADDRESS_MAP, entries)

    # ------------------------------------------------------------------
    # Snapshots and clones

    def snapshot(self, volume_name, snapshot_name):
        """Point-in-time image; the volume continues on a fresh medium."""
        fact = self._volume_fact(volume_name)
        size, anchor, _status = fact.value
        if self.tables.snapshots.get((volume_name, snapshot_name)) is not None:
            raise SnapshotError(
                "volume %r already has snapshot %r" % (volume_name, snapshot_name)
            )
        snap_medium, new_anchor = self.medium_table.snapshot(anchor)
        self.pipeline.set_medium_id_hint(new_anchor + 1)
        self.pipeline.insert_meta(
            T.SNAPSHOTS, (volume_name, snapshot_name), (snap_medium, size)
        )
        self.pipeline.insert_meta(
            T.VOLUMES, (volume_name,), (size, new_anchor, VOLUME_LIVE)
        )
        return snap_medium

    def clone_from_snapshot(self, volume_name, snapshot_name, new_volume_name):
        """A writable volume backed by a snapshot (instant, no copy)."""
        if self.tables.volumes.get((new_volume_name,)) is not None:
            raise VolumeExistsError("volume %r already exists" % new_volume_name)
        fact = self._snapshot_fact(volume_name, snapshot_name)
        snap_medium, size = fact.value
        clone_medium = self.medium_table.clone(snap_medium)
        self.pipeline.set_medium_id_hint(clone_medium + 1)
        self.pipeline.insert_meta(
            T.VOLUMES, (new_volume_name,), (size, clone_medium, VOLUME_LIVE)
        )
        return clone_medium

    def clone_volume(self, volume_name, new_volume_name):
        """Clone a live volume via an internal snapshot."""
        internal = "__clone_base_%s_%s" % (volume_name, new_volume_name)
        self.snapshot(volume_name, internal)
        return self.clone_from_snapshot(volume_name, internal, new_volume_name)

    # ------------------------------------------------------------------
    # Liveness roots (for the GC's medium sweep)

    def referenced_mediums(self):
        """Root mediums: volume anchors and snapshot mediums."""
        roots = set()
        for fact in self.tables.volumes.scan():
            roots.add(fact.value[1])
        for fact in self.tables.snapshots.scan():
            roots.add(fact.value[0])
        return roots
