"""Telemetry: the counters and latency traces a Purity array phones home.

Section 5.1: arrays continuously report request rates, sizes, volume
sizes and deduplication ratios. Here the same numbers drive the
benchmarks — latency percentiles, data-reduction ratios, and
availability accounting.
"""

from dataclasses import dataclass

# The hot-path perf-counter layer lives in :mod:`repro.perf` (below
# every subsystem, so erasure/dedup/layout can feed it without import
# cycles); this is its public face alongside the rest of telemetry.
from repro.perf import (  # noqa: F401  (re-exported)
    PERF,
    PerfCounters,
    format_perf_report,
    perf_report,
    reset_perf_counters,
)
# Degraded-mode telemetry: per-drive retry accounting lives on the
# segment reader, health grades on the monitor; both re-exported here
# as the public faces of the fault/retry counters.
from repro.core.health import (  # noqa: F401  (re-exported)
    FAILED,
    HEALTHY,
    SUSPECT,
    DriveHealthMonitor,
)
from repro.layout.segreader import DriveRetryStats  # noqa: F401  (re-exported)

__all__ = [
    # re-exports: the perf-counter layer's public face
    "PERF",
    "PerfCounters",
    "format_perf_report",
    "perf_report",
    "reset_perf_counters",
    # re-exports: degraded-mode telemetry
    "FAILED",
    "HEALTHY",
    "SUSPECT",
    "DriveHealthMonitor",
    "DriveRetryStats",
    # this module's own public surface
    "degraded_mode_report",
    "ReductionReport",
]


def degraded_mode_report(array, service=None):
    """Fault/retry/health counters for one array, as plain dicts.

    Combines the segment reader's per-drive retry accounting, the
    health monitor's drive grades, and the device-level corruption and
    stall counters — the numbers a support engineer would pull first
    when a chaos run (or a real array) misbehaves.

    With ``service`` (a :class:`~repro.service.frontend.
    ServiceFrontend` riding on this array) the report grows a
    ``service`` section: admission verdict counts plus per-tenant
    queue depth and latency percentiles — the front-end face of the
    same degradation the ladder section describes. Field meanings are
    documented in docs/SERVICE_PLANE.md.
    """
    report = {
        "retries": array.segreader.retry_report(),
        "health": array.health.report(),
        "devices": {
            name: {
                "corrupted_reads": drive.counters.corrupted_reads,
                "stalled_reads": drive.counters.stalled_reads,
                "stall_pressure": array.health.stall_pressure(name),
                "failed": drive.failed,
            }
            for name, drive in sorted(array.drives.items())
        },
        "reconstructed_reads": array.segreader.reconstructed_reads,
        "direct_reads": array.segreader.direct_reads,
    }
    engine = getattr(array, "degrade", None)
    if engine is not None:
        report["ladder"] = engine.report()
        report["repair_debt"] = engine.debt.snapshot()
    hedge = getattr(array.segreader, "hedge", None)
    if hedge is not None:
        report["hedge"] = hedge.report()
    governor = getattr(array, "rebuild_governor", None)
    if governor is not None:
        report["rebuild_governor"] = governor.report()
    if service is not None:
        report["service"] = service.service_report()
    return report


@dataclass
class ReductionReport:
    """Data-reduction accounting, matching the paper's definitions.

    ``data_reduction`` excludes thin-provisioning gains (the paper's
    5.4x average is measured this way); ``thin_provisioning`` is
    reported separately (the paper's ~12x average).
    """

    #: Live bytes applications see (latest visible extents).
    logical_live_bytes: int
    #: Uncompressed bytes of the unique cblocks actually stored
    #: (= logical minus dedup savings).
    unique_logical_bytes: int
    #: Compressed bytes of those unique cblocks on flash.
    physical_stored_bytes: int
    #: Physical bytes including Reed-Solomon parity overhead.
    physical_with_parity_bytes: int
    #: Sum of volume sizes (virtual space handed to applications).
    provisioned_bytes: int

    @property
    def data_reduction(self):
        """Effective / physical capacity: dedup x compression."""
        if not self.physical_stored_bytes:
            return 1.0
        return self.logical_live_bytes / self.physical_stored_bytes

    @property
    def dedup_ratio(self):
        """Reduction attributable to deduplication alone."""
        if not self.unique_logical_bytes:
            return 1.0
        return self.logical_live_bytes / self.unique_logical_bytes

    @property
    def compression_ratio(self):
        """Reduction attributable to compression alone."""
        if not self.physical_stored_bytes:
            return 1.0
        return self.unique_logical_bytes / self.physical_stored_bytes

    @property
    def thin_provisioning(self):
        """Provisioned virtual space over logical data written."""
        if not self.logical_live_bytes:
            return float("inf") if self.provisioned_bytes else 1.0
        return self.provisioned_bytes / self.logical_live_bytes
