"""The Purity core: the array, its data path, and its services.

:class:`~repro.core.array.PurityArray` is the public facade — volumes,
reads/writes, snapshots and clones, crash/recovery, garbage collection,
scrubbing, and data-reduction reporting.
:class:`~repro.core.ha.DualControllerArray` wraps it in the paper's
two-controller, shared-shelf high-availability envelope, and
:class:`~repro.core.replication.AsyncReplicator` ships volumes to a
second array.
"""

from repro.core.config import ArrayConfig
from repro.core.array import PurityArray
from repro.core.ha import DualControllerArray
from repro.core.replication import AsyncReplicator

__all__ = [
    "ArrayConfig",
    "PurityArray",
    "DualControllerArray",
    "AsyncReplicator",
]
