"""The commit pipeline (paper Figure 4).

Everything durable flows through here, in two tempos:

* **drain** (frequent): seal every dirty memtable into patches, write
  the patches into segment *log records*, flush the open segio, and
  trim NVRAM. Runs whenever NVRAM passes its high watermark. Draining
  never touches the boot region.
* **checkpoint** (rare): persist the boot region — frontier and
  speculative sets, allocator state, counters, and pointers to every
  patch persisted so far. Runs when the frontier needs a refill.

Recovery coverage invariant: every fact is recoverable from (a) NVRAM
(WAL records not yet trimmed), (b) a patch pointer in the last boot
checkpoint, or (c) a log record inside the persisted frontier scan set
— because allocation only ever uses AUs from the persisted frontier,
patches persisted *after* the last checkpoint necessarily live in
frontier segments the recovery scan visits. This is exactly the
Figure 5 design, and it is why frontier/boot writes stay well under 1 %
of all writes.

Raw application writes commit to NVRAM (the client acknowledgement
point) and are replayed through the data path on recovery; the
address-map facts derived from them skip their own WAL record because a
drain always persists the derived facts and trims their raw record
together.
"""

from repro.core import tables as T
from repro.pyramid.tuples import Fact, SequenceGenerator
from repro.pyramid.wal import MonotonicWAL, encode_commit_record

#: Facts per patch log record; large patches are chunked so each record
#: fits comfortably inside a segio's log region.
PATCH_CHUNK_FACTS = 64


class CommitPipeline:
    """Sequence numbers + WAL + relations + drain/checkpoint machinery."""

    def __init__(self, tableset, nvram, segwriter, frontier, allocator,
                 boot_region, config):
        self.tables = tableset
        self.wal = MonotonicWAL(nvram)
        self.sequence = SequenceGenerator()
        self.segwriter = segwriter
        self.frontier = frontier
        self.allocator = allocator
        self.boot_region = boot_region
        self.config = config
        #: relation name -> {patch object: pointer tuple}. Keyed by
        #: the patch itself (identity semantics, strong reference):
        #: keying by id() would let Python reuse a dead patch's id
        #: and silently hand its pointer to a new, unpersisted patch.
        self._patch_pointers = {name: {} for name in tableset.names()}
        #: Segments the *last written boot checkpoint* references. They
        #: must stay pinned even after newer drains re-home their
        #: patches, because a crash before the next checkpoint recovers
        #: from the old pointers.
        self._checkpointed_identities = set()
        self._medium_id_hint = 1
        self._draining = False
        self.drains = 0
        self.checkpoints = 0
        self.metadata_commits = 0

    # ------------------------------------------------------------------
    # Inserts

    def insert_meta(self, relation_name, key, value):
        """Insert one metadata fact: WAL first, then the memtable.

        Returns (fact, commit latency).
        """
        facts, latency = self.insert_meta_batch(relation_name, [(key, value)])
        return facts[0], latency

    def insert_meta_batch(self, relation_name, entries):
        """Insert many facts as one WAL record; returns (facts, latency)."""
        relation = self.tables[relation_name]
        facts = [
            relation.make_fact(key, value, self.sequence.next())
            for key, value in entries
        ]
        _record_id, latency = self.wal.commit(relation_name, facts)
        for fact in facts:
            relation.insert_fact(fact)
        self.metadata_commits += 1
        self._maybe_drain()
        return facts, latency

    def insert_derived(self, relation_name, key, value):
        """Insert a fact derived from an already-committed raw record.

        Derived facts skip their own WAL commit: replaying the raw
        record regenerates them idempotently, and a drain persists them
        before (and together with) trimming the raw record.
        """
        relation = self.tables[relation_name]
        fact = relation.make_fact(key, value, self.sequence.next())
        relation.insert_fact(fact)
        return fact

    def commit_raw_write(self, medium_id, offset, data):
        """Persist one application write to NVRAM; returns (fact, latency).

        This is the client-visible commit point. The fact's value
        carries the raw bytes for recovery replay.
        """
        fact = Fact(
            key=(medium_id, offset),
            seqno=self.sequence.next(),
            value=(bytes(data),),
        )
        _record_id, latency = self.wal.commit(T.RAW_WRITES, [fact])
        return fact, latency

    # ------------------------------------------------------------------
    # Durable elision (Section 4.10)
    #
    # An elide record is itself an immutable fact: it is committed to
    # the __elides relation through the normal WAL/patch path, *and*
    # applied to the target relation's in-memory elide table. Recovery
    # replays the __elides relation to rebuild every elide table, so
    # deletions survive crashes like any other write.

    @staticmethod
    def _predicate_to_spec(predicate):
        from repro.pyramid.elision import KeyPrefixPredicate, KeyRangePredicate

        if isinstance(predicate, KeyRangePredicate):
            as_of = -1 if predicate.as_of_seq is None else predicate.as_of_seq
            return ("range", predicate.lo, predicate.hi, as_of, predicate.field)
        if isinstance(predicate, KeyPrefixPredicate):
            as_of = -1 if predicate.as_of_seq is None else predicate.as_of_seq
            return ("prefix", tuple(predicate.prefix), as_of)
        raise TypeError("cannot persist predicate %r" % (predicate,))

    @staticmethod
    def spec_to_predicate(spec):
        """Inverse of the spec encoding (recovery replay)."""
        from repro.pyramid.elision import KeyPrefixPredicate, KeyRangePredicate

        if spec[0] == "range":
            _kind, lo, hi, as_of, field = spec
            return KeyRangePredicate(
                lo, hi, as_of_seq=None if as_of == -1 else as_of, field=field
            )
        if spec[0] == "prefix":
            _kind, prefix, as_of = spec
            return KeyPrefixPredicate(
                tuple(prefix), as_of_seq=None if as_of == -1 else as_of
            )
        raise ValueError("unknown elide spec %r" % (spec,))

    def elide(self, target_name, predicate):
        """Durably delete: persist the elide record, then apply it."""
        spec = self._predicate_to_spec(predicate)
        self.insert_meta(T.ELIDES, (target_name, spec), ())
        self.tables[target_name].elide_table.insert(predicate)

    def elide_key_range(self, target_name, lo, hi, field=0):
        """Durable range deletion on ``target_name``."""
        from repro.pyramid.elision import KeyRangePredicate

        self.elide(target_name, KeyRangePredicate(lo, hi, field=field))

    def elide_prefix(self, target_name, prefix, bound_now=False):
        """Durable prefix deletion.

        ``bound_now=True`` stamps the predicate with the current
        sequence number, so facts written *later* under the same key
        prefix (e.g. a recreated volume name) are not swallowed.
        """
        from repro.pyramid.elision import KeyPrefixPredicate

        as_of = self.sequence.next() if bound_now else None
        self.elide(
            target_name, KeyPrefixPredicate(tuple(prefix), as_of_seq=as_of)
        )

    def replay_elides(self):
        """Recovery: rebuild every elide table from the __elides facts."""
        replayed = 0
        for fact in self.tables[T.ELIDES].scan():
            target_name, spec = fact.key
            if target_name not in self.tables.relations:
                continue
            predicate = self.spec_to_predicate(spec)
            self.tables[target_name].elide_table.insert(predicate)
            replayed += 1
        return replayed

    def _maybe_drain(self):
        used = self.wal.nvram.bytes_used
        if used > self.config.nvram_high_watermark * self.wal.nvram.capacity_bytes:
            self.drain()

    def after_raw_write_processed(self):
        """Hook the data path calls once a raw write's facts are inserted."""
        self._maybe_drain()

    # ------------------------------------------------------------------
    # Drain: seal + persist patches + flush + trim

    def _persist_patch(self, relation_name, patch):
        """Write one patch into segment log records; returns its pointer.

        Pointer format: a tuple of (placements_flat, offset, length)
        triples, one per chunk — self-sufficient locators recovery can
        read before any table exists.
        """
        facts = list(patch)
        pointer_chunks = []
        for start in range(0, len(facts), PATCH_CHUNK_FACTS):
            chunk = facts[start : start + PATCH_CHUNK_FACTS]
            blob = encode_commit_record(relation_name, chunk)
            descriptor, locator, _latency = self.segwriter.append_log_record(
                blob,
                seq_min=min(fact.seqno for fact in chunk),
                seq_max=max(fact.seqno for fact in chunk),
            )
            flat_placements = tuple(
                item for drive, au in descriptor.placements for item in (drive, au)
            )
            pointer_chunks.append((flat_placements, locator[0], locator[1]))
        return tuple(pointer_chunks)

    def drain(self):
        """Seal dirty memtables, persist patches, flush, trim NVRAM.

        Returns simulated latency (flush cost). Reentrancy-guarded:
        persisting patches appends log records, which can trigger the
        NVRAM watermark check recursively.
        """
        if self._draining:
            return 0.0
        self._draining = True
        try:
            wal_snapshot = self.wal.nvram.last_record_id
            for relation in self.tables:
                relation.seal()
                pointers = self._patch_pointers[relation.name]
                live = list(relation.pyramid.patches)
                live_ids = {id(patch) for patch in live}
                for patch in live:
                    if patch not in pointers:
                        pointers[patch] = self._persist_patch(
                            relation.name, patch
                        )
                for stale in [p for p in pointers if id(p) not in live_ids]:
                    del pointers[stale]
            latency = self.segwriter.flush()
            self.wal.mark_persisted(wal_snapshot)
            self.drains += 1
            return latency
        finally:
            self._draining = False

    def compact(self):
        """Background LSM maintenance: merge patches, dropping elisions.

        Merged patches lose their pointers and are re-persisted by the
        next drain.
        """
        for relation in self.tables:
            relation.compact()

    # ------------------------------------------------------------------
    # Checkpoint: the boot-region write

    def checkpoint(self, extra_state=None):
        """Refill the frontier and persist the boot region.

        Returns simulated latency. Called when the frontier runs dry
        (via the segment writer's checkpointer hook) and at clean
        shutdowns.
        """
        self.frontier.refill()
        open_descriptor = self.segwriter.current_descriptor
        open_units = (
            tuple(tuple(pair) for pair in open_descriptor.placements)
            if open_descriptor is not None
            else ()
        )
        checkpoint = {
            "frontier": tuple(self.frontier.current_units()),
            "speculative": tuple(self.frontier.speculative_units()),
            # The open segment may keep absorbing log records after this
            # checkpoint; recovery must scan its AUs too.
            "open_units": open_units,
            "used_units": tuple(self.allocator.used_units()),
            "next_segment_id": self._peek_next_segment_id(),
            "next_seqno": self.sequence.last_issued + 1,
            "next_medium_id": self._medium_id_hint,
            "patch_pointers": self._encode_pointers(),
        }
        if extra_state:
            checkpoint.update(extra_state)
        latency = self.boot_region.write_checkpoint(checkpoint)
        self.frontier.mark_persisted()
        self._checkpointed_identities = {
            (pointer_chunk[0][0], pointer_chunk[0][1])
            for _relation_name, pointer in checkpoint["patch_pointers"]
            for pointer_chunk in pointer
        }
        self.checkpoints += 1
        return latency

    def _peek_next_segment_id(self):
        # itertools.count has no peek; probe and restore.
        probe = next(self.segwriter._segment_ids)
        self.segwriter.set_next_segment_id(probe)
        return probe

    def set_medium_id_hint(self, next_medium_id):
        """Record the medium counter for the next checkpoint."""
        self._medium_id_hint = max(self._medium_id_hint, next_medium_id)

    def _encode_pointers(self):
        encoded = []
        for relation_name, pointers in self._patch_pointers.items():
            for pointer in pointers.values():
                encoded.append((relation_name, pointer))
        return tuple(encoded)

    def unpin_segment(self, identity):
        """Move patch log records out of one segment so GC can free it.

        ``identity`` is the segment's first (drive, au) placement pair.
        Dropping the in-memory pointers makes the next drain re-persist
        those patches into the open segment; the checkpoint then points
        the boot region at the new copies *before* the caller destroys
        the old ones. Returns True if anything was re-homed.
        """
        open_descriptor = self.segwriter.current_descriptor
        if (
            open_descriptor is not None
            and tuple(open_descriptor.placements[0]) == tuple(identity)
        ):
            # Re-homed patches must not land back in the segment being
            # unpinned.
            self.segwriter.retire_current_segment()
        changed = False
        for pointers in self._patch_pointers.values():
            for patch, pointer in list(pointers.items()):
                for flat_placements, _offset, _length in pointer:
                    if (flat_placements[0], flat_placements[1]) == identity:
                        del pointers[patch]
                        changed = True
                        break
        if changed or identity in self._checkpointed_identities:
            self.drain()
            self.checkpoint()
            changed = True
        return changed

    def restore_checkpoint_identities(self, patch_pointers):
        """Recovery: re-pin the segments the boot checkpoint references.

        Until this controller writes its own checkpoint, a further crash
        recovers from the *old* boot pointers — GC must not free or
        reuse the segments they reference.
        """
        self._checkpointed_identities = {
            (pointer_chunk[0][0], pointer_chunk[0][1])
            for _relation_name, pointer in patch_pointers
            for pointer_chunk in pointer
        }

    def pinned_segment_ids(self):
        """Segments GC must not collect: those holding live patch log
        records, plus those the last boot checkpoint still points at."""
        pinned = set(self._checkpointed_identities)
        for pointers in self._patch_pointers.values():
            for pointer in pointers.values():
                for flat_placements, _offset, _length in pointer:
                    # placements identify the segment uniquely enough for
                    # pinning via its first (drive, au) pair.
                    pinned.add((flat_placements[0], flat_placements[1]))
        return pinned
