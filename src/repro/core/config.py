"""Array configuration.

Two stock scales are provided: :meth:`ArrayConfig.paper_scale` mirrors
the published geometry (8 MiB AUs, 1 MiB write units, 7+2 coding,
11-drive shelves), and :meth:`ArrayConfig.small` shrinks every size so
whole-array tests and benchmarks run in seconds while exercising the
identical code paths.
"""

from dataclasses import dataclass, field

from repro.units import GIB, KIB, MIB, MICROSECOND, MILLISECOND

# Degraded-mode knobs are defined BEFORE the geometry imports below:
# importing repro.layout pulls in segreader, which reads these constants
# back out of this (then partially initialised) module.

#: Device-level re-reads of a corrupted page before falling back to
#: parity reconstruction.
READ_RETRY_LIMIT = 2
#: Fail-fast retry budget once a drive is already suspect: retrying a
#: sick drive mostly burns latency, reconstruction is cheaper.
SUSPECT_RETRY_LIMIT = 1
#: Base host-side backoff before a read retry; doubles per attempt.
READ_RETRY_BACKOFF = 250 * MICROSECOND
#: Predicted direct-read wait beyond which a hedged read fires. Sits
#: above the natural program-interference stall (2.5 ms) so fault-free
#: runs never hedge, and well below an injected stall storm (10 ms).
HEDGE_DEADLINE = 5 * MILLISECOND
#: Rebuild governor token rates, in segment evacuations per sim second.
REBUILD_RATE_FULL = 64.0
REBUILD_RATE_THROTTLED = 4.0
#: Token-bucket burst: evacuations a single pass may front-load.
REBUILD_BURST = 8
#: Foreground read latencies kept in the governor's sliding SLO window.
SLO_WINDOW_READS = 128

from repro.layout.segment import SegmentGeometry  # noqa: E402
from repro.ssd.geometry import SSDGeometry  # noqa: E402


@dataclass(frozen=True)
class ArrayConfig:
    """Every tunable of a simulated Purity array.

    The paper's point is that none of these are exposed to customers;
    they are construction-time parameters of the appliance.
    """

    num_drives: int = 11
    ssd_geometry: SSDGeometry = field(
        default_factory=lambda: SSDGeometry(capacity_bytes=1 * GIB)
    )
    segment_geometry: SegmentGeometry = field(default_factory=SegmentGeometry)
    nvram_capacity: int = 64 * MIB
    rated_pe_cycles: int = 3000
    #: Seal memtables and flush once NVRAM passes this fill fraction.
    nvram_high_watermark: float = 0.5
    #: Frontier batch: AUs reserved per drive per checkpoint.
    frontier_batch_per_drive: int = 8
    #: zlib effort for inline compression.
    compression_level: int = 1
    #: Dedup index bounds and sampling (Section 4.7).
    dedup_recent_capacity: int = 65536
    dedup_frequent_capacity: int = 65536
    dedup_sample_every: int = 8
    dedup_min_run_sectors: int = 8
    #: Inline dedup on/off (ablation hook).
    inline_dedup: bool = True
    #: Inline compression on/off (ablation hook).
    inline_compression: bool = True
    #: Read scheduler: reconstruct around busy-writing drives.
    read_around_writes: bool = True
    #: Section 4.4: concurrent segment-shard programs per write group.
    max_concurrent_writes: int = 2
    #: LSM fanout before background compaction merges patches.
    pyramid_fanout: int = 8
    #: Controller DRAM cache: decompressed cblocks kept hot.
    cblock_cache_entries: int = 256
    #: Worker processes for CPU-bound stage fan-out (compression, RS
    #: encode, scrub verify). ``None`` defers to ``$REPRO_WORKERS``;
    #: 0 runs everything serially in-process. Output is byte-identical
    #: at any setting.
    workers: int | None = None
    #: Items per parallel map chunk (fixed-size, worker-count
    #: independent, so the task list is a pure function of the input).
    parallel_chunk_items: int = 2
    #: Minimum items before speculative compression fans out.
    parallel_min_items: int = 4
    #: Column width of one RS encode chunk during segio flush.
    parallel_rs_chunk_cols: int = 128 * KIB
    #: Recycled segio payload buffers kept by the flush-path pool.
    segio_buffer_pool: int = 4
    #: Recycled read paint buffers kept by the read-path pool.
    read_buffer_pool: int = 8
    #: Device re-reads of a corrupted page before reconstruction.
    read_retry_limit: int = READ_RETRY_LIMIT
    #: Retry budget once the target drive is suspect.
    suspect_retry_limit: int = SUSPECT_RETRY_LIMIT
    #: Base backoff before a read retry (doubles per attempt).
    read_retry_backoff: float = READ_RETRY_BACKOFF
    #: Race parity reconstruction against slow/suspect direct reads.
    hedge_reads: bool = True
    #: Predicted direct-read wait that triggers a hedged read.
    hedge_deadline: float = HEDGE_DEADLINE
    #: Foreground read p99 SLO for rebuild backpressure. ``None``
    #: disables the governor (rebuild runs at full rate, untouched).
    rebuild_slo_p99: float | None = None
    #: Governor token rates (segment evacuations per sim second).
    rebuild_rate_full: float = REBUILD_RATE_FULL
    rebuild_rate_throttled: float = REBUILD_RATE_THROTTLED
    #: Token-bucket burst allowance.
    rebuild_burst: int = REBUILD_BURST
    #: Sliding window of foreground read latencies for the SLO check.
    slo_window_reads: int = SLO_WINDOW_READS
    #: Random seed namespace for the array's stochastic models.
    seed: int = 0

    def __post_init__(self):
        if self.num_drives < self.segment_geometry.total_shards:
            raise ValueError(
                "%d drives cannot host %d-shard segments"
                % (self.num_drives, self.segment_geometry.total_shards)
            )
        if self.ssd_geometry.capacity_bytes % self.segment_geometry.au_size:
            raise ValueError("drive capacity must be a whole number of AUs")
        if not 0.0 < self.nvram_high_watermark <= 1.0:
            raise ValueError("nvram_high_watermark must be in (0, 1]")
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be >= 0 (or None for the env)")
        if min(self.parallel_chunk_items, self.parallel_min_items,
               self.parallel_rs_chunk_cols) < 1:
            raise ValueError("parallel chunk knobs must be >= 1")
        if min(self.segio_buffer_pool, self.read_buffer_pool) < 0:
            raise ValueError("buffer pool sizes must be >= 0")
        if min(self.read_retry_limit, self.suspect_retry_limit) < 0:
            raise ValueError("retry limits must be >= 0")
        if self.read_retry_backoff < 0:
            raise ValueError("read_retry_backoff must be >= 0")
        if self.hedge_deadline <= 0:
            raise ValueError("hedge_deadline must be > 0")
        if self.rebuild_slo_p99 is not None and self.rebuild_slo_p99 <= 0:
            raise ValueError("rebuild_slo_p99 must be > 0 (or None)")
        if min(self.rebuild_rate_full, self.rebuild_rate_throttled) <= 0:
            raise ValueError("rebuild rates must be > 0")
        if self.rebuild_burst < 1 or self.slo_window_reads < 1:
            raise ValueError("rebuild_burst and slo_window_reads must be >= 1")

    @property
    def aus_per_drive(self):
        return self.ssd_geometry.capacity_bytes // self.segment_geometry.au_size

    @property
    def raw_capacity_bytes(self):
        """Raw flash across all drives."""
        return self.num_drives * self.ssd_geometry.capacity_bytes

    @property
    def usable_fraction(self):
        """Fraction of raw capacity left after parity overhead."""
        geometry = self.segment_geometry
        return geometry.data_shards / geometry.total_shards

    @classmethod
    def small(cls, num_drives=11, drive_capacity=8 * MIB, seed=0, **overrides):
        """A miniature array for tests: 64 KiB AUs, 16 KiB write units."""
        defaults = dict(
            num_drives=num_drives,
            ssd_geometry=SSDGeometry(
                capacity_bytes=drive_capacity,
                page_size=1 * KIB,
                erase_block_size=64 * KIB,
                num_dies=8,
            ),
            segment_geometry=SegmentGeometry(
                au_size=64 * KIB, write_unit=16 * KIB, wu_header_size=1 * KIB
            ),
            nvram_capacity=1 * MIB,
            frontier_batch_per_drive=4,
            dedup_recent_capacity=8192,
            dedup_frequent_capacity=8192,
            seed=seed,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def paper_scale(cls, num_drives=11, drive_capacity=1 * GIB, seed=0, **overrides):
        """The published geometry (scaled-down drive capacity by default)."""
        defaults = dict(
            num_drives=num_drives,
            ssd_geometry=SSDGeometry(capacity_bytes=drive_capacity),
            segment_geometry=SegmentGeometry(),
            seed=seed,
        )
        defaults.update(overrides)
        return cls(**defaults)
