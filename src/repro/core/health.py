"""Drive-health state machine (paper Section 5.1).

Purity treats drives as unreliable components: flash rots, firmware
stalls, whole devices die. Rather than trusting a drive until it fails
outright, the array grades every drive from its observed read outcomes:

* ``HEALTHY`` — the steady state.
* ``SUSPECT`` — the drive returned enough corrupted reads, or enough
  stalled reads, inside a sliding window that the array stops trusting
  it: the segment reader shortens its retry budget (fail fast,
  reconstruct from the other shards) and maintenance watches it closely.
* ``FAILED`` — chronic *integrity* misbehaviour (corrupted reads,
  exhausted retries) while suspect; the array fails the drive
  proactively, exactly as if it had been pulled, and schedules a
  rebuild. Proactive failure turns a slowly-rotting drive (which would
  keep feeding the erasure code corrupted shards) into the clean
  one-drive-down case the 7+2 code is designed for. Stalls alone never
  fail a drive: reads colliding with in-flight segment programs stall
  by design (Section 4.4), so latency is a suspicion signal, not proof
  of rot.

All thresholds are event counts inside a simulated-time window, so the
machine is deterministic for a given workload and seed.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.perf import PERF

HEALTHY = "healthy"
SUSPECT = "suspect"
FAILED = "failed"

#: Weight of an exhausted-retry fallback relative to one corrupted read.
_EXHAUSTED_WEIGHT = 2


@dataclass
class DriveHealth:
    """Observed-health record for one drive."""

    name: str
    state: str = HEALTHY
    corrupted_reads: int = 0
    stalled_reads: int = 0
    exhausted_retries: int = 0
    suspect_since: float = None
    failed_at: float = None
    #: (timestamp, weight) of recent integrity events inside the window.
    events: deque = field(default_factory=deque)
    #: Timestamps of recent stalled reads (separate ledger: stalls can
    #: raise suspicion but never fail a drive).
    stall_events: deque = field(default_factory=deque)

    def counters(self):
        return {
            "state": self.state,
            "corrupted_reads": self.corrupted_reads,
            "stalled_reads": self.stalled_reads,
            "exhausted_retries": self.exhausted_retries,
        }


class DriveHealthMonitor:
    """Healthy → suspect → failed, driven by read outcomes.

    The segment reader reports every corrupted read, stall, and
    exhausted retry here; the monitor escalates state and, on the
    suspect → failed transition, invokes ``on_auto_fail(drive_name)``
    (the array wires this to its drive-failure path). The caller is
    responsible for running the rebuild that the auto-fail makes
    necessary — see :meth:`PurityArray.service_health`.
    """

    def __init__(self, clock, on_auto_fail=None, suspect_threshold=4,
                 fail_threshold=12, stall_suspect_threshold=24,
                 window_seconds=300.0):
        self.clock = clock
        self.on_auto_fail = on_auto_fail
        #: Weighted integrity events in the window before HEALTHY → SUSPECT.
        self.suspect_threshold = suspect_threshold
        #: Weighted integrity events in the window before SUSPECT → FAILED.
        self.fail_threshold = fail_threshold
        #: Stalled reads in the window before HEALTHY → SUSPECT. Much
        #: higher than the integrity threshold because ordinary segment
        #: flushes stall some reads on a perfectly healthy drive.
        self.stall_suspect_threshold = stall_suspect_threshold
        self.window_seconds = window_seconds
        self._drives = {}
        self.auto_failed = []  # drive names, in failure order

    def health_of(self, drive_name):
        record = self._drives.get(drive_name)
        if record is None:
            record = DriveHealth(drive_name)
            self._drives[drive_name] = record
        return record

    def state_of(self, drive_name):
        return self.health_of(drive_name).state

    def is_suspect(self, drive_name):
        return self.health_of(drive_name).state == SUSPECT

    # ------------------------------------------------------------------
    # Event intake (called from the segment reader)

    def note_corrupted(self, drive_name, region=None):
        """``region`` identifies the damaged area (e.g. a write unit):
        re-reading one bad spot scores once per window — a single torn
        or rotten unit is data damage, not evidence the whole drive is
        dying. Corruption across *distinct* regions keeps scoring."""
        record = self.health_of(drive_name)
        record.corrupted_reads += 1
        PERF.incr("health-corrupted-read")
        self._bad_event(record, weight=1, region=region)

    def note_stalled(self, drive_name):
        record = self.health_of(drive_name)
        record.stalled_reads += 1
        PERF.incr("health-stalled-read")
        self._stall_event(record)

    def note_exhausted(self, drive_name, region=None):
        """All retries burned; the read fell through to reconstruction."""
        record = self.health_of(drive_name)
        record.exhausted_retries += 1
        PERF.incr("health-retries-exhausted")
        self._bad_event(
            record,
            weight=_EXHAUSTED_WEIGHT,
            region=None if region is None else ("exhausted", region),
        )

    def note_failed(self, drive_name):
        """The drive failed outright (pulled, or auto-failed elsewhere)."""
        record = self.health_of(drive_name)
        if record.state != FAILED:
            record.state = FAILED
            record.failed_at = self.clock.now

    def reset(self, drive_name):
        """A replacement drive starts with a clean record."""
        self._drives.pop(drive_name, None)

    # ------------------------------------------------------------------
    # State machine

    def _bad_event(self, record, weight, region=None):
        if record.state == FAILED:
            return
        now = self.clock.now
        horizon = now - self.window_seconds
        while record.events and record.events[0][0] < horizon:
            record.events.popleft()
        if region is not None and any(
            r == region for _t, _w, r in record.events
        ):
            return  # the same damaged spot scored already this window
        record.events.append((now, weight, region))
        score = sum(w for _t, w, _r in record.events)
        if record.state == HEALTHY and score >= self.suspect_threshold:
            record.state = SUSPECT
            record.suspect_since = now
            PERF.incr("health-drive-suspected")
        elif record.state == SUSPECT and score >= self.fail_threshold:
            record.state = FAILED
            record.failed_at = now
            record.events.clear()
            self.auto_failed.append(record.name)
            PERF.incr("health-drive-auto-failed")
            if self.on_auto_fail is not None:
                self.on_auto_fail(record.name)

    def _stall_event(self, record):
        """Stall storms raise suspicion; they never fail a drive."""
        if record.state != HEALTHY:
            return
        now = self.clock.now
        record.stall_events.append(now)
        horizon = now - self.window_seconds
        while record.stall_events and record.stall_events[0] < horizon:
            record.stall_events.popleft()
        if len(record.stall_events) >= self.stall_suspect_threshold:
            record.state = SUSPECT
            record.suspect_since = now
            PERF.incr("health-drive-suspected")

    # ------------------------------------------------------------------
    # Reporting

    def report(self):
        """drive name -> health counters, for telemetry/chaos reports."""
        return {
            name: record.counters() for name, record in sorted(self._drives.items())
        }

    def suspects(self):
        return [
            record.name
            for record in self._drives.values()
            if record.state == SUSPECT
        ]

    def stall_pressure(self, drive_name):
        """Stalled reads recorded inside the sliding window (0 = calm).

        A support-facing signal: telemetry surfaces it next to the
        hedge counters so "which drive is stalling right now" is one
        lookup. Deliberately *not* a hedge trigger — stalls happen on
        perfectly healthy drives during ordinary segment flushes, so
        hedging on this would fire in fault-free runs and break the
        hedging-on/off trace-identity guarantee.
        """
        record = self._drives.get(drive_name)
        if record is None:
            return 0
        horizon = self.clock.now - self.window_seconds
        return sum(1 for stamp in record.stall_events if stamp >= horizon)
