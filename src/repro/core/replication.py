"""Asynchronous off-site replication.

Purity arrays include replication ports and ship volumes to a second
array without pausing service. The replicator here is snapshot-based:
each cycle snapshots the source volume, ships the delta since the last
replicated snapshot (full content on the first cycle), and applies it
to the target array. Zero runs are skipped, and the target's own
dedup/compression pipeline reduces the shipped bytes again on arrival.
"""

from dataclasses import dataclass, field

from repro.errors import ReplicationError, VolumeNotFoundError
from repro.units import KIB, MIB


@dataclass
class ReplicationCycle:
    """Accounting for one replication round of one volume."""

    volume: str
    snapshot_name: str
    bytes_examined: int = 0
    bytes_shipped: int = 0
    chunks_shipped: int = 0
    link_seconds: float = 0.0
    extra: dict = field(default_factory=dict)


class AsyncReplicator:
    """Ships volumes from a source array to a target array."""

    def __init__(self, source, target, link_bandwidth=100 * MIB,
                 link_latency=0.03, chunk_size=64 * KIB):
        if chunk_size % 512:
            raise ReplicationError("chunk size must be sector aligned")
        self.source = source
        self.target = target
        self.link_bandwidth = link_bandwidth
        self.link_latency = link_latency
        self.chunk_size = chunk_size
        self._last_snapshot = {}  # volume -> (snapshot_name, medium, seqno mark)
        self._cycle_counter = 0
        self.cycles = []

    def _ensure_target_volume(self, volume):
        size = self.source.volumes.volume_size(volume)
        try:
            target_size = self.target.volumes.volume_size(volume)
        except VolumeNotFoundError:
            self.target.create_volume(volume, size)
            return
        if target_size != size:
            raise ReplicationError(
                "target volume %r is %d bytes, source is %d"
                % (volume, target_size, size)
            )

    def replicate(self, volume):
        """Run one replication cycle for ``volume``; returns the cycle.

        The first cycle ships all non-zero content; later cycles ship
        only ranges whose address-map facts are newer than the previous
        cycle's sequence mark.
        """
        self._ensure_target_volume(volume)
        self._cycle_counter += 1
        snapshot_name = "__repl_%d" % self._cycle_counter
        seq_mark_now = self.source.pipeline.sequence.last_issued
        snap_medium = self.source.snapshot(volume, snapshot_name)
        cycle = ReplicationCycle(volume=volume, snapshot_name=snapshot_name)
        previous = self._last_snapshot.get(volume)
        size = self.source.volumes.volume_size(volume)
        if previous is None:
            ranges = [(0, size)]
        else:
            ranges = self._changed_ranges(snap_medium, previous[2], size)
        for start, length in ranges:
            self._ship_range(snap_medium, volume, start, length, cycle)
        if previous is not None:
            self.source.destroy_snapshot(volume, previous[0])
        self._last_snapshot[volume] = (snapshot_name, snap_medium, seq_mark_now)
        self.cycles.append(cycle)
        return cycle

    def _changed_ranges(self, snap_medium, seq_mark, size):
        """Byte ranges written since the previous cycle's mark.

        Walks the snapshot's medium chain and collects extents newer
        than the mark, coalescing them into chunk-aligned ranges.
        """
        from repro.mediums.medium import MEDIUM_NONE
        from repro.metadata.rangecode import IntRangeSet

        table = self.source.medium_table
        address_map = self.source.tables.address_map
        changed = IntRangeSet()
        frontier = [(snap_medium, 0, 0, size)]
        seen = set()
        while frontier:
            medium_id, m_off, v_off, length = frontier.pop()
            if (medium_id, m_off, v_off) in seen:
                continue
            seen.add((medium_id, m_off, v_off))
            for row in table.ranges_of(medium_id):
                sub_start = max(m_off, row.start)
                sub_end = min(m_off + length, row.end)
                if sub_start >= sub_end or row.target == MEDIUM_NONE:
                    continue
                frontier.append(
                    (
                        row.target,
                        row.target_offset + (sub_start - row.start),
                        v_off + (sub_start - m_off),
                        sub_end - sub_start,
                    )
                )
            for fact in address_map.scan((medium_id, 0), (medium_id, 2 ** 62)):
                if fact.seqno <= seq_mark:
                    continue
                extent_offset = fact.key[1]
                logical = self.source.datapath._extent_logical_length(fact.value)
                lo = max(extent_offset, m_off)
                hi = min(extent_offset + logical, m_off + length)
                if lo < hi:
                    changed.add(v_off + (lo - m_off), v_off + (hi - m_off) - 1)
        return [(lo, hi - lo + 1) for lo, hi in changed]

    def _ship_range(self, snap_medium, volume, start, length, cycle):
        cursor = start
        end = start + length
        while cursor < end:
            chunk_length = min(self.chunk_size, end - cursor)
            data, _latency = self.source.datapath.read(
                snap_medium, cursor, chunk_length
            )
            cycle.bytes_examined += chunk_length
            if any(data):
                cycle.bytes_shipped += chunk_length
                cycle.chunks_shipped += 1
                cycle.link_seconds += (
                    self.link_latency + chunk_length / self.link_bandwidth
                )
                self.target.write(volume, cursor, data, advance_clock=False)
            cursor += chunk_length

    def total_bytes_shipped(self):
        return sum(cycle.bytes_shipped for cycle in self.cycles)
