"""Crash recovery and controller failover (paper Section 4.3, Figure 5).

Recovery rebuilds a controller's in-memory state from three durable
sources, cheapest first:

1. **Boot region** — frontier/speculative sets, allocator state,
   counters, and pointers to every patch persisted before the last
   checkpoint. Loading patches is a handful of random reads.
2. **Frontier scan** — segio headers in the persisted frontier and
   speculative AUs. Because the allocator only ever uses frontier AUs,
   every segment written since the checkpoint lives here; their headers
   surface the log records to replay. (The full-array header scan this
   replaces is the 12 s baseline; the frontier scan is the 0.1 s fix.)
3. **NVRAM** — commit records not yet trimmed: metadata facts are
   unioned in, raw application writes are replayed through the data
   path.

Because all tuples are immutable facts, recovery is a set union —
re-inserting anything already present is harmless.
"""

from dataclasses import dataclass, field

from repro.core import tables as T
from repro.errors import AllocationError, DataLossError, UncorrectableError
from repro.layout.segment import SegmentDescriptor
from repro.pyramid.patch import Patch
from repro.pyramid.wal import decode_commit_record


@dataclass
class RecoveryReport:
    """Timing and volume accounting for one recovery."""

    boot_latency: float = 0.0
    patch_load_latency: float = 0.0
    scan_latency: float = 0.0
    nvram_latency: float = 0.0
    replay_latency: float = 0.0
    aus_scanned: int = 0
    headers_found: int = 0
    patches_loaded: int = 0
    facts_recovered: int = 0
    raw_writes_replayed: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def total_latency(self):
        """End-to-end recovery time: must beat the 30 s client timeout."""
        return (
            self.boot_latency
            + self.patch_load_latency
            + self.scan_latency
            + self.nvram_latency
            + self.replay_latency
        )


def _unflatten_placements(flat):
    return tuple((flat[i], flat[i + 1]) for i in range(0, len(flat), 2))


def recover_array(cls, config, shelf, boot_region, clock,
                  full_scan=False, warm_cache_fraction=0.0, obs=None):
    """Bring up a fresh controller over a surviving substrate.

    ``full_scan=True`` is the pre-frontier baseline: scan every
    allocated AU's headers instead of just the frontier set.
    ``warm_cache_fraction`` models the secondary controller's
    asynchronously warmed cache (Section 4.3), discounting patch-load
    read time. ``obs`` threads one :class:`repro.obs.Observability`
    through failovers so a chaos run keeps a single trace. Returns
    (array, RecoveryReport).
    """
    array = cls(
        config=config, clock=clock, shelf=shelf, boot_region=boot_region,
        obs=obs,
    )
    span = None
    if obs is not None and obs.tracing:
        span = obs.begin("recovery", full_scan=full_scan)
    try:
        report = _recover_body(array, boot_region, clock, full_scan,
                               warm_cache_fraction)
    except BaseException:
        if span is not None:
            obs.end(span, crashed=True)
        raise
    # Degraded-mode intake: the array constructor already re-detected
    # substrate evidence (failed drives, torn NVRAM); the replay count
    # is only known now, so charge it as nvram-replay debt — it stays
    # outstanding until a checkpoint (or write-through drain) settles it.
    if array.degrade.nvram_degraded and report.raw_writes_replayed:
        array.degrade.debt.charge("nvram-replay", report.raw_writes_replayed)
    if span is not None:
        obs.end(
            span,
            lat=report.total_latency,
            boot=report.boot_latency,
            scan=report.scan_latency,
            nvram=report.nvram_latency,
            replay=report.replay_latency,
            facts=report.facts_recovered,
            raw_writes=report.raw_writes_replayed,
        )
    if obs is not None:
        obs.metrics.histogram("recovery.downtime").record(report.total_latency)
        obs.metrics.counter("recovery.count").inc()
    return array, report


def _recover_body(array, boot_region, clock, full_scan, warm_cache_fraction):
    report = RecoveryReport()

    # 1. Boot region.
    checkpoint, boot_latency = boot_region.read_checkpoint()
    report.boot_latency = boot_latency
    array.allocator.restore_state(list(checkpoint["used_units"]))
    array.frontier.restore(
        list(checkpoint["frontier"]), list(checkpoint["speculative"])
    )
    # Drives that died before (or with) the controller are detected at
    # boot and excluded from allocation; drives replaced since the
    # checkpoint no longer exist under their old names at all.
    array.frontier.retain_drives(
        name for name, drive in array.drives.items() if not drive.failed
    )
    for drive_name, drive in array.drives.items():
        if drive.failed:
            array.allocator.drop_drive(drive_name)
            array.frontier.drop_drive(drive_name)
    array.segwriter.set_next_segment_id(checkpoint["next_segment_id"])
    array.pipeline.sequence.advance_past(checkpoint["next_seqno"] - 1)
    array.pipeline.restore_checkpoint_identities(checkpoint["patch_pointers"])
    array.medium_table.set_next_medium_id(checkpoint["next_medium_id"])
    array.pipeline.set_medium_id_hint(checkpoint["next_medium_id"])

    # 2. Patch pointers: bulk-load persisted index state. These records
    # were checkpointed *after* a successful drain, so an unreadable one
    # is genuine loss — detected and reported, never silently skipped.
    for relation_name, pointer in checkpoint["patch_pointers"]:
        facts = []
        for flat_placements, offset, length in pointer:
            descriptor = SegmentDescriptor(
                segment_id=-1, placements=_unflatten_placements(flat_placements)
            )
            try:
                blob, latency = array.segreader.read_log_record(
                    descriptor, (offset, length)
                )
            except UncorrectableError as exc:
                raise DataLossError(
                    "recovery cannot read a checkpointed %s patch: %s"
                    % (relation_name, exc)
                ) from exc
            report.patch_load_latency += latency * (1.0 - warm_cache_fraction)
            _name, chunk, _end = decode_commit_record(blob)
            facts.extend(chunk)
        if facts:
            array.tables[relation_name].pyramid.adopt_patch(Patch(facts))
            report.patches_loaded += 1
            report.facts_recovered += len(facts)

    # 3. Header scan: frontier set (fast) or every allocated AU (baseline).
    scan_units = (
        list(checkpoint["frontier"])
        + list(checkpoint["speculative"])
        + [tuple(unit) for unit in checkpoint.get("open_units", ())]
    )
    if full_scan:
        seen = set(scan_units)
        for unit in checkpoint["used_units"]:
            if tuple(unit) not in seen:
                scan_units.append(tuple(unit))
    report.aus_scanned = len(scan_units)
    torn_log_records = 0
    headers, scan_latency = array.segreader.scan_headers(scan_units)
    report.scan_latency = scan_latency
    report.headers_found = len(headers)
    max_segment_id = checkpoint["next_segment_id"] - 1
    for header in headers:
        descriptor = header.descriptor()
        max_segment_id = max(max_segment_id, header.segment_id)
        for drive_name, au_index in descriptor.placements:
            array.frontier.remove_unit(drive_name, au_index)
            try:
                array.allocator.take_specific(drive_name, au_index)
            # lint: allow[no-bare-except] already marked used (pre-checkpoint segment)
            except AllocationError:
                pass
        if array.tables.segments.get((header.segment_id,)) is None:
            placements = tuple(tuple(pair) for pair in descriptor.placements)
            array.pipeline.insert_derived(
                T.SEGMENTS, (header.segment_id,), (placements,)
            )
        for locator in header.log_locators:
            try:
                blob, latency = array.segreader.read_log_record(
                    descriptor, locator
                )
            except UncorrectableError:
                # A torn segio: the crash interrupted its flush. NVRAM
                # is only ever trimmed *after* a flush completes, so the
                # facts in this record are still in NVRAM (step 4) —
                # skipping the torn copy loses nothing.
                torn_log_records += 1
                continue
            report.scan_latency += latency
            relation_name, facts, _end = decode_commit_record(blob)
            for fact in facts:
                array.tables[relation_name].insert_fact(fact)
                report.facts_recovered += 1
    array.segwriter.set_next_segment_id(max_segment_id + 1)
    report.extra["torn_log_records"] = torn_log_records

    # 4. NVRAM: union metadata facts, queue raw writes for replay.
    batches, nvram_latency = array.pipeline.wal.recovery_scan()
    report.nvram_latency = nvram_latency
    raw_writes = []
    nvram_max_seq = 0
    for relation_name, facts in batches:
        for fact in facts:
            nvram_max_seq = max(nvram_max_seq, fact.seqno)
        if relation_name == T.RAW_WRITES:
            raw_writes.extend(facts)
            continue
        for fact in facts:
            array.tables[relation_name].insert_fact(fact)
            report.facts_recovered += 1

    # 5. Sequence numbers must outrun everything recovered before replay
    # — sequence numbers are never reused (Section 4.10) — and every
    # persisted elide record is re-applied so deletions stay deleted.
    array.pipeline.sequence.advance_past(
        max(array.tables.max_seqno(), nvram_max_seq)
    )
    report.extra["elides_replayed"] = array.pipeline.replay_elides()
    _restore_medium_counter(array)

    # 6. Replay raw writes, in NVRAM (= commit) order.
    replay_start = clock.now
    for fact in raw_writes:
        medium_id, offset = fact.key
        array.datapath.process_write(medium_id, offset, fact.value[0])
        report.raw_writes_replayed += 1
    report.replay_latency = clock.now - replay_start

    clock.advance(report.total_latency)
    return report


def _restore_medium_counter(array):
    """Medium ids must stay dense and monotone across recoveries."""
    medium_ids = array.medium_table.all_medium_ids()
    if medium_ids:
        array.medium_table.set_next_medium_id(medium_ids[-1] + 1)
        array.pipeline.set_medium_id_hint(medium_ids[-1] + 1)
