"""The Purity array facade.

One :class:`PurityArray` is one controller's view of the appliance: the
shared substrate (drives, NVRAM, boot region) plus all in-memory state
(relations, dedup index, open segio). ``PurityArray.create`` builds a
fresh array; :meth:`crash` abandons the in-memory state, and
``PurityArray.recover`` (see :mod:`repro.core.recovery`) rebuilds a
controller over the surviving substrate — the same flow a controller
failover exercises.
"""

from repro.core import tables as T
from repro.core.commit import CommitPipeline
from repro.core.config import ArrayConfig
from repro.core.datapath import DataPath
from repro.core.gc import GarbageCollector
from repro.core.health import DriveHealthMonitor
from repro.core.scrubber import Scrubber
from repro.core.tables import TableSet
from repro.core.telemetry import ReductionReport
from repro.core.volume import VolumeManager
from repro.degrade import DegradeEngine, HedgePolicy, RebuildGovernor
from repro.erasure.reed_solomon import ReedSolomon
from repro.layout.allocation import Allocator
from repro.layout.bootregion import BootRegion
from repro.layout.frontier import FrontierManager
from repro.layout.segreader import SegmentReader
from repro.layout.segwriter import SegmentWriter
from repro.mediums.medium import MediumTable
from repro.obs.trace import Observability
from repro.parallel import BufferPool, ParallelExecutor
from repro.sim.clock import SimClock
from repro.sim.rand import RandomStream
from repro.ssd.shelf import Shelf


class PurityArray:
    """A single-controller Purity array over simulated hardware."""

    def __init__(self, config=None, clock=None, shelf=None, boot_region=None,
                 obs=None):
        self.config = config or ArrayConfig()
        self.clock = clock or SimClock()
        #: Unified observability (trace + metrics). Passing an existing
        #: instance (controller failover) keeps one trace across crashes.
        self.obs = obs if obs is not None else Observability(self.clock)
        self.stream = RandomStream(self.config.seed)
        if shelf is None:
            shelf = Shelf(
                "shelf0",
                self.clock,
                self.stream.fork("shelf0"),
                num_drives=self.config.num_drives,
                geometry=self.config.ssd_geometry,
                rated_pe_cycles=self.config.rated_pe_cycles,
                nvram_capacity=self.config.nvram_capacity,
            )
        self.shelf = shelf
        self.boot_region = boot_region or BootRegion(self.clock)
        geometry = self.config.segment_geometry
        self.codec = ReedSolomon(geometry.data_shards, geometry.parity_shards)
        self.drives = {drive.name: drive for drive in shelf.drives}
        self.allocator = Allocator(list(self.drives), self.config.aus_per_drive)
        self.frontier = FrontierManager(
            self.allocator, batch_per_drive=self.config.frontier_batch_per_drive
        )
        self.segwriter = SegmentWriter(
            geometry,
            self.codec,
            self.drives,
            self.frontier,
            self.clock,
            on_segment_opened=self._on_segment_opened,
            max_concurrent_writes=self.config.max_concurrent_writes,
        )
        self.health = DriveHealthMonitor(
            self.clock, on_auto_fail=self._auto_fail_drive
        )
        self.segreader = SegmentReader(
            geometry,
            self.codec,
            self.drives,
            avoid_policy=self._avoid_policy,
            health=self.health,
            config=self.config,
        )
        self.tables = TableSet(fanout=self.config.pyramid_fanout)
        self.pipeline = CommitPipeline(
            self.tables,
            shelf.nvram,
            self.segwriter,
            self.frontier,
            self.allocator,
            self.boot_region,
            self.config,
        )
        self.segwriter.checkpointer = self.pipeline.checkpoint
        self.medium_table = MediumTable(
            self.tables.mediums,
            inserter=lambda key, value: self.pipeline.insert_meta(
                T.MEDIUMS, key, value
            )[0],
            on_allocate=lambda medium_id: self.pipeline.set_medium_id_hint(
                medium_id + 1
            ),
            elider=lambda prefix: self.pipeline.elide_prefix(T.MEDIUMS, prefix),
        )
        self.datapath = DataPath(
            self.pipeline,
            self.medium_table,
            self.segwriter,
            self.segreader,
            self.config,
        )
        self.volumes = VolumeManager(self.pipeline, self.medium_table, self.datapath)
        self.gc = GarbageCollector(self)
        self.scrubber = Scrubber(self)
        # Thread the observability handle through every layer that
        # opens spans or bumps registry metrics (same idiom as the
        # fault-injection crashpoints: a plain slot, None-safe).
        self.datapath.obs = self.obs
        self.segwriter.obs = self.obs
        self.segreader.obs = self.obs
        for drive in self.drives.values():
            drive.obs = self.obs
        #: Deterministic fan-out for CPU-bound stages, plus recycled
        #: scratch buffers for the flush and read paths. Wired the same
        #: way as ``obs``: plain slots, None-safe at every call site.
        self.parallel = ParallelExecutor(
            workers=self.config.workers,
            chunk_items=self.config.parallel_chunk_items,
            min_items=self.config.parallel_min_items,
            rs_chunk_cols=self.config.parallel_rs_chunk_cols,
        )
        self.parallel.obs = self.obs
        self.datapath.parallel = self.parallel
        self.segwriter.parallel = self.parallel
        self.segwriter.buffer_pool = BufferPool(
            self.config.segio_buffer_pool, metrics=self.obs.metrics,
            name="pool.segio",
        )
        self.datapath.read_pool = BufferPool(
            self.config.read_buffer_pool, metrics=self.obs.metrics,
            name="pool.read",
        )
        self._write_latency = self.obs.metrics.histogram("io.write.latency")
        self._read_latency = self.obs.metrics.histogram("io.read.latency")
        # Degraded-mode policy layer (see :mod:`repro.degrade`): the
        # ladder/ledger engine, the hedged-read policy, and the rebuild
        # governor. The hedge policy is wired unconditionally so the
        # reconstruction candidate ordering is identical with hedging
        # on or off; ``enabled`` only controls whether hedges fire.
        self.degrade = DegradeEngine(self.clock, obs=self.obs)
        self.datapath.degrade = self.degrade
        self.segwriter.degrade = self.degrade
        self.segreader.hedge = HedgePolicy(
            self.clock,
            self.config.hedge_deadline,
            health=self.health,
            obs=self.obs,
            enabled=self.config.hedge_reads,
        )
        self.rebuild_governor = RebuildGovernor(
            self.clock,
            slo_p99=self.config.rebuild_slo_p99,
            full_rate=self.config.rebuild_rate_full,
            throttled_rate=self.config.rebuild_rate_throttled,
            burst=self.config.rebuild_burst,
            window=self.config.slo_window_reads,
            obs=self.obs,
        )
        # A controller booting onto substrate evidence of damage starts
        # on the matching rung (recovery adds the replay-debt numbers).
        if getattr(shelf.nvram, "degraded", False):
            self.degrade.note_nvram_tear()
        self._note_drive_failures()
        self.crashed = False
        self._rebuild_pending = False

    # ------------------------------------------------------------------
    # Construction

    @classmethod
    def create(cls, config=None, clock=None):
        """Build and initialize a brand-new array (first checkpoint)."""
        array = cls(config=config, clock=clock)
        array.pipeline.checkpoint()
        return array

    def _on_segment_opened(self, descriptor):
        placements = tuple(tuple(pair) for pair in descriptor.placements)
        self.pipeline.insert_derived(
            T.SEGMENTS, (descriptor.segment_id,), (placements,)
        )

    def _avoid_policy(self, drive):
        if not self.config.read_around_writes:
            return False
        return drive.busy_writing(self.clock.now)

    # ------------------------------------------------------------------
    # Client API

    def _check_alive(self):
        if self.crashed:
            raise RuntimeError("this controller has crashed; recover first")

    def create_volume(self, name, size):
        """Provision a virtual block device."""
        self._check_alive()
        return self.volumes.create_volume(name, size)

    def write(self, volume, offset, data, advance_clock=True):
        """Write to a volume; returns the acknowledged commit latency."""
        self._check_alive()
        obs = self.obs
        span = None
        if obs.tracing:
            span = obs.begin("io.write", volume=volume, offset=offset,
                             nbytes=len(data))
        try:
            latency = self.volumes.write(volume, offset, data)
        except BaseException:
            if span is not None:
                obs.end(span, crashed=True)
            raise
        if span is not None:
            obs.end(span, lat=latency)
        self._write_latency.record(latency)
        if advance_clock:
            self.clock.advance(latency)
        return latency

    def read(self, volume, offset, length, advance_clock=True):
        """Read from a volume; returns (bytes, latency)."""
        self._check_alive()
        obs = self.obs
        span = None
        if obs.tracing:
            span = obs.begin("io.read", volume=volume, offset=offset,
                             nbytes=length)
        try:
            data, latency = self.volumes.read(volume, offset, length)
        except BaseException:
            if span is not None:
                obs.end(span, crashed=True)
            raise
        if span is not None:
            obs.end(span, lat=latency)
        self._read_latency.record(latency)
        self.rebuild_governor.observe_read_latency(latency)
        if advance_clock:
            self.clock.advance(latency)
        return data, latency

    def unmap(self, volume, offset, length):
        """Punch a zero hole in a volume."""
        self._check_alive()
        self.volumes.unmap(volume, offset, length)

    def snapshot(self, volume, snapshot_name):
        """Instant point-in-time image of a volume."""
        self._check_alive()
        return self.volumes.snapshot(volume, snapshot_name)

    def clone(self, volume, snapshot_name, new_volume):
        """Writable volume backed by an existing snapshot."""
        self._check_alive()
        return self.volumes.clone_from_snapshot(volume, snapshot_name, new_volume)

    def clone_volume(self, volume, new_volume):
        """Writable copy of a live volume (internally snapshots it)."""
        self._check_alive()
        return self.volumes.clone_volume(volume, new_volume)

    def destroy_volume(self, volume):
        self._check_alive()
        self.volumes.destroy_volume(volume)

    def destroy_snapshot(self, volume, snapshot_name):
        self._check_alive()
        self.volumes.destroy_snapshot(volume, snapshot_name)

    # ------------------------------------------------------------------
    # Maintenance

    def drain(self):
        """Seal and persist in-memory index state; trims NVRAM."""
        self._check_alive()
        return self.pipeline.drain()

    def checkpoint(self):
        """Write a boot-region checkpoint (also refills the frontier).

        A checkpoint persists everything a torn NVRAM mirror put at
        risk, so it also completes the ``nvram-degraded`` repair: the
        ladder descends and write-through mode ends.
        """
        self._check_alive()
        self.pipeline.drain()
        result = self.pipeline.checkpoint()
        if self.degrade.nvram_degraded:
            self.degrade.note_nvram_repaired()
            mark = getattr(self.shelf.nvram, "mark_repaired", None)
            if mark is not None:
                mark()
        return result

    def run_gc(self, max_segments=4):
        """One background garbage-collection pass."""
        self._check_alive()
        return self.gc.run(max_segments=max_segments)

    def scrub(self, max_segments=None):
        """One background scrub pass (Section 5.1)."""
        self._check_alive()
        return self.scrubber.run(max_segments=max_segments)

    def fail_drive(self, drive_name):
        """Fail one SSD (the pulled-drive demo from Section 1).

        Service continues degraded; :meth:`rebuild` re-protects the
        affected segments onto the surviving drives.
        """
        drive = self.drives[drive_name]
        drive.fail()
        self.allocator.drop_drive(drive_name)
        self.frontier.drop_drive(drive_name)
        self.health.note_failed(drive_name)
        self._note_drive_failures()

    def _auto_fail_drive(self, drive_name):
        """Health-monitor callback: a chronically suspect drive is
        proactively failed; the next :meth:`service_health` rebuilds."""
        drive = self.drives.get(drive_name)
        if drive is None or drive.failed:
            return
        drive.fail()
        self.allocator.drop_drive(drive_name)
        self.frontier.drop_drive(drive_name)
        self._rebuild_pending = True
        self._note_drive_failures()

    def _note_drive_failures(self):
        """Feed current drive-failure evidence to the degrade engine.

        More failures than parity shards is *detected* unsurvivable
        damage: the ladder pins the array read-only (reads keep being
        served and report loss honestly; writes are refused).
        """
        failed = sorted(
            name for name, drive in self.drives.items() if drive.failed
        )
        for name in failed:
            self.degrade.note_drive_failed(name)
        parity = self.config.segment_geometry.parity_shards
        if len(failed) > parity:
            self.degrade.note_unsurvivable(
                "%d concurrent drive failures exceed the parity budget (%d)"
                % (len(failed), parity)
            )

    def service_health(self):
        """Run the rebuild owed to auto-failed drives; returns segments
        re-protected (0 when no drive was auto-failed since last call).

        Deferred from the auto-fail itself because rebuild reads through
        the same segment reader that reported the bad drive — running it
        inline would recurse into the read path that triggered it.
        """
        if not getattr(self, "_rebuild_pending", False):
            return 0
        self._rebuild_pending = False
        return self.rebuild()

    def replace_drive(self, drive_name):
        """Install a fresh drive in a failed slot (service call)."""
        index = [d.name for d in self.shelf.drives].index(drive_name)
        replacement = self.shelf.replace_drive(
            index, self.stream.fork("replacement-%s" % drive_name)
        )
        del self.drives[drive_name]
        self.drives[replacement.name] = replacement
        replacement.obs = self.obs
        self.allocator.add_drive(replacement.name)
        self.health.reset(drive_name)
        if self.obs.tracing:
            self.obs.event("drive.replace", drive=drive_name)
        return replacement

    def rebuild(self):
        """Evacuate every segment that lost a shard to a failed drive.

        Each evacuation reads through Reed-Solomon reconstruction and
        rewrites onto healthy drives, restoring full 7+2 protection.
        Returns the number of segments re-protected.
        """
        self._check_alive()
        obs = self.obs
        governor = self.rebuild_governor
        span = obs.begin("rebuild") if obs.tracing else None
        rebuilt = 0
        deferred = 0
        try:
            for fact in list(self.tables.segments.scan()):
                segment_id = fact.key[0]
                placements = fact.value[0]
                degraded = any(
                    drive_name not in self.drives
                    or self.drives[drive_name].failed
                    for drive_name, _au in placements
                )
                if not degraded:
                    continue
                self.degrade.note_degraded_stripe(segment_id)
                if not governor.grant():
                    deferred += 1
                    continue
                if self.gc.collect_segment(segment_id):
                    rebuilt += 1
                    self.degrade.note_segment_reprotected(segment_id)
                elif self.tables.segments.get((segment_id,)) is None:
                    # The segment vanished under us (already collected);
                    # nothing is left to repair.
                    self.degrade.note_segment_reprotected(segment_id)
        finally:
            if span is not None:
                obs.end(span, segments=rebuilt, deferred=deferred)
        if rebuilt:
            obs.metrics.counter("rebuild.segments").inc(rebuilt)
        if deferred:
            obs.metrics.counter("rebuild.deferred_segments").inc(deferred)
        elif not any(drive.failed for drive in self.drives.values()):
            if not self.degrade.degraded_segments:
                # A full pass saw nothing degraded and nothing was
                # deferred: parity protection is fully restored.
                self.degrade.note_parity_restored()
        return rebuilt

    def crash(self):
        """Abandon all controller state; the substrate survives.

        Returns (shelf, boot_region, clock) to hand to a recovering
        controller (``PurityArray.recover``).
        """
        self.crashed = True
        return self.shelf, self.boot_region, self.clock

    @classmethod
    def recover(cls, config, shelf, boot_region, clock, obs=None):
        """Bring up a controller over an existing substrate.

        Pass the crashed controller's ``obs`` to keep one trace and one
        metrics registry across the failover.
        """
        from repro.core.recovery import recover_array

        return recover_array(cls, config, shelf, boot_region, clock, obs=obs)

    # ------------------------------------------------------------------
    # Telemetry

    def reduction_report(self):
        """Data-reduction accounting (the paper's 5.4x metric)."""
        logical_live = 0
        unique = {}
        for fact in self.datapath.visible_extents():
            value = fact.value
            if value[0] == T.EXTENT_HOLE:
                continue
            logical_live += value[4]
            key = (value[1], value[2])
            if value[0] == T.EXTENT_DIRECT:
                unique[key] = (value[3], value[4])
            else:
                # Dedup-only references: the cblock's own logical size is
                # unknown here; approximate it by its stored size.
                unique.setdefault(key, (value[3], value[3]))
        physical = sum(stored for stored, _logical in unique.values())
        unique_logical = sum(logical for _stored, logical in unique.values())
        geometry = self.config.segment_geometry
        parity_factor = geometry.total_shards / geometry.data_shards
        return ReductionReport(
            logical_live_bytes=logical_live,
            unique_logical_bytes=unique_logical,
            physical_stored_bytes=physical,
            physical_with_parity_bytes=int(physical * parity_factor),
            provisioned_bytes=self.volumes.provisioned_bytes(),
        )

    def observe_sample(self):
        """Record one point of every periodic gauge series.

        Harnesses and benchmarks call this every few operations; the
        report renders the resulting ``device.queue_depth`` /
        ``cache.cblock_hit_rate`` / ``dedup.ratio`` series over sim time.
        """
        registry = self.obs.metrics
        now = self.clock.now
        depth = sum(
            drive.queue_depth(now)
            for drive in self.drives.values()
            if not drive.failed
        )
        registry.series("device.queue_depth").sample(now, depth)
        cache = self.datapath._cblock_cache
        looked = cache.hits + cache.misses
        if looked:
            registry.series("cache.cblock_hit_rate").sample(
                now, cache.hits / looked
            )
        written = self.datapath.logical_bytes_written
        if written:
            registry.series("dedup.savings_fraction").sample(
                now, self.datapath.dedup_bytes_saved / written
            )
        registry.gauge("drives.alive").set(
            sum(1 for drive in self.drives.values() if not drive.failed)
        )

    def capacity_report(self):
        """Raw/allocated capacity view."""
        geometry = self.config.segment_geometry
        return {
            "raw_bytes": self.config.raw_capacity_bytes,
            "allocated_aus": self.allocator.used_count(),
            "free_aus": self.allocator.free_count(),
            "au_size": geometry.au_size,
            "alive_drives": len(self.shelf.alive_drives),
        }
