"""Striping helpers: payload <-> shard conversion.

A segment's payload is split into ``k`` equal data shards (padded to a
common length), parity is computed, and each shard lands on a different
drive of the write group. ``unstripe_payload`` reverses the split.
"""

from repro.units import align_up


def stripe_payload(payload, data_shards, alignment=1):
    """Split ``payload`` into ``data_shards`` equal shards.

    Each shard length is padded up to ``alignment`` (e.g. a device page
    size). Returns (shards, shard_length); shards are bytes.
    """
    if data_shards <= 0:
        raise ValueError("data_shards must be positive")
    shard_length = align_up(
        (len(payload) + data_shards - 1) // data_shards, alignment
    )
    shard_length = max(shard_length, alignment)
    padded = payload + b"\x00" * (shard_length * data_shards - len(payload))
    shards = [
        bytes(padded[index * shard_length : (index + 1) * shard_length])
        for index in range(data_shards)
    ]
    return shards, shard_length


def unstripe_payload(shards, payload_length):
    """Reassemble the original payload from data shards."""
    joined = b"".join(shards)
    if payload_length > len(joined):
        raise ValueError(
            "payload length %d exceeds shard data %d" % (payload_length, len(joined))
        )
    return joined[:payload_length]
