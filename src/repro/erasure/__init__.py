"""Reed–Solomon erasure coding (paper Section 4.2).

Purity stripes each segment across drives with 7+2 Reed–Solomon so the
array survives any two simultaneous SSD failures, and reconstructs
around slow or busy drives (Section 4.4). This package implements
GF(256) arithmetic, a systematic Reed–Solomon codec, and the striping
helpers the segment layer uses.
"""

from repro.erasure.gf256 import GF256
from repro.erasure.reed_solomon import ReedSolomon
from repro.erasure.striping import stripe_payload, unstripe_payload

__all__ = ["GF256", "ReedSolomon", "stripe_payload", "unstripe_payload"]
