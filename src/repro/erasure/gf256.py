"""Arithmetic in GF(2^8).

The paper cites Plank et al.'s SIMD Galois-field work [45] for its
"screaming fast" software Reed–Solomon. The Python equivalent of that
optimization is table-driven arithmetic vectorized with numpy: scalar
ops use exp/log tables, and array ops gather through a precomputed
256x256 full product table — ``MUL_TABLE[scalar]`` is the complete
multiplication row for that scalar, so multiplying a whole shard is a
single table lookup with no masking and no temporaries. The field uses
the common AES-unrelated polynomial 0x11d.

The older masked exp/log array kernels are kept as
``mul_array_reference`` / ``addmul_array_reference``: they are the
oracle the property tests (and the hot-path benchmark's seed mode)
check the table kernels against bit-for-bit.
"""

import numpy as np

#: Field-defining primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D


def _build_tables():
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    # Duplicate so exp[log a + log b] never needs a mod 255.
    exp[255:510] = exp[0:255]
    return exp, log


def _build_mul_table(exp, log):
    """The full 256x256 product table: table[a][b] = a * b in GF(256).

    Row 0 is all zeros and row 1 is the identity, so the array kernels
    need no scalar special-casing.
    """
    table = np.zeros((256, 256), dtype=np.uint8)
    logs = log[1:].astype(np.int64)
    table[1:, 1:] = exp[logs[:, None] + logs[None, :]]
    return table


class GF256:
    """GF(2^8) arithmetic: scalar helpers plus vectorized shard ops."""

    EXP, LOG = _build_tables()
    MUL_TABLE = _build_mul_table(EXP, LOG)

    @classmethod
    def add(cls, a, b):
        """Addition (= subtraction) is XOR."""
        return a ^ b

    @classmethod
    def mul(cls, a, b):
        """Scalar multiply."""
        if a == 0 or b == 0:
            return 0
        return int(cls.EXP[int(cls.LOG[a]) + int(cls.LOG[b])])

    @classmethod
    def div(cls, a, b):
        """Scalar divide; b must be non-zero."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if a == 0:
            return 0
        return int(cls.EXP[(int(cls.LOG[a]) - int(cls.LOG[b])) % 255])

    @classmethod
    def inv(cls, a):
        """Multiplicative inverse; a must be non-zero."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(256)")
        return int(cls.EXP[255 - int(cls.LOG[a])])

    @classmethod
    def pow(cls, a, exponent):
        """a raised to an integer power."""
        if exponent == 0:
            return 1
        if a == 0:
            return 0
        return int(cls.EXP[(int(cls.LOG[a]) * exponent) % 255])

    @classmethod
    def mul_array(cls, array, scalar):
        """Multiply a uint8 numpy array elementwise by a scalar.

        One gather through the scalar's product-table row; rows 0 and 1
        make the zero/identity cases fall out naturally.
        """
        return cls.MUL_TABLE[scalar][array]

    @classmethod
    def addmul_array(cls, accumulator, array, scalar, scratch=None):
        """accumulator ^= array * scalar, in place (the RS inner loop).

        With a caller-owned ``scratch`` (uint8, same shape as ``array``)
        the fused gather-XOR allocates nothing: the product lands in
        ``scratch`` and is XORed into ``accumulator`` in place.
        """
        if scalar == 0:
            return accumulator
        if scalar == 1:
            np.bitwise_xor(accumulator, array, out=accumulator)
            return accumulator
        row = cls.MUL_TABLE[scalar]
        if scratch is not None and scratch.shape == array.shape:
            np.take(row, array, out=scratch)
            np.bitwise_xor(accumulator, scratch, out=accumulator)
        else:
            np.bitwise_xor(accumulator, row[array], out=accumulator)
        return accumulator

    # ------------------------------------------------------------------
    # Reference kernels: the seed exp/log implementation, kept in-tree
    # as the bit-exactness oracle for the table kernels above.

    @classmethod
    def mul_array_reference(cls, array, scalar):
        """Masked exp/log array multiply (seed implementation, oracle)."""
        if scalar == 0:
            return np.zeros_like(array)
        if scalar == 1:
            return array.copy()
        log_scalar = int(cls.LOG[scalar])
        result = np.zeros_like(array)
        nonzero = array != 0
        result[nonzero] = cls.EXP[cls.LOG[array[nonzero]] + log_scalar]
        return result

    @classmethod
    def addmul_array_reference(cls, accumulator, array, scalar):
        """Seed addmul: allocates a product temporary per call (oracle)."""
        if scalar == 0:
            return accumulator
        accumulator ^= cls.mul_array_reference(array, scalar)
        return accumulator

    @classmethod
    def matmul(cls, matrix_a, matrix_b):
        """Multiply two GF(256) matrices given as lists of row lists."""
        rows = len(matrix_a)
        inner = len(matrix_b)
        cols = len(matrix_b[0])
        result = [[0] * cols for _ in range(rows)]
        for i in range(rows):
            row_a = matrix_a[i]
            row_out = result[i]
            for k in range(inner):
                coefficient = row_a[k]
                if coefficient == 0:
                    continue
                row_b = matrix_b[k]
                for j in range(cols):
                    if row_b[j]:
                        row_out[j] ^= cls.mul(coefficient, row_b[j])
        return result

    @classmethod
    def matinv(cls, matrix):
        """Invert a square GF(256) matrix via Gauss–Jordan elimination.

        Raises ValueError when the matrix is singular.
        """
        size = len(matrix)
        work = [list(row) + [0] * size for row in matrix]
        for i in range(size):
            work[i][size + i] = 1
        for column in range(size):
            pivot_row = None
            for row in range(column, size):
                if work[row][column]:
                    pivot_row = row
                    break
            if pivot_row is None:
                raise ValueError("singular matrix over GF(256)")
            work[column], work[pivot_row] = work[pivot_row], work[column]
            pivot_inv = cls.inv(work[column][column])
            work[column] = [cls.mul(entry, pivot_inv) for entry in work[column]]
            for row in range(size):
                if row == column or not work[row][column]:
                    continue
                factor = work[row][column]
                work[row] = [
                    entry ^ cls.mul(factor, pivot_entry)
                    for entry, pivot_entry in zip(work[row], work[column])
                ]
        return [row[size:] for row in work]
