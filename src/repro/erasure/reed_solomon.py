"""Systematic Reed–Solomon codec over GF(256).

Purity uses 7+2 encoding: each segment stripes 7 data shards and 2
parity shards across a write group of drives, tolerating any two drive
losses (Section 4.2). The codec is general in (k, m) with k + m <= 255,
so benchmarks can also explore other geometries.

Construction: start from a (k+m) x k Vandermonde matrix, normalize the
top k x k block to the identity (so encoding is systematic — data
shards pass through unchanged), and keep the bottom m rows as the
parity-generating matrix. Reconstruction inverts the square submatrix
of surviving rows.

Allocation discipline: encode gathers through the GF(256) full product
table into per-stripe scratch buffers owned by the codec, so
steady-state encoding allocates nothing. ``encode_stripes`` is the
batched entry point the segio flush path uses — it takes a (k, L)
uint8 matrix view of the payload and returns an (m, L) parity view
without ever materializing per-shard byte strings. ``encode_reference``
preserves the seed per-row implementation as the correctness oracle.
"""

import numpy as np

from repro.erasure.gf256 import GF256
from repro.errors import UncorrectableError
from repro.perf import PERF


def _vandermonde(rows, cols):
    return [[GF256.pow(row, col) for col in range(cols)] for row in range(rows)]


def _systematic_matrix(k, m):
    vandermonde = _vandermonde(k + m, k)
    top = [row[:] for row in vandermonde[:k]]
    top_inverse = GF256.matinv(top)
    return GF256.matmul(vandermonde, top_inverse)


class ReedSolomon:
    """Encode/decode fixed-size shard stripes with k data + m parity."""

    def __init__(self, data_shards, parity_shards):
        if data_shards <= 0 or parity_shards <= 0:
            raise ValueError("shard counts must be positive")
        if data_shards + parity_shards > 255:
            raise ValueError("k + m must be <= 255 for GF(256)")
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        self.total_shards = data_shards + parity_shards
        matrix = _systematic_matrix(data_shards, parity_shards)
        self._matrix = matrix
        self._parity_rows = matrix[data_shards:]
        # Per-stripe scratch, lazily sized to the shard length and then
        # reused: one gather buffer plus the parity accumulators.
        self._scratch = np.empty(0, dtype=np.uint8)
        self._parity_buffer = np.empty((parity_shards, 0), dtype=np.uint8)

    def _buffers(self, length):
        if self._scratch.shape[0] != length:
            self._scratch = np.empty(length, dtype=np.uint8)
            self._parity_buffer = np.empty(
                (self.parity_shards, length), dtype=np.uint8
            )
        return self._scratch, self._parity_buffer

    def _encode_arrays(self, arrays, length):
        """Parity for k uint8 arrays; returns the codec-owned (m, L) buffer."""
        scratch, parity = self._buffers(length)
        table = GF256.MUL_TABLE
        for index, row in enumerate(self._parity_rows):
            out = parity[index]
            # Rows 0/1 of the product table are zero/identity, so the
            # first term is always a plain gather straight into ``out``.
            np.take(table[row[0]], arrays[0], out=out)
            for coefficient, array in zip(row[1:], arrays[1:]):
                GF256.addmul_array(out, array, coefficient, scratch=scratch)
        return parity

    def encode(self, shards):
        """Compute parity for ``k`` equal-length data shards.

        Returns a list of ``m`` parity shards as bytes.
        """
        self._check_data_shards(shards)
        length = len(shards[0])
        with PERF.timer("rs-encode"):
            arrays = [np.frombuffer(shard, dtype=np.uint8) for shard in shards]
            parity = self._encode_arrays(arrays, length)
            return [row.tobytes() for row in parity]

    def encode_stripes(self, data_matrix):
        """Batched encode: (k, L) uint8 matrix in, (m, L) parity out.

        The input rows are the data shards (a zero-copy reshape of a
        segio payload works directly). The returned array is the
        codec's reusable parity buffer — consume it (copy/``tobytes``)
        before the next encode call.
        """
        matrix = np.asarray(data_matrix, dtype=np.uint8)
        if matrix.ndim != 2 or matrix.shape[0] != self.data_shards:
            raise ValueError(
                "expected a (%d, L) data matrix, got shape %r"
                % (self.data_shards, getattr(matrix, "shape", None))
            )
        with PERF.timer("rs-encode"):
            return self._encode_arrays(list(matrix), matrix.shape[1])

    def encode_reference(self, shards):
        """Seed implementation (allocating exp/log kernels): the oracle."""
        self._check_data_shards(shards)
        length = len(shards[0])
        arrays = [np.frombuffer(shard, dtype=np.uint8) for shard in shards]
        parity = []
        for row in self._parity_rows:
            accumulator = np.zeros(length, dtype=np.uint8)
            for coefficient, array in zip(row, arrays):
                GF256.addmul_array_reference(accumulator, array, coefficient)
            parity.append(accumulator.tobytes())
        return parity

    def _check_data_shards(self, shards):
        if len(shards) != self.data_shards:
            raise ValueError(
                "expected %d data shards, got %d" % (self.data_shards, len(shards))
            )
        lengths = {len(shard) for shard in shards}
        if len(lengths) != 1:
            raise ValueError("data shards must all be the same length")

    def reconstruct(self, shards):
        """Fill in missing shards. ``shards`` has k+m entries, None = lost.

        Returns the complete list (data + parity), all as bytes. Raises
        :class:`UncorrectableError` if more than ``m`` shards are
        missing.
        """
        if len(shards) != self.total_shards:
            raise ValueError(
                "expected %d shard slots, got %d" % (self.total_shards, len(shards))
            )
        present = [index for index, shard in enumerate(shards) if shard is not None]
        missing = [index for index, shard in enumerate(shards) if shard is None]
        if not missing:
            return [bytes(shard) for shard in shards]
        if len(missing) > self.parity_shards:
            raise UncorrectableError(
                "lost %d shards, code tolerates %d" % (len(missing), self.parity_shards)
            )
        lengths = {len(shards[index]) for index in present}
        if len(lengths) != 1:
            raise ValueError("present shards must all be the same length")
        length = lengths.pop()
        # Solve for the data shards from any k surviving rows, then
        # re-encode whatever parity was lost.
        chosen = present[: self.data_shards]
        if len(chosen) < self.data_shards:
            raise UncorrectableError(
                "only %d shards survive, need %d" % (len(chosen), self.data_shards)
            )
        with PERF.timer("rs-decode"):
            submatrix = [self._matrix[index] for index in chosen]
            inverse = GF256.matinv(submatrix)
            survivor_arrays = [
                np.frombuffer(shards[index], dtype=np.uint8) for index in chosen
            ]
            scratch, _parity = self._buffers(length)
            data_arrays = []
            for row in inverse:
                accumulator = np.zeros(length, dtype=np.uint8)
                for coefficient, array in zip(row, survivor_arrays):
                    GF256.addmul_array(
                        accumulator, array, coefficient, scratch=scratch
                    )
                data_arrays.append(accumulator)
            result = list(shards)
            for index in range(self.data_shards):
                result[index] = data_arrays[index].tobytes()
            for index in missing:
                if index < self.data_shards:
                    continue
                row = self._matrix[index]
                accumulator = np.zeros(length, dtype=np.uint8)
                for coefficient, array in zip(row, data_arrays):
                    GF256.addmul_array(
                        accumulator, array, coefficient, scratch=scratch
                    )
                result[index] = accumulator.tobytes()
        return [bytes(shard) for shard in result]

    def verify(self, shards):
        """True if a complete stripe's parity matches its data."""
        if any(shard is None for shard in shards):
            raise ValueError("verify requires a complete stripe")
        data = [bytes(shard) for shard in shards[: self.data_shards]]
        expected_parity = self.encode(data)
        actual_parity = [bytes(shard) for shard in shards[self.data_shards:]]
        return expected_parity == actual_parity
