"""Pure worker functions shipped to the process pool.

Everything here is a deterministic function of its arguments: no
randomness, no wall clock, no sim state (the ``no-unseeded-worker``
lint rule enforces the first two statically). Workers are plain
module-level functions so the pool pickles them by reference, and each
keeps a per-process cache of its heavy construction (zlib compressor,
Reed-Solomon codec) keyed by parameters — forked workers rebuild them
once, then reuse.

A worker takes a *chunk* (a list of items) and returns one result per
item, in order. The executor's ordered merge relies on exactly that.
"""

import numpy as np

from repro.compression.cblock import build_cblock
from repro.compression.engine import ZlibCompressor
from repro.erasure.reed_solomon import ReedSolomon


def pure_worker(func):
    """Mark ``func`` as safe to ship to the worker pool.

    The marker is a contract: the function depends only on its
    arguments (``ParallelExecutor.map`` refuses undecorated callables
    at runtime, and the ``no-unseeded-worker`` lint rule bans
    randomness and wall-clock reads inside decorated functions).
    """
    func.__pure_worker__ = True
    return func


#: Per-process caches: zlib level -> compressor, (k, m) -> codec.
_COMPRESSORS = {}
_CODECS = {}


def _compressor(level):
    compressor = _COMPRESSORS.get(level)
    if compressor is None:
        # lint: allow[worker-transitive-purity] per-process memo of a deterministic constructor keyed by args; cached or fresh, same bytes
        compressor = _COMPRESSORS[level] = ZlibCompressor(level)
    return compressor


def _codec(data_shards, parity_shards):
    key = (data_shards, parity_shards)
    codec = _CODECS.get(key)
    if codec is None:
        # lint: allow[worker-transitive-purity] per-process memo of a deterministic constructor keyed by args; cached or fresh, same bytes
        codec = _CODECS[key] = ReedSolomon(data_shards, parity_shards)
    return codec


@pure_worker
def compress_cblocks(items):
    """Compress whole cblocks: (data, zlib_level) -> (blob, codec_id).

    Produces exactly the bytes :func:`repro.compression.cblock.
    build_cblock` would — the datapath adopts a speculative blob only
    when dedup left the whole chunk unique, so this *must* stay
    byte-identical to the serial path.
    """
    return [build_cblock(data, _compressor(level)) for data, level in items]


@pure_worker
def encode_rs_columns(items):
    """Encode column chunks: (k, m, data_bytes, cols) -> parity bytes.

    ``data_bytes`` is a row-major (k, cols) uint8 matrix slice. Parity
    columns depend only on the matching data columns, so chunk results
    concatenate byte-identically to a whole-matrix encode.
    """
    results = []
    for data_shards, parity_shards, data, cols in items:
        matrix = np.frombuffer(data, dtype=np.uint8).reshape(data_shards, cols)
        parity = _codec(data_shards, parity_shards).encode_stripes(matrix)
        results.append(parity.tobytes())
    return results


@pure_worker
def verify_stripes(items):
    """Verify complete stripes: (k, m, shards) -> bool per stripe."""
    return [
        _codec(data_shards, parity_shards).verify(list(shards))
        for data_shards, parity_shards, shards in items
    ]
