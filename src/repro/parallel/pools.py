"""Buffer pools: recycled scratch buffers for the flush and read paths.

Every ``OpenSegio`` used to allocate a fresh multi-hundred-KiB payload
bytearray, and every ``DataPath.read`` a fresh paint buffer — pure
allocator churn, since both are dropped the moment the segio flushes or
the read returns. A :class:`BufferPool` keeps a small size-classed free
list instead, with hit/miss counters wired into the obs metrics
registry (``pool.segio.*`` / ``pool.read.*``) so the bench gate can
watch the flush path's allocation rate.

Acquire returns a **zeroed** buffer: the segio payload contract is that
unwritten gap bytes read as zeros, and the read path's paint buffer
must start zeroed for unmapped ranges — recycling must be
indistinguishable from fresh allocation, byte for byte. Zeroing is one
``memcpy`` from a cached template, which is the whole point: reuse the
allocation, not the contents.

Under ``REPRO_SANITIZE=1`` (see :mod:`repro.sanitize`) every pool
carries a :class:`~repro.sanitize.BufferSentry`: released buffers are
poison-filled and double-acquire/double-release/use-after-release all
raise at the moment of detection. The sentry decision is made once at
construction, so the unsanitized fast path pays one ``is None`` check.
"""

from repro import sanitize


class BufferPool:
    """Size-classed free list of reusable bytearrays."""

    def __init__(self, max_buffers=8, metrics=None, name="pool"):
        self.name = name
        self.max_buffers = max(0, int(max_buffers))
        self._free = {}   # size -> [bytearray, ...]
        self._zeros = {}  # size -> immutable zero template for re-zeroing
        self._held = 0
        self.hits = 0
        self.misses = 0
        self.discards = 0
        self._hit_counter = None
        self._miss_counter = None
        self._sentry = sanitize.BufferSentry(name) if sanitize.enabled() \
            else None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics):
        """Register hit/miss counters on an obs metrics registry."""
        self._hit_counter = metrics.counter("%s.hits" % self.name)
        self._miss_counter = metrics.counter("%s.misses" % self.name)
        return self

    def acquire(self, size):
        """A zeroed bytearray of exactly ``size`` bytes."""
        stack = self._free.get(size)
        if stack:
            buffer = stack.pop()
            self._held -= 1
            if self._sentry is not None:
                # Poison must be verified BEFORE re-zeroing erases the
                # evidence of any write through a stale reference.
                self._sentry.on_recycle(buffer)
            zeros = self._zeros.get(size)
            if zeros is None:
                zeros = self._zeros[size] = bytes(size)
            buffer[:] = zeros
            self.hits += 1
            if self._hit_counter is not None:
                self._hit_counter.inc()
            return buffer
        self.misses += 1
        if self._miss_counter is not None:
            self._miss_counter.inc()
        buffer = bytearray(size)
        if self._sentry is not None:
            self._sentry.on_fresh(buffer)
        return buffer

    def release(self, buffer):
        """Return ``buffer`` to the pool; full pools drop it instead."""
        if not isinstance(buffer, bytearray) or not len(buffer):
            return
        if self._sentry is not None:
            # Track (and poison) even buffers the full pool drops below:
            # releasing twice is a caller bug either way.
            self._sentry.on_release(buffer)
        if self._held >= self.max_buffers:
            self.discards += 1
            return
        self._free.setdefault(len(buffer), []).append(buffer)
        self._held += 1

    @property
    def allocations(self):
        """Fresh allocations (pool misses) since construction."""
        return self.misses

    @property
    def hit_rate(self):
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def counters(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "discards": self.discards,
            "held": self._held,
        }
