"""repro.parallel: deterministic fan-out for CPU-bound pipeline stages.

The executor partitions order-independent work (cblock compression, RS
column encode, scrub verification) into worker-count-independent chunks,
ships them to a shared process pool (or runs them serially at
``workers=0``), and merges results in input order — so same-seed output
is byte-identical at any worker count. :class:`BufferPool` rounds out
the perf story by recycling the flush/read scratch buffers.
"""

from repro.parallel.executor import (
    MODELED_WORKER_COUNTS,
    ParallelExecutor,
    StageStats,
    resolve_workers,
)
from repro.parallel.names import STAGE_NAMES
from repro.parallel.pools import BufferPool
from repro.parallel.workers import (
    compress_cblocks,
    encode_rs_columns,
    pure_worker,
    verify_stripes,
)

__all__ = [
    "MODELED_WORKER_COUNTS",
    "STAGE_NAMES",
    "BufferPool",
    "ParallelExecutor",
    "StageStats",
    "compress_cblocks",
    "encode_rs_columns",
    "pure_worker",
    "resolve_workers",
    "verify_stripes",
]
