"""The central registry of parallel stage names.

Every stage a call site fans out through
:meth:`repro.parallel.ParallelExecutor.map` must appear here, exactly
like span/metric names in :mod:`repro.obs.names`. The
``name-registry-sync`` lint rule resolves the stage literal at
``<executor>.map("...")`` call sites against this set, so a typo forks
a stage name in a report instead of failing — unless it fails lint
first, which is the point.

The registry is data, not behaviour: nothing imports it on the hot
path.
"""

#: Stage names, one per parallelized pipeline stage.
STAGE_NAMES = frozenset({
    # speculative per-cblock zlib compression (datapath write path)
    "parallel.compress",
    # column-partitioned Reed-Solomon encode (segio flush path)
    "parallel.rs-encode",
    # batched stripe parity verification (scrubber)
    "parallel.scrub-verify",
})
