"""Deterministic work-partitioning executor (the ``repro.parallel`` core).

Purity's controllers fan inline reduction and RAID-3D encode out over
many cores; the reproduction does the same for its three CPU-bound,
order-independent stages (speculative cblock compression, column-
partitioned Reed-Solomon encode, batched stripe scrub verification)
without giving up the determinism contract: same seed, byte-identical
output, at **any** worker count.

The determinism argument has three legs:

* **Worker-count-independent partitioning.** Inputs are chunked by a
  fixed item count, never by the number of workers, so the task list is
  a pure function of the input.
* **Pure workers.** Functions shipped to the pool carry the
  ``@pure_worker`` marker and depend only on their arguments — the
  ``no-unseeded-worker`` lint rule bans randomness and wall clock
  inside them, and :meth:`ParallelExecutor.map` refuses undecorated
  callables at runtime.
* **Ordered merge.** Chunk results are joined in submission order, so
  the caller observes exactly the sequence the serial loop would have
  produced. The sim clock never ticks inside a map; results are applied
  to the sim timeline only after the join.

``workers=0`` (the default) runs the same chunk plan serially
in-process — same spans, same metrics, same bytes. The pool itself is
process-global and lazy: one ``ProcessPoolExecutor`` per worker count,
shared by every array in the process, shut down atexit. If the pool
cannot be used at all (sandboxed fork, fd exhaustion, dead workers) the
executor falls back to the serial path permanently and counts the event
in ``perf_report``.

Because this repo simulates time, wall-clock speedup on a laptop is
not the gated signal. The executor also keeps a deterministic
critical-path cost model per stage: chunk costs round-robin onto
``MODELED_WORKER_COUNTS`` hypothetical workers, and
``modeled_speedup(w) = total_cost / critical_path(w)``. That number is
a pure function of the workload, identical on every machine, and is
what ``bench_parallel`` gates.
"""

import atexit
import concurrent.futures
import multiprocessing
import os

import numpy as np

from repro import sanitize
from repro.parallel.names import STAGE_NAMES
from repro.parallel.workers import encode_rs_columns
from repro.perf import PERF

#: Worker counts the critical-path cost model tracks.
MODELED_WORKER_COUNTS = (1, 2, 4, 8)


def resolve_workers(workers=None):
    """Effective worker count: explicit value, else ``$REPRO_WORKERS``,
    else 0 (serial)."""
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        if not raw:
            return 0
        workers = raw
    count = int(workers)
    if count < 0:
        raise ValueError("workers must be >= 0, got %d" % count)
    return count


# One shared pool per worker count; arrays come and go, pools persist.
_POOLS = {}


def _process_pool(workers):
    pool = _POOLS.get(workers)
    if pool is None:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(method),
        )
        _POOLS[workers] = pool
    return pool


def _discard_pool(workers):
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def _shutdown_pools():
    for workers in list(_POOLS):
        _discard_pool(workers)


atexit.register(_shutdown_pools)


class StageStats:
    """Deterministic per-stage accounting (map/item/chunk counts plus the
    critical-path cost model)."""

    __slots__ = ("maps", "items", "chunks", "cost", "critical")

    def __init__(self):
        self.maps = 0
        self.items = 0
        self.chunks = 0
        self.cost = 0
        self.critical = {count: 0 for count in MODELED_WORKER_COUNTS}

    def note(self, item_count, chunk_costs):
        self.maps += 1
        self.items += item_count
        self.chunks += len(chunk_costs)
        self.cost += sum(chunk_costs)
        for count in MODELED_WORKER_COUNTS:
            loads = [0] * count
            for index, chunk_cost in enumerate(chunk_costs):
                loads[index % count] += chunk_cost
            self.critical[count] += max(loads)

    def modeled_speedup(self, count):
        critical = self.critical.get(count, 0)
        if not critical:
            return 1.0
        return self.cost / critical


class ParallelExecutor:
    """Ordered parallel map over pure workers, serial at ``workers=0``."""

    def __init__(self, workers=None, chunk_items=2, min_items=4,
                 rs_chunk_cols=128 * 1024):
        self.workers = resolve_workers(workers)
        self.chunk_items = max(1, int(chunk_items))
        self.min_items = max(1, int(min_items))
        self.rs_chunk_cols = max(1, int(rs_chunk_cols))
        self.obs = None  # wired by the array
        self._stats = {}
        self._broken = False
        self._sanitize = sanitize.enabled()

    # -- partition plan (worker-count independent) ----------------------

    def partition(self, count, chunk_items=None):
        """Fixed-size chunk bounds ``[(lo, hi), ...]`` covering ``count``
        items. Depends only on the item count — never on workers."""
        size = chunk_items if chunk_items else self.chunk_items
        return [(lo, min(lo + size, count)) for lo in range(0, count, size)]

    def should_speculate(self, item_count):
        """Whether speculative fan-out is worth the shipping cost."""
        return (self.workers > 0 and not self._broken
                and item_count >= self.min_items)

    # -- stats ----------------------------------------------------------

    def stage_stats(self, stage):
        stats = self._stats.get(stage)
        if stats is None:
            stats = self._stats[stage] = StageStats()
        return stats

    def stages(self):
        return sorted(self._stats)

    def modeled_speedup(self, count, stages=None):
        """Aggregate critical-path speedup at ``count`` modeled workers
        across ``stages`` (default: every stage seen so far)."""
        names = self.stages() if stages is None else stages
        cost = 0
        critical = 0
        for name in names:
            stats = self._stats.get(name)
            if stats is None:
                continue
            cost += stats.cost
            critical += stats.critical.get(count, 0)
        if not critical:
            return 1.0
        return cost / critical

    # -- execution ------------------------------------------------------

    def map(self, stage, func, items, chunk_items=None, costs=None,
            record=True):
        """Run ``func`` over fixed-size chunks of ``items``; results merge
        back flattened, in input order.

        ``costs`` (optional, one int per item) feeds the critical-path
        model; it defaults to one unit per item. ``record=False`` skips
        spans and metrics counters — for speculative work that must stay
        invisible in traces so byte-identity holds across worker counts.
        """
        if stage not in STAGE_NAMES:
            raise ValueError(
                "unknown parallel stage %r; register it in "
                "repro.parallel.names.STAGE_NAMES" % (stage,))
        if not getattr(func, "__pure_worker__", False):
            raise TypeError(
                "%r is not marked @pure_worker; refusing to ship it to "
                "the pool" % (func,))
        if not isinstance(items, list):
            items = list(items)
        bounds = self.partition(len(items), chunk_items)
        if costs is None:
            chunk_costs = [hi - lo for lo, hi in bounds]
        else:
            chunk_costs = [sum(costs[lo:hi]) for lo, hi in bounds]
        self.stage_stats(stage).note(len(items), chunk_costs)
        obs = self.obs if record else None
        span = None
        if obs is not None and obs.tracing:
            span = obs.begin("parallel.map", stage=stage, items=len(items),
                             chunks=len(bounds))
        chunk_results = self._run_chunks(func, [items[lo:hi]
                                                for lo, hi in bounds])
        merged = []
        for chunk_result in chunk_results:
            merged.extend(chunk_result)
        if span is not None:
            obs.end(span)
        if obs is not None:
            obs.metrics.counter("parallel.maps").inc()
            obs.metrics.counter("parallel.items").inc(len(items))
            obs.metrics.counter("parallel.chunks").inc(len(bounds))
        return merged

    def rs_encode(self, codec, matrix):
        """Column-partitioned ``encode_stripes``: (k, L) in, (m, L) out.

        Parity columns depend only on the matching data columns, so the
        matrix splits into fixed-width column chunks that encode
        independently and concatenate byte-identically to the serial
        result. At ``workers=0`` (or a single chunk) the codec runs once
        over the whole matrix — same bytes, no slice copies — while the
        partition plan, span, and counters stay identical so traces
        match across worker counts.
        """
        stage = "parallel.rs-encode"
        data_shards = int(matrix.shape[0])
        cols = int(matrix.shape[1])
        bounds = self.partition(cols, self.rs_chunk_cols)
        chunk_costs = [(hi - lo) * data_shards for lo, hi in bounds]
        self.stage_stats(stage).note(len(bounds), chunk_costs)
        obs = self.obs
        span = None
        if obs is not None and obs.tracing:
            span = obs.begin("parallel.map", stage=stage, items=len(bounds),
                             chunks=len(bounds), cols=cols)
        if self.workers == 0 or self._broken or len(bounds) < 2:
            parity = codec.encode_stripes(matrix)
        else:
            chunks = [[(data_shards, codec.parity_shards,
                        matrix[:, lo:hi].tobytes(), hi - lo)]
                      for lo, hi in bounds]
            chunk_results = self._run_chunks(encode_rs_columns, chunks)
            parity = np.empty((codec.parity_shards, cols), dtype=np.uint8)
            for (lo, hi), chunk_result in zip(bounds, chunk_results):
                piece = np.frombuffer(chunk_result[0], dtype=np.uint8)
                parity[:, lo:hi] = piece.reshape(codec.parity_shards,
                                                 hi - lo)
        if span is not None:
            obs.end(span)
        if obs is not None:
            obs.metrics.counter("parallel.maps").inc()
            obs.metrics.counter("parallel.items").inc(len(bounds))
            obs.metrics.counter("parallel.chunks").inc(len(bounds))
        return parity

    def _run_chunks(self, func, chunks):
        """Execute chunks, returning per-chunk results in submission
        order. Serial and pooled paths are interchangeable by
        construction; a broken pool degrades to serial for good."""
        if self.workers == 0 or self._broken or len(chunks) < 2:
            PERF.incr("parallel-serial-chunks", len(chunks))
            if self._sanitize:
                # Enforce the pool's pickle-boundary semantics on the
                # serial path: no input mutation, no result aliasing.
                return [sanitize.run_chunk_checked(func, chunk)
                        for chunk in chunks]
            return [func(chunk) for chunk in chunks]
        try:
            pool = _process_pool(self.workers)
            with PERF.timer("parallel-map"):
                futures = [pool.submit(func, chunk) for chunk in chunks]
                results = [future.result() for future in futures]
        except (OSError, concurrent.futures.process.BrokenProcessPool) as exc:
            # Pool unusable in this environment — results are identical
            # by construction on the serial path, only wall time changes.
            # The degradation is permanent, so it must also be loud:
            # one counter bump and one warning event, exactly once per
            # executor (every later map short-circuits on _broken).
            self._broken = True
            PERF.incr("parallel-pool-fallback")
            _discard_pool(self.workers)
            obs = self.obs
            if obs is not None:
                obs.metrics.counter("parallel.pool_broken").inc()
                if obs.tracing:
                    obs.event(
                        "parallel.pool_broken",
                        workers=self.workers,
                        chunks=len(chunks),
                        error=type(exc).__name__,
                    )
            return [func(chunk) for chunk in chunks]
        PERF.incr("parallel-pool-chunks", len(chunks))
        return results
