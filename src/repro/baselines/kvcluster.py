"""Scale-out disk key-value cluster model (Table 2, Section 2.3).

The YCSB study the paper cites found disk-backed KV stores topping out
around 1,600 ops/s per machine. This model derives that figure from
first principles: a node's throughput is bounded by its spindles'
random IOPS, with replication multiplying the write cost and a
coordination tax on every operation. A cluster aggregates nodes with
less-than-linear scaling.
"""

import math

from dataclasses import dataclass

from repro.baselines.disk import DiskTiming


@dataclass(frozen=True)
class KVNodeConfig:
    """One commodity KV-store node circa 2010-2014."""

    disks_per_node: int = 6
    replication_factor: int = 3
    #: Disk ops consumed per logical read (index probe + data read,
    #: partially absorbed by caches).
    read_io_cost: float = 1.0
    #: Disk ops per logical write on each replica (log + data + index).
    write_io_cost: float = 2.0
    #: Fraction of throughput lost to coordination/compaction overheads.
    coordination_tax: float = 0.25
    memory_hit_rate: float = 0.50


class KVNode:
    """Analytic per-node throughput model."""

    def __init__(self, config=None, timing=None):
        self.config = config or KVNodeConfig()
        self.timing = timing or DiskTiming()

    def ops_per_second(self, read_fraction=0.95):
        """Peak logical ops/s this node sustains at a given read mix."""
        config = self.config
        spindle_iops = self.timing.random_iops * config.disks_per_node
        read_cost = config.read_io_cost * (1.0 - config.memory_hit_rate)
        write_cost = config.write_io_cost  # replica writes land elsewhere
        io_per_op = read_fraction * read_cost + (1 - read_fraction) * write_cost
        raw = spindle_iops / io_per_op
        return raw * (1.0 - config.coordination_tax)


class KVCluster:
    """A cluster of KV nodes with replication and scaling loss."""

    def __init__(self, num_nodes, node=None, scaling_efficiency=0.85):
        if num_nodes < 1:
            raise ValueError("clusters need at least one node")
        self.num_nodes = num_nodes
        self.node = node or KVNode()
        self.scaling_efficiency = scaling_efficiency

    def ops_per_second(self, read_fraction=0.95):
        """Aggregate logical throughput.

        Writes fan out to ``replication_factor`` nodes, so the effective
        node count for write work shrinks; coordination loses a further
        fraction per decade of cluster growth.
        """
        per_node = self.node.ops_per_second(read_fraction)
        replication = self.node.config.replication_factor
        write_fraction = 1.0 - read_fraction
        effective_nodes = self.num_nodes / (
            read_fraction + write_fraction * replication
        )
        decades = math.log10(self.num_nodes) if self.num_nodes > 1 else 0.0
        efficiency = self.scaling_efficiency ** decades
        return per_node * effective_nodes * efficiency

    def nodes_for_throughput(self, target_ops, read_fraction=0.95):
        """Smallest cluster sustaining ``target_ops`` logical ops/s."""
        single = KVCluster(1, self.node, self.scaling_efficiency)
        per_node = single.ops_per_second(read_fraction)
        nodes = 1
        while KVCluster(nodes, self.node, self.scaling_efficiency).ops_per_second(
            read_fraction
        ) < target_ops:
            nodes = max(nodes + 1, int(target_ops / per_node))
            if nodes > 10 ** 6:
                raise ValueError("target throughput unreachable")
        return nodes
