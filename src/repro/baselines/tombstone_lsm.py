"""Tombstone-based LSM deletion: the baseline elision replaces.

Section 4.10: most LSM trees delete by inserting per-key tombstones.
Tombstones must be keyed like the data, so dropping a snapshot costs
one tombstone per cblock, and the space of both the data *and* the
tombstones is only reclaimed once compaction carries the tombstone to
the oldest level. This implementation reuses the pyramid's patch
machinery so the comparison against elision isolates exactly the
deletion mechanism.
"""

from repro.pyramid.patch import Patch, merge_patches
from repro.pyramid.tuples import Fact

#: Sentinel value tuple marking a tombstone fact.
TOMBSTONE = ("__tombstone__",)


class TombstoneLSM:
    """An LSM index whose deletes are per-key tombstones."""

    def __init__(self, name="tombstone", fanout=8):
        self.name = name
        self.fanout = fanout
        self._memtable = []
        self._patches = []  # newest first
        self._seqno = 0
        self.tombstones_written = 0

    def _next_seq(self):
        self._seqno += 1
        return self._seqno

    def insert(self, key, value):
        """Insert one record."""
        self._memtable.append(Fact(key=tuple(key), seqno=self._next_seq(),
                                   value=tuple(value)))

    def delete(self, key):
        """Delete one key by writing a tombstone record."""
        self._memtable.append(
            Fact(key=tuple(key), seqno=self._next_seq(), value=TOMBSTONE)
        )
        self.tombstones_written += 1

    def delete_range(self, keys):
        """Delete many keys: one tombstone each (the elision contrast)."""
        for key in keys:
            self.delete(key)

    def seal(self):
        """Freeze the memtable into a patch."""
        if not self._memtable:
            return
        self._patches.insert(0, Patch(self._memtable))
        self._memtable = []

    def get(self, key):
        """Latest value for ``key``, or None (deleted or absent)."""
        key = tuple(key)
        best = None
        for fact in self._memtable:
            if fact.key == key and (best is None or fact.seqno > best.seqno):
                best = fact
        for patch in self._patches:
            candidate = patch.lookup_latest(key)
            if candidate is not None and (best is None or candidate.seqno > best.seqno):
                best = candidate
        if best is None or best.value == TOMBSTONE:
            return None
        return best.value

    def stored_fact_count(self):
        """Physical records held, tombstones included."""
        return len(self._memtable) + sum(len(patch) for patch in self._patches)

    def live_key_count(self):
        """Keys that resolve to a value."""
        keys = set()
        for fact in self._memtable:
            keys.add(fact.key)
        for patch in self._patches:
            for fact in patch:
                keys.add(fact.key)
        return sum(1 for key in keys if self.get(key) is not None)

    def compact_once(self):
        """Merge two adjacent patches (one compaction step).

        Tombstones survive partial merges: the deleted key may still
        have older versions below, so the tombstone cannot be dropped
        until it reaches the oldest level.
        """
        if len(self._patches) < 2:
            return False
        merged = merge_patches(self._patches[-2:])
        # Drop shadowed versions (keep only the newest fact per key) but
        # keep tombstones unless this is the oldest level.
        newest = {}
        for fact in merged:
            current = newest.get(fact.key)
            if current is None or fact.seqno > current.seqno:
                newest[fact.key] = fact
        is_oldest_level = len(self._patches) == 2
        survivors = [
            fact
            for fact in newest.values()
            if not (is_oldest_level and fact.value == TOMBSTONE)
        ]
        self._patches = self._patches[:-2] + [Patch(survivors)]
        return True

    def compact_fully(self):
        """Run compaction to a single level (tombstones finally freed)."""
        self.seal()
        steps = 0
        while self.compact_once():
            steps += 1
        return steps
