"""The enterprise disk array baseline (Table 1's right-hand column).

Models the classic midrange architecture Section 2.2 describes: a large
population of RAID-protected 15K disks behind a small number of
controllers, a battery-backed write cache that absorbs bursts, and a
DRAM read cache for the hottest blocks. Random reads that miss cache
pay disk mechanics; writes are acknowledged from the battery-backed RAM
until the destage backlog forces them to disk speed.
"""

from dataclasses import dataclass

from repro.baselines.disk import DiskTiming, SpinningDisk
from repro.sim.rand import RandomStream
from repro.units import GIB, MICROSECOND, MIB


@dataclass(frozen=True)
class DiskArrayConfig:
    """Construction parameters for the baseline array."""

    num_disks: int = 120
    disk_capacity: int = 600 * GIB
    raid_mirror_factor: int = 2  # RAID-10
    read_cache_hit_rate: float = 0.30
    write_cache_bytes: int = 8 * GIB
    cache_hit_latency: float = 250 * MICROSECOND
    #: Destage drains the write cache at this aggregate rate.
    destage_bandwidth: float = 600 * MIB
    seed: int = 0

    @property
    def usable_capacity(self):
        """Capacity after mirroring."""
        return self.num_disks * self.disk_capacity // self.raid_mirror_factor


class DiskArray:
    """A closed-loop service model of a RAID-10 disk array."""

    def __init__(self, clock, config=None, timing=None):
        self.clock = clock
        self.config = config or DiskArrayConfig()
        self.stream = RandomStream(self.config.seed).fork("diskarray")
        self.timing = timing or DiskTiming()
        self.disks = [
            SpinningDisk("disk%03d" % index, clock, self.stream.fork(index),
                         self.timing)
            for index in range(self.config.num_disks)
        ]
        self._write_cache_used = 0
        self._last_destage = 0.0
        self.reads = 0
        self.writes = 0
        self.cache_hits = 0

    def _pick_disk(self):
        return self.disks[self.stream.randint(0, len(self.disks) - 1)]

    def _destage(self):
        """Drain the write cache at the array's destage bandwidth."""
        now = self.clock.now
        elapsed = max(0.0, now - self._last_destage)
        drained = int(elapsed * self.config.destage_bandwidth)
        self._write_cache_used = max(0, self._write_cache_used - drained)
        self._last_destage = now

    def read(self, nbytes):
        """One random read; returns latency."""
        self.reads += 1
        if self.stream.random() < self.config.read_cache_hit_rate:
            self.cache_hits += 1
            return self.config.cache_hit_latency
        offset = self.stream.randint(0, 2 ** 40)
        return self._pick_disk().read(offset, nbytes)

    def write(self, nbytes):
        """One random write; returns (acknowledged) latency.

        Acknowledged from battery-backed RAM while the cache has room;
        once the destage backlog fills it, writes degrade to mirrored
        disk speed — the behaviour that caps sustained write IOPS.
        """
        self.writes += 1
        self._destage()
        mirrored = nbytes * self.config.raid_mirror_factor
        if self._write_cache_used + mirrored <= self.config.write_cache_bytes:
            self._write_cache_used += mirrored
            return self.config.cache_hit_latency
        # Cache full: pay mirrored disk writes (two spindles in parallel).
        offset = self.stream.randint(0, 2 ** 40)
        latency = max(
            self._pick_disk().write(offset, nbytes),
            self._pick_disk().write(offset, nbytes),
        )
        return latency

    def peak_random_iops(self, read_fraction=0.7):
        """Analytic ceiling: spindle mechanics over the population.

        Mirrored writes consume two disk operations; RAID-10 reads one.
        """
        per_disk = self.timing.random_iops
        write_cost = self.config.raid_mirror_factor
        denominator = read_fraction + (1 - read_fraction) * write_cost
        return per_disk * self.config.num_disks / denominator
