"""A 15K-RPM performance hard disk model.

The mechanical facts behind Section 2.2: a performance disk delivers a
few hundred IOPS, because every random access pays a seek plus half a
rotation. Sequential runs skip the seek. These service times drive the
disk-array baseline in Table 1 and the KV-node model in Table 2.
"""

from dataclasses import dataclass

from repro.units import MIB, MILLISECOND


@dataclass(frozen=True)
class DiskTiming:
    """Service-time parameters for a 15K-RPM enterprise disk."""

    average_seek: float = 3.4 * MILLISECOND
    rpm: int = 15000
    transfer_bandwidth: float = 180 * MIB

    @property
    def half_rotation(self):
        """Average rotational delay: half a revolution."""
        return 60.0 / self.rpm / 2.0

    @property
    def random_iops(self):
        """Peak random 4-sector IOPS the mechanics allow."""
        return 1.0 / (self.average_seek + self.half_rotation)


class SpinningDisk:
    """One mechanical disk: timing plus per-head position state."""

    def __init__(self, name, clock, stream, timing=None):
        self.name = name
        self.clock = clock
        self.stream = stream
        self.timing = timing or DiskTiming()
        self._busy_until = 0.0
        self._head_position = 0
        self.failed = False
        self.reads = 0
        self.writes = 0
        self.bytes_moved = 0

    def _service(self, offset, nbytes):
        sequential = offset == self._head_position
        service = nbytes / self.timing.transfer_bandwidth
        if not sequential:
            # Seek distance jitters the seek a little around the mean.
            service += self.timing.average_seek * self.stream.uniform(0.6, 1.4)
            service += self.timing.half_rotation * self.stream.uniform(0.0, 2.0) / 2
        self._head_position = offset + nbytes
        begin = max(self.clock.now, self._busy_until)
        self._busy_until = begin + service
        return self._busy_until - self.clock.now

    def read(self, offset, nbytes):
        """Charge one read; returns latency (data content not modelled)."""
        if self.failed:
            raise RuntimeError("disk %s failed" % self.name)
        self.reads += 1
        self.bytes_moved += nbytes
        return self._service(offset, nbytes)

    def write(self, offset, nbytes):
        """Charge one write; returns latency."""
        if self.failed:
            raise RuntimeError("disk %s failed" % self.name)
        self.writes += 1
        self.bytes_moved += nbytes
        return self._service(offset, nbytes)

    def busy(self, now=None):
        """True while an operation is still in flight."""
        if now is None:
            now = self.clock.now
        return now < self._busy_until
