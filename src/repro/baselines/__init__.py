"""Baseline systems the paper compares against.

Every comparison in the evaluation needs its counterpart implemented,
not assumed: the enterprise disk array behind Table 1
(:mod:`repro.baselines.diskarray`), the scale-out disk KV deployments
behind Table 2 (:mod:`repro.baselines.kvcluster`), tombstone-based LSM
deletion as the alternative to elision
(:mod:`repro.baselines.tombstone_lsm`), and the full-scan recovery that
frontier sets replaced (exposed as ``full_scan=True`` in
:mod:`repro.core.recovery`).
"""

from repro.baselines.disk import DiskTiming, SpinningDisk
from repro.baselines.diskarray import DiskArray, DiskArrayConfig
from repro.baselines.kvcluster import KVCluster, KVNode, KVNodeConfig
from repro.baselines.tombstone_lsm import TombstoneLSM

__all__ = [
    "SpinningDisk",
    "DiskTiming",
    "DiskArray",
    "DiskArrayConfig",
    "KVNode",
    "KVNodeConfig",
    "KVCluster",
    "TombstoneLSM",
]
