"""Table 2: scale-out deployments versus one FA-450.

The paper takes published scale figures for large disk-backed KV
deployments and divides by what one Purity FA-450 provides (200,000
32 KiB IOPS), concluding 100-250:1 machine consolidation ratios. This
module encodes the published deployment rows and regenerates the
arithmetic from (a) the paper's published array capability or (b) a
simulated one, plus a per-node throughput from the KV-node model.
"""

from dataclasses import dataclass

#: The FA-450's published capability used throughout Section 2.3.
FA450_OPS = 200_000


@dataclass(frozen=True)
class Deployment:
    """One published scale-out deployment row from Table 2."""

    name: str
    scale_ops: float  # peak/design-target logical ops per second
    scale_note: str
    year: int
    scope: str
    apps: int = None
    nodes: int = None

    def arrays_needed(self, array_ops=FA450_OPS):
        """FA-450 equivalents to serve the deployment's op rate."""
        return self.scale_ops / array_ops

    def apps_per_array(self, array_ops=FA450_OPS):
        """Applications one array could host, where the paper had data."""
        if self.apps is None:
            return None
        return self.apps / self.arrays_needed(array_ops)

    def nodes_per_array(self, array_ops=FA450_OPS):
        """Consolidation ratio: cluster machines replaced per array."""
        if self.nodes is None:
            return None
        return self.nodes / self.arrays_needed(array_ops)


#: Published rows (Section 2.3, Table 2). Spanner's row is expressed in
#: capacity, which the paper converts through node counts; we carry the
#: node count (10^3-10^4, taking the geometric middle) and a throughput
#: estimate from nodes x per-node ops.
PAPER_DEPLOYMENTS = [
    Deployment(
        name="PNUTS",
        scale_ops=1_600_000,
        scale_note="1.6M op/s (design target)",
        year=2010,
        scope="Data center",
        apps=1000,
        nodes=8 * 120,  # ~8 arrays' worth across ~120 nodes each
    ),
    Deployment(
        name="Spanner",
        scale_ops=3162 * 1600,  # ~10^3.5 nodes x ~1600 ops/s/node
        scale_note="1-10 PB (design target)",
        year=2010,
        scope="Data center",
        apps=300,
        nodes=3162,
    ),
    Deployment(
        name="S3",
        scale_ops=1_500_000,
        scale_note="1.5M op/s (peak, small objects)",
        year=2013,
        scope="Global",
        apps=None,
        nodes=None,
    ),
    Deployment(
        name="DynamoDB",
        scale_ops=2_600_000,
        scale_note="2.6M op/s (mean)",
        year=2014,
        scope="Region",
        apps=None,
        nodes=None,
    ),
]


def consolidation_table(array_ops=FA450_OPS, node_ops=None, deployments=None):
    """Regenerate Table 2.

    ``array_ops`` — one array's 32 KiB op rate (published or simulated).
    ``node_ops`` — per-node KV throughput; when given, node counts for
    throughput-specified deployments are re-derived from it rather than
    taken from the published row.

    Returns a list of row dicts.
    """
    deployments = deployments if deployments is not None else PAPER_DEPLOYMENTS
    rows = []
    for deployment in deployments:
        nodes = deployment.nodes
        if node_ops:
            nodes = max(1, round(deployment.scale_ops / node_ops))
        arrays = deployment.arrays_needed(array_ops)
        rows.append(
            {
                "service": deployment.name,
                "scale": deployment.scale_note,
                "year": deployment.year,
                "scope": deployment.scope,
                "apps": deployment.apps,
                "nodes": nodes,
                "fa450_equivalents": arrays,
                "apps_per_array": (
                    deployment.apps / arrays if deployment.apps else None
                ),
                "nodes_per_array": (nodes / arrays if nodes else None),
            }
        )
    return rows
