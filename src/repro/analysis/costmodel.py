"""Appliance economics: Table 1 and the five-minute rule (Figure 7).

Constants come from the paper itself (2014/2015 prices) so the
reproduction regenerates the paper's arithmetic; measured quantities
(IOPS, latencies) come from the simulations and are merged in by the
benchmark harness.
"""

import math
from dataclasses import dataclass, replace

from repro.units import GIB, KIB, TIB


@dataclass(frozen=True)
class ApplianceSpec:
    """One row-source for Table 1."""

    name: str
    peak_iops_32k: float
    latency_seconds: float
    usable_capacity_bytes: int
    rack_units: int
    installation_hours: float
    power_watts: float
    annual_power_cost: float
    price_per_gb: float

    @property
    def total_price(self):
        return self.price_per_gb * (self.usable_capacity_bytes / GIB)

    @property
    def iops_per_rack_unit(self):
        return self.peak_iops_32k / self.rack_units

    @property
    def iops_per_watt(self):
        return self.peak_iops_32k / self.power_watts

    @property
    def iops_per_dollar(self):
        return self.peak_iops_32k / self.total_price

    @property
    def price_per_iops(self):
        return self.total_price / self.peak_iops_32k


#: The paper's published Table 1 columns (Purity FA and EMC VNX-class).
PAPER_PURITY_ARRAY = ApplianceSpec(
    name="Purity",
    peak_iops_32k=200_000,
    latency_seconds=0.001,
    usable_capacity_bytes=40 * TIB,
    rack_units=8,
    installation_hours=4,
    power_watts=1240,
    annual_power_cost=13_034,
    price_per_gb=5.0,
)

PAPER_DISK_ARRAY = ApplianceSpec(
    name="Disk",
    peak_iops_32k=65_000,
    latency_seconds=0.005,
    usable_capacity_bytes=25 * TIB,
    rack_units=28,
    installation_hours=40,
    power_watts=3500,
    annual_power_cost=36_792,
    price_per_gb=18.0,
)


def build_table1(purity, disk):
    """Rows of Table 1: (metric, purity value, disk value, improvement).

    Improvement is expressed the way the paper does: the factor by
    which Purity is better (higher-is-better metrics divide one way,
    lower-is-better the other).
    """

    def row(metric, purity_value, disk_value, lower_is_better=False):
        if lower_is_better:
            improvement = disk_value / purity_value
        else:
            improvement = purity_value / disk_value
        return (metric, purity_value, disk_value, improvement)

    return [
        row("Peak IOPS @ 32 KiB", purity.peak_iops_32k, disk.peak_iops_32k),
        row("Latency (s)", purity.latency_seconds, disk.latency_seconds,
            lower_is_better=True),
        row("Usable capacity (bytes)", purity.usable_capacity_bytes,
            disk.usable_capacity_bytes),
        row("Rack units", purity.rack_units, disk.rack_units,
            lower_is_better=True),
        row("Installation (hours)", purity.installation_hours,
            disk.installation_hours, lower_is_better=True),
        row("Power (W)", purity.power_watts, disk.power_watts,
            lower_is_better=True),
        row("Annual power cost ($)", purity.annual_power_cost,
            disk.annual_power_cost, lower_is_better=True),
        row("$/GB", purity.price_per_gb, disk.price_per_gb,
            lower_is_better=True),
        row("IOPS/RU", purity.iops_per_rack_unit, disk.iops_per_rack_unit),
        row("IOPS/W", purity.iops_per_watt, disk.iops_per_watt),
        row("IOPS/$", purity.iops_per_dollar, disk.iops_per_dollar),
    ]


def spec_with_measured(spec, peak_iops=None, latency=None):
    """A paper spec with simulated performance numbers merged in."""
    updates = {}
    if peak_iops is not None:
        updates["peak_iops_32k"] = peak_iops
    if latency is not None:
        updates["latency_seconds"] = latency
    return replace(spec, **updates)


# ----------------------------------------------------------------------
# Figure 7: the five-minute rule with data reduction


@dataclass(frozen=True)
class StorageTier:
    """One line of Figure 7.

    ``price_per_gb`` is the raw capacity price; ``reduction`` divides it
    (Purity's 1x / 4x RDBMS / 10x MongoDB lines); ``price_per_iops`` is
    the capital cost of provisioning one sustained I/O per second.
    """

    name: str
    price_per_gb: float
    price_per_iops: float
    reduction: float = 1.0

    def cost(self, item_bytes, access_interval_seconds):
        """Cost of holding one item accessed once per interval.

        Capacity term plus device-time term: the item consumes
        ``1/interval`` IOPS of the device's finite I/O capacity.
        """
        if access_interval_seconds <= 0:
            raise ValueError("access interval must be positive")
        capacity = (item_bytes / GIB) * self.price_per_gb / self.reduction
        access = self.price_per_iops / access_interval_seconds
        return capacity + access


def standard_tiers():
    """The five Figure 7 lines with the paper's price points.

    RAM: $1000 per 64 GiB ECC LR-DIMM, effectively free access. Purity:
    $5/GB usable and ~$1 per IOPS (Table 1). Disk: $18/GB usable and
    ~$6.9 per IOPS (Table 1's IOPS/$ of 0.144).
    """
    return [
        StorageTier("1x - No reduction", 5.0, 1.0, reduction=1.0),
        StorageTier("4x - RDBMS", 5.0, 1.0, reduction=4.0),
        StorageTier("10x - MongoDB", 5.0, 1.0, reduction=10.0),
        StorageTier("Hard disk", 18.0, 1.0 / 0.144),
        StorageTier("ECC DIMM", 1000.0 / 64.0, 0.0),
    ]


def crossover_interval(tier_a, tier_b, item_bytes=55 * KIB):
    """Access interval where two tiers cost the same, or None.

    Below the interval the tier with cheaper access wins; above it the
    tier with cheaper capacity wins. This is what turns the five-minute
    rule into the paper's ten-minute / half-hour rules.
    """
    capacity_a = (item_bytes / GIB) * tier_a.price_per_gb / tier_a.reduction
    capacity_b = (item_bytes / GIB) * tier_b.price_per_gb / tier_b.reduction
    access_delta = tier_a.price_per_iops - tier_b.price_per_iops
    capacity_delta = capacity_b - capacity_a
    if capacity_delta == 0 or access_delta == 0:
        return None
    interval = access_delta / capacity_delta
    if interval <= 0 or not math.isfinite(interval):
        return None
    return interval


def figure7_series(intervals, item_bytes=55 * KIB, tiers=None):
    """Cost curves for Figure 7: {tier name: [cost per interval]}.

    Costs are normalized to the cheapest value in the whole figure so
    the curves plot as *relative* cost, like the paper's y-axis.
    """
    tiers = tiers if tiers is not None else standard_tiers()
    raw = {
        tier.name: [tier.cost(item_bytes, interval) for interval in intervals]
        for tier in tiers
    }
    floor = min(min(series) for series in raw.values())
    return {
        name: [value / floor for value in series] for name, series in raw.items()
    }
