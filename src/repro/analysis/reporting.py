"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows/series the paper reports; this keeps the
formatting in one place.
"""


def _render(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.001:
            return "%.3g" % value
        if abs(value) >= 100:
            return "%.0f" % value
        return "%.3g" % value
    return str(value)


def format_table(headers, rows, title=None):
    """Fixed-width aligned table as a string."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    columns = len(headers)
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(headers[i]).ljust(widths[i]) for i in range(columns)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_ratio(value):
    """Render an improvement factor the way the paper does (3.08x)."""
    if value is None:
        return "-"
    return "%.2fx" % value
