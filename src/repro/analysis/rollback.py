"""Transaction rollback economics (Section 5.2.1).

As storage latency grows, transactions run longer, more of them run
concurrently (Little's law), and conflicts — hence rollbacks — grow
non-linearly [Gray et al.]. Purity's order-of-magnitude latency cut
therefore reduces rollback rates by *more* than 10x, and end-to-end
database speedups exceed what a 60 % CPU / 40 % I/O-wait profile naively
predicts.

Model: transactions arrive at rate ``tps``; each performs
``ios_per_txn`` storage operations of latency ``L`` plus ``cpu_seconds``
of compute, touching ``keys_per_txn`` keys uniformly from ``hot_keys``.
Two overlapping transactions conflict when they share a key; a conflict
rolls one back, and rollbacks retry (amplifying load).
"""

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TransactionModel:
    """A closed-form conflict/rollback model."""

    tps: float = 1000.0
    ios_per_txn: int = 10
    cpu_seconds: float = 0.001
    keys_per_txn: int = 4
    hot_keys: int = 10_000

    def duration(self, storage_latency):
        """Time one transaction holds its locks."""
        return self.cpu_seconds + self.ios_per_txn * storage_latency

    def concurrency(self, storage_latency):
        """Mean outstanding transactions (Little's law)."""
        return self.tps * self.duration(storage_latency)

    def rollback_probability(self, storage_latency):
        """P(a transaction conflicts with a concurrent one).

        Expected conflicting partners = (concurrent txns) x
        P(two k-key sets from H keys intersect) ~ N * k^2 / H. Rolled-
        back transactions retry, inflating the effective arrival rate by
        1/(1-p) — the feedback that makes rollback rates grow
        *non-linearly* with latency [25]. Solved as a fixed point.
        """
        overlap = self.keys_per_txn ** 2 / self.hot_keys
        base_conflicts = self.concurrency(storage_latency) * overlap
        p = 0.0
        for _ in range(200):
            retry_factor = 1.0 / max(1e-9, 1.0 - p)
            updated = 1.0 - math.exp(-base_conflicts * retry_factor)
            if updated >= 1.0 - 1e-9:
                return 1.0
            if abs(updated - p) < 1e-12:
                return updated
            p = updated
        return p

    def effective_txn_cost(self, storage_latency):
        """Mean wall-clock per committed transaction, retries included."""
        p = self.rollback_probability(storage_latency)
        if p >= 1.0:
            return math.inf
        return self.duration(storage_latency) / (1.0 - p)

    def speedup(self, disk_latency, flash_latency):
        """Committed-throughput speedup moving disk -> flash."""
        return self.effective_txn_cost(disk_latency) / self.effective_txn_cost(
            flash_latency
        )

    def rollback_reduction(self, disk_latency, flash_latency):
        """Factor by which the rollback rate falls."""
        disk_p = self.rollback_probability(disk_latency)
        flash_p = self.rollback_probability(flash_latency)
        if flash_p == 0:
            return math.inf
        return disk_p / flash_p


def naive_speedup_bound(cpu_fraction, io_fraction, io_speedup):
    """The "one would not expect more than ~2x" intuition from the paper.

    A fixed-work model: new time = cpu + io/io_speedup; speedup is
    bounded by 1/cpu_fraction regardless of storage.
    """
    if not math.isclose(cpu_fraction + io_fraction, 1.0, rel_tol=1e-6):
        raise ValueError("fractions must sum to 1")
    return 1.0 / (cpu_fraction + io_fraction / io_speedup)
