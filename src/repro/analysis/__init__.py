"""Analytic models behind the paper's economics sections.

Table 1 (appliance comparison), Table 2 (consolidation ratios),
Figure 7 (the five-minute rule revisited for flash with data
reduction), and the Section 5.2.1 transaction-rollback model.
"""

from repro.analysis.costmodel import (
    PAPER_DISK_ARRAY,
    PAPER_PURITY_ARRAY,
    ApplianceSpec,
    StorageTier,
    standard_tiers,
    build_table1,
    crossover_interval,
)
from repro.analysis.consolidation import (
    PAPER_DEPLOYMENTS,
    Deployment,
    consolidation_table,
)
from repro.analysis.rollback import TransactionModel
from repro.analysis.reporting import format_table

__all__ = [
    "ApplianceSpec",
    "StorageTier",
    "standard_tiers",
    "build_table1",
    "crossover_interval",
    "PAPER_PURITY_ARRAY",
    "PAPER_DISK_ARRAY",
    "Deployment",
    "PAPER_DEPLOYMENTS",
    "consolidation_table",
    "TransactionModel",
    "format_table",
]
