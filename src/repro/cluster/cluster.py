"""The cluster facade: N Purity arrays behind one client interface.

``Cluster`` wires the whole stack — shared :class:`SimClock` and
:class:`EventLoop`, a :class:`NetworkFabric`, N :class:`ArrayNode`\\ s
(each its own engine, config, and metrics registry, all sharing one
:class:`TraceBuffer`), one :class:`MetadataManager`, and one
:class:`ClusterClient` — and exposes the same ``create_volume`` /
``write`` / ``read`` verbs a single :class:`PurityArray` does.

**Passthrough contract (N=1).** A one-array cluster is a pure wrapper:
no heartbeats are scheduled, no cluster spans or metrics are recorded,
and every verb delegates straight to the single engine. A 1-array
cluster run is byte-identical — drive bytes, read results, trace
records, metric snapshots — to a bare ``PurityArray`` run on the same
seed, which is what the differential test asserts and what makes the
cluster layer trustworthy: whatever it adds for N≥2, it provably adds
*nothing* at N=1.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.config import ClusterConfig
from repro.cluster.fabric import NetworkFabric
from repro.cluster.mdm import SUSPECT, MetadataManager
from repro.cluster.node import ArrayNode
from repro.core.config import ArrayConfig
from repro.obs.trace import Observability, TraceBuffer
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop


class Cluster:
    """N member arrays, one MDM, one routing client, one sim clock."""

    def __init__(self, config=None, array_configs=None):
        self.config = config or ClusterConfig()
        self.clock = SimClock()
        self.loop = EventLoop(self.clock)
        self.fabric = NetworkFabric(self.clock)
        self.buffer = TraceBuffer()
        node_ids = self.config.node_ids()
        if array_configs is None:
            array_configs = [
                ArrayConfig.small(seed=self.config.node_seed(index))
                for index in range(self.config.num_arrays)
            ]
        if len(array_configs) != self.config.num_arrays:
            raise ValueError(
                "need %d array configs, got %d"
                % (self.config.num_arrays, len(array_configs))
            )
        self.nodes = {}
        for node_id, array_config in zip(node_ids, array_configs):
            self.nodes[node_id] = ArrayNode(
                node_id, array_config, self.clock, buffer=self.buffer
            )
        #: Cluster-scoped observability: its registry holds only the
        #: ``cluster.*`` metrics; its trace buffer is the shared one.
        self.obs = Observability(self.clock, buffer=self.buffer)
        self.passthrough = self.config.num_arrays == 1
        self.mdm = MetadataManager(
            self.config, self.clock, self.loop, self.fabric,
            self.nodes, self.obs,
        )
        self.client = ClusterClient(
            self.config, self.clock, self.loop, self.fabric,
            self.mdm, self.nodes, self.obs,
        )
        if not self.passthrough:
            self.mdm.start()
            for node_id in node_ids:
                self.nodes[node_id].start_heartbeats(
                    self.loop, self.mdm, self.fabric,
                    self.config.heartbeat_interval,
                )

    # ------------------------------------------------------------------
    # Convenience accessors

    @property
    def solo(self):
        """The single engine of a passthrough cluster."""
        return next(iter(self.nodes.values())).array

    def node(self, node_id):
        return self.nodes[node_id]

    # ------------------------------------------------------------------
    # Client verbs

    def create_volume(self, volume, size):
        if self.passthrough:
            return self.solo.create_volume(volume, size)
        epoch, replicas = self.mdm.create_volume(volume, size)
        self.client.refresh()
        return replicas

    def write(self, volume, offset, data, advance_clock=True):
        if self.passthrough:
            return self.solo.write(volume, offset, data,
                                   advance_clock=advance_clock)
        latency = self.client.write(volume, offset, data,
                                    advance_clock=advance_clock)
        self.pump()
        return latency

    def read(self, volume, offset, length, advance_clock=True):
        if self.passthrough:
            return self.solo.read(volume, offset, length,
                                  advance_clock=advance_clock)
        result = self.client.read(volume, offset, length,
                                  advance_clock=advance_clock)
        self.pump()
        return result

    # ------------------------------------------------------------------
    # Management verbs (service front end / mgmt API)

    def unmap(self, volume, offset, length):
        if self.passthrough:
            return self.solo.unmap(volume, offset, length)
        result = self.client.manage(volume, "handle_unmap",
                                    volume, offset, length)
        self.pump()
        return result

    def snapshot(self, volume, snapshot_name):
        """Point-in-time image on every serving replica of ``volume``."""
        if self.passthrough:
            return self.solo.snapshot(volume, snapshot_name)
        result = self.client.manage(volume, "handle_snapshot",
                                    volume, snapshot_name)
        self.pump()
        return result

    def destroy_snapshot(self, volume, snapshot_name):
        if self.passthrough:
            return self.solo.destroy_snapshot(volume, snapshot_name)
        result = self.client.manage(volume, "handle_destroy_snapshot",
                                    volume, snapshot_name)
        self.pump()
        return result

    def clone(self, volume, snapshot_name, new_volume):
        """Writable clone, *pinned* to the parent's replica set.

        The snapshot's bytes already live on the parent's replicas;
        pinning makes the clone free (metadata only) instead of a
        cross-array copy. The MDM records the pinned placement and the
        clone's clean set mirrors the parent's.
        """
        if self.passthrough:
            return self.solo.clone(volume, snapshot_name, new_volume)
        result = self.client.manage(volume, "handle_clone",
                                    volume, snapshot_name, new_volume)
        self.mdm.clone_volume(volume, snapshot_name, new_volume)
        self.client.refresh()
        self.pump()
        return result

    def destroy_volume(self, volume):
        if self.passthrough:
            return self.solo.destroy_volume(volume)
        result = self.client.manage(volume, "handle_destroy_volume", volume)
        self.mdm.destroy_volume(volume)
        self.client.refresh()
        self.pump()
        return result

    def reduction_report(self):
        """Cluster-wide reduction accounting: alive members summed."""
        if self.passthrough:
            return self.solo.reduction_report()
        from repro.core.telemetry import ReductionReport

        fields = [0, 0, 0, 0, 0]
        for node in self.nodes.values():
            if not node.alive:
                continue
            report = node.array.reduction_report()
            fields[0] += report.logical_live_bytes
            fields[1] += report.unique_logical_bytes
            fields[2] += report.physical_stored_bytes
            fields[3] += report.physical_with_parity_bytes
            fields[4] += report.provisioned_bytes
        return ReductionReport(*fields)

    # ------------------------------------------------------------------
    # Simulated-time control

    def pump(self):
        """Dispatch every event due at or before the current sim time."""
        return self.loop.run(until=self.clock.now)

    def advance(self, seconds):
        """Advance simulated time, dispatching heartbeats/ticks/copies."""
        return self.loop.run(until=self.clock.now + seconds)

    def settle(self, max_seconds=60.0):
        """Advance until the cluster is quiescent: no active partitions,
        no suspect members, and no refresh copies in flight. Bounded by
        ``max_seconds`` of simulated time; returns the seconds spent.

        Dead members stay dead (only a revive brings them back) and do
        not block settling.
        """
        if self.passthrough:
            return 0.0
        start = self.clock.now
        step = self.config.heartbeat_interval
        while self.clock.now - start < max_seconds:
            if not self.fabric.active_isolations() \
                    and not self.mdm.pending_copies() \
                    and not any(
                        self.mdm.status(n) == SUSPECT
                        for n in self.nodes
                    ):
                break
            self.advance(step)
        return self.clock.now - start

    # ------------------------------------------------------------------
    # Fault entry points (used by the cluster chaos harness)

    def kill(self, node_id):
        """Crash a whole member array (its substrate survives)."""
        self.nodes[node_id].kill()

    def revive(self, node_id):
        """Recover a killed member; it heartbeats and rejoins dirty."""
        self.nodes[node_id].revive()

    def partition(self, node_id, seconds):
        """Isolate a member off the fabric for ``seconds`` of sim time."""
        until = self.fabric.isolate(node_id, seconds)
        if self.obs.tracing:
            self.obs.event("cluster.partition", node=node_id,
                           until=until)
        return until

    # ------------------------------------------------------------------
    # Observability

    def enable_tracing(self):
        """Turn on span collection cluster-wide (client, MDM, nodes)."""
        self.obs.enable_tracing()
        for node in self.nodes.values():
            node.obs.enable_tracing()
        return self

    def observe_sample(self):
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            if node.alive:
                node.array.observe_sample()

    def export_obs(self, directory, prefix="cluster"):
        """Write the shared trace + cluster metrics JSONL artifacts."""
        from repro.obs.export import dump_run

        return dump_run(self.obs, directory, prefix=prefix)
