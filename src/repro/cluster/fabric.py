"""The simulated cluster network: reachability, not latency.

The fabric models exactly one failure mode — a timed partition that
isolates a whole array node — because that is what the cluster-level
invariants are about (does the client reroute? does the MDM declare
death on the sim clock?). Message latency stays folded into the array
device models, as everywhere else in the simulator.

Partitions heal by simulated time alone: :meth:`isolate` records an
``until`` timestamp and :meth:`deliver` consults the shared clock, so
replaying a seed replays every partition window exactly.
"""

from repro.errors import UnreachableError

#: The metadata manager's well-known address on the fabric.
MDM_ADDRESS = "mdm"
#: The routing client's well-known address on the fabric.
CLIENT_ADDRESS = "client"


class NetworkFabric:
    """Reachability oracle for cluster messages on the sim clock."""

    def __init__(self, clock):
        self.clock = clock
        #: node id -> simulated timestamp the isolation ends at.
        self._isolated_until = {}

    def isolate(self, node_id, seconds):
        """Partition ``node_id`` off the fabric for ``seconds`` from now.

        Overlapping isolations extend rather than shorten the window.
        Returns the healing timestamp.
        """
        until = self.clock.now + seconds
        current = self._isolated_until.get(node_id, 0.0)
        self._isolated_until[node_id] = max(current, until)
        return self._isolated_until[node_id]

    def heal(self, node_id):
        """Administratively end ``node_id``'s partition early."""
        self._isolated_until.pop(node_id, None)

    def isolated(self, node_id):
        """Is ``node_id`` partitioned off right now?"""
        until = self._isolated_until.get(node_id)
        if until is None:
            return False
        if self.clock.now >= until:
            # Lazy healing: the window elapsed on the sim clock.
            del self._isolated_until[node_id]
            return False
        return True

    def active_isolations(self):
        """Node ids currently partitioned (sorted, for determinism)."""
        return sorted(n for n in list(self._isolated_until)
                      if self.isolated(n))

    def deliver(self, src, dst):
        """Assert a message can travel ``src`` → ``dst`` right now.

        Raises :class:`~repro.errors.UnreachableError` if either
        endpoint is inside a partition window. The MDM and the client
        live on the quorum side and are never isolated themselves.
        """
        if self.isolated(src):
            raise UnreachableError(src, dst)
        if self.isolated(dst):
            raise UnreachableError(src, dst)
