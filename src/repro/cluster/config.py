"""Cluster-level configuration.

One frozen dataclass, mirroring :class:`repro.core.config.ArrayConfig`:
construct once, thread everywhere, never mutate. Per-array knobs stay
in each node's own ``ArrayConfig`` (the cluster derives one per node,
seeded from the cluster seed, unless the caller passes explicit
configs); this object only holds what exists *between* arrays —
membership timing, replication, rebuild pacing, client retry budget.
"""

from dataclasses import dataclass

#: Default client retry budget across stale-epoch refreshes and
#: failovers: generous enough to ride out one full failover (refresh,
#: re-route, re-send) with room for a coincident stale epoch, small
#: enough that a genuinely unroutable volume fails fast.
DEFAULT_MAX_RETRIES = 8


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs for the MDM/node/client split (see :mod:`repro.cluster`)."""

    #: Number of member arrays ("array0" .. "arrayN-1").
    num_arrays: int = 2
    #: Synchronous replicas per volume (capped at ``num_arrays``). With
    #: two, any single array-sized failure loses no acknowledged write.
    replication: int = 2
    #: Simulated seconds between a node's heartbeats to the MDM.
    heartbeat_interval: float = 0.25
    #: Heartbeat silence after which the MDM marks a member suspect
    #: (skipped for new placements, writes no longer wait on it).
    suspect_after: float = 0.75
    #: Heartbeat silence after which the MDM declares a member dead and
    #: rebalances its volumes onto clean survivors.
    dead_after: float = 1.5
    #: Replica-refresh copy pacing: bytes per step and the simulated
    #: gap between steps (the cluster analogue of the single-array
    #: rebuild governor's rate limit).
    copy_chunk_bytes: int = 128 * 1024
    copy_interval: float = 0.005
    #: Client retry budget across stale-epoch refreshes and failovers.
    max_retries: int = DEFAULT_MAX_RETRIES
    #: Extra heartbeat intervals the client waits beyond ``dead_after``
    #: for the MDM to declare a silent primary dead before giving up.
    failover_slack: int = 6
    #: Seed namespace for derived per-node ``ArrayConfig`` seeds.
    seed: int = 0

    def __post_init__(self):
        if self.num_arrays < 1:
            raise ValueError("num_arrays must be >= 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if not (0 < self.heartbeat_interval
                <= self.suspect_after <= self.dead_after):
            raise ValueError(
                "need 0 < heartbeat_interval <= suspect_after <= dead_after"
            )

    @property
    def effective_replication(self):
        return min(self.replication, self.num_arrays)

    def node_ids(self):
        return tuple("array%d" % index for index in range(self.num_arrays))

    def node_seed(self, index):
        """Per-node array seed: disjoint namespaces under one cluster
        seed, so two nodes never replay each other's device streams."""
        return self.seed * 1000 + index

    #: Upper bound on one failover's reroute time, in simulated
    #: seconds: the MDM needs ``dead_after`` of silence plus up to
    #: ``failover_slack`` heartbeat ticks of detection granularity.
    @property
    def reroute_bound(self):
        return self.dead_after + self.failover_slack * self.heartbeat_interval
