"""Multi-array clustering: the ROADMAP's "millions of users" move.

The paper's availability story is one array with two HA controllers;
this package scales it out. Volumes are sharded across N independent
:class:`~repro.core.array.PurityArray` engines (one process, shared
sim clock, per-node configs and metric registries) behind three roles:

* :class:`~repro.cluster.mdm.MetadataManager` — volume→array placement
  (capacity-capped rendezvous hashing, epoch-stamped maps), heartbeat-
  driven membership (alive/suspect/dead), clean-replica tracking, and
  rate-limited refresh copies after failures;
* :class:`~repro.cluster.node.ArrayNode` — one engine behind a
  message-passing facade that validates liveness and placement epochs;
* :class:`~repro.cluster.client.ClusterClient` — routes by cached
  epoch, retries stale-epoch rejections, and waits out the failure
  detector to fail over when the MDM declares an array dead.

:class:`~repro.cluster.cluster.Cluster` wires the stack; with one
array it is a bit-for-bit passthrough to the bare engine (the
differential test's contract). :class:`~repro.cluster.chaos.
ClusterChaosHarness` kills whole arrays mid-workload and proves zero
acknowledged-write loss on the sim clock.
"""

from repro.cluster.chaos import (
    ClusterChaosHarness,
    ClusterChaosReport,
    ClusterInvariantViolation,
)
from repro.cluster.client import ClusterClient
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.cluster.fabric import NetworkFabric
from repro.cluster.mdm import ALIVE, DEAD, SUSPECT, MetadataManager
from repro.cluster.node import ArrayNode
from repro.cluster.placement import (
    PlacementMap,
    placement_score,
    primary_cap,
    ranked_members,
)

__all__ = [
    "ALIVE",
    "ArrayNode",
    "Cluster",
    "ClusterChaosHarness",
    "ClusterChaosReport",
    "ClusterClient",
    "ClusterConfig",
    "ClusterInvariantViolation",
    "DEAD",
    "MetadataManager",
    "NetworkFabric",
    "PlacementMap",
    "SUSPECT",
    "placement_score",
    "primary_cap",
    "ranked_members",
]
