"""Volume→array placement: capacity-capped rendezvous hashing + epochs.

The metadata manager owns one :class:`PlacementMap`. Placement follows
rendezvous (highest-random-weight) hashing — every (volume, array)
pair gets a deterministic score from a keyed SHA-256, and a volume
prefers the highest-scoring alive array — with one refinement: primary
assignment is **capacity-capped** at ``ceil(volumes / arrays)``. The
cap is what turns rendezvous's probabilistic balance into the hard
bounds the cluster test battery asserts:

* a single join moves at most ``ceil(V / N)`` volumes (the steal list
  is explicitly capped there) and never admits the newcomer above the
  cap;
* a single leave moves at most the leaver's load — itself bounded by
  the pre-leave cap — and refills respect the post-leave cap;
* fresh placements (``add_volume``) never push a primary above the cap.

The cap is *not* re-enforced globally on every epoch: after a shrink
the per-member cap grows, and a later join only steals up to the new
cap, so an incumbent can transiently sit above ``ceil(V / N)`` until
volume churn or further joins drain it. Restoring it in one step would
require moving more than ``ceil(V / N)`` volumes, which the movement
bound forbids — bounded data motion wins over instantaneous balance.

Every mutation bumps :attr:`PlacementMap.epoch`. Replaying the same
membership-event sequence over the same volumes reproduces the same
map at every epoch — placement is a pure function of history, which is
what lets nodes reject stale-epoch operations instead of guessing.

Replica lists are ordered: ``replicas[0]`` is the primary (serves
reads, defines the copy source for rebuilds), the rest are synchronous
secondaries. Promotion of a surviving secondary is free (it already
holds the bytes); only *refills* — a replica slot handed to an array
that does not hold the volume yet — cost a data copy, and those are
what the movement bounds count.
"""

import hashlib
import math


def placement_score(volume, member):
    """Deterministic rendezvous score of placing ``volume`` on ``member``.

    Keyed SHA-256 truncated to 64 bits: stable across processes and
    platforms (``hash()`` is salted per process and never used here).
    """
    digest = hashlib.sha256(b"%s|%s" % (
        volume.encode("utf-8"), member.encode("utf-8")
    )).digest()
    return int.from_bytes(digest[:8], "big")


def ranked_members(volume, members):
    """Members ranked best-first for ``volume`` (score desc, name asc)."""
    return sorted(members, key=lambda m: (-placement_score(volume, m), m))


def primary_cap(num_volumes, num_members):
    """The hard per-array primary-load bound: ``ceil(V / N)``."""
    if num_members <= 0:
        return 0
    return math.ceil(num_volumes / num_members)


class PlacementMap:
    """Epoch-stamped volume→replica-list assignments.

    Mutations (``add_volume``, ``join``, ``leave``) each bump
    :attr:`epoch`; readers carry the epoch they observed and nodes
    reject operations stamped with an older one.
    """

    def __init__(self, replication=2):
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.replication = replication
        self.epoch = 0
        #: volume -> tuple of array ids, primary first.
        self.assignments = {}
        #: Alive members the map currently places onto.
        self.members = ()
        #: member -> primary count, maintained across mutations so
        #: ``add_volume`` stays O(members) instead of O(volumes) — the
        #: difference between linear and quadratic time when a
        #: consolidation sweep provisions 10k volumes.
        self._loads = {}

    # ------------------------------------------------------------------
    # Views

    def replicas(self, volume):
        return self.assignments.get(volume, ())

    def primary(self, volume):
        replicas = self.assignments.get(volume)
        return replicas[0] if replicas else None

    def volumes_on(self, member, primary_only=False):
        """Volumes with any replica (or just the primary) on ``member``."""
        held = []
        for volume in sorted(self.assignments):
            replicas = self.assignments[volume]
            if primary_only:
                if replicas and replicas[0] == member:
                    held.append(volume)
            elif member in replicas:
                held.append(volume)
        return held

    def primary_load(self, member):
        return self._loads.get(member, 0)

    def _recount_loads(self):
        loads = {m: 0 for m in self.members}
        for replicas in self.assignments.values():
            if replicas and replicas[0] in loads:
                loads[replicas[0]] += 1
        self._loads = loads

    def cap(self):
        return primary_cap(len(self.assignments), len(self.members))

    # ------------------------------------------------------------------
    # Mutation

    def _bump(self):
        self.epoch += 1
        return self.epoch

    def set_members(self, members):
        """Install the initial member set (no volumes placed yet)."""
        self.members = tuple(sorted(members))
        self._recount_loads()
        return self._bump()

    def _pick_primary(self, volume, cap, loads):
        for member in ranked_members(volume, self.members):
            if loads.get(member, 0) < cap:
                return member
        # Every member is at the cap (only possible transiently while a
        # cap computed against a smaller member set is in force); fall
        # back to the best-ranked member rather than failing placement.
        return ranked_members(volume, self.members)[0]

    def _fill_secondaries(self, volume, chosen):
        want = min(self.replication, len(self.members))
        for member in ranked_members(volume, self.members):
            if len(chosen) >= want:
                break
            if member not in chosen:
                chosen.append(member)
        return chosen

    def add_volume(self, volume):
        """Place a new volume; returns (epoch, replicas)."""
        if volume in self.assignments:
            raise ValueError("volume %r is already placed" % volume)
        if not self.members:
            raise ValueError("no members to place %r on" % volume)
        cap = primary_cap(len(self.assignments) + 1, len(self.members))
        primary = self._pick_primary(volume, cap, self._loads)
        replicas = self._fill_secondaries(volume, [primary])
        self.assignments[volume] = tuple(replicas)
        self._loads[primary] = self._loads.get(primary, 0) + 1
        return self._bump(), tuple(replicas)

    def adopt_volume(self, volume, replicas):
        """Place a new volume on a *pinned* replica list.

        Used for clones: a clone must live where its parent's snapshot
        bytes already are, so the caller — not rendezvous hashing —
        names the replicas. The pinned primary may exceed the cap
        (clones follow their parent); later joins drain overloads.
        """
        if volume in self.assignments:
            raise ValueError("volume %r is already placed" % volume)
        replicas = tuple(replicas)
        if not replicas:
            raise ValueError("adopt_volume needs at least one replica")
        for member in replicas:
            if member not in self.members:
                raise ValueError("member %r not present" % member)
        self.assignments[volume] = replicas
        self._loads[replicas[0]] = self._loads.get(replicas[0], 0) + 1
        return self._bump(), replicas

    def set_primary(self, volume, new_primary):
        """Reorder ``volume``'s replica list to lead with ``new_primary``
        (which must already be a replica); bumps the epoch."""
        replicas = self.assignments[volume]
        if new_primary not in replicas:
            raise ValueError(
                "%r is not a replica of %r" % (new_primary, volume)
            )
        if replicas[0] == new_primary:
            return self.epoch
        old_primary = replicas[0]
        self.assignments[volume] = (new_primary,) + tuple(
            m for m in replicas if m != new_primary
        )
        self._loads[old_primary] = self._loads.get(old_primary, 1) - 1
        self._loads[new_primary] = self._loads.get(new_primary, 0) + 1
        return self._bump()

    def drop_volume(self, volume):
        replicas = self.assignments.pop(volume, None)
        if replicas:
            self._loads[replicas[0]] = self._loads.get(replicas[0], 1) - 1
        return self._bump()

    def join(self, member):
        """Admit ``member``; returns (epoch, moved) where ``moved`` maps
        volume -> (old_replicas, new_replicas) for every changed volume.

        The steal list — volumes whose primary hands over to the new
        member — is capped at ``ceil(V / N)`` computed over the
        *post-join* member count, which is the movement bound the
        placement property tests assert. The displaced primary stays on
        as a secondary (it still holds the bytes), so a bounced volume
        never loses redundancy while the copy to the newcomer runs.
        """
        if member in self.members:
            raise ValueError("member %r already present" % member)
        self.members = tuple(sorted(self.members + (member,)))
        moved = {}
        cap = self.cap()
        loads = {m: self.primary_load(m) for m in self.members}
        by_incumbent = {}
        for volume in sorted(self.assignments):
            replicas = self.assignments[volume]
            if not replicas:
                continue
            incumbent = replicas[0]
            gain = placement_score(volume, member) \
                - placement_score(volume, incumbent)
            by_incumbent.setdefault(incumbent, []).append((-gain, volume))
        for offers in by_incumbent.values():
            offers.sort()
        steals = []
        # Phase 1 — drain overload: incumbents above the post-join cap
        # hand volumes over first (most-loaded donor each round, its
        # best-gain volume first). This is what keeps a future leaver's
        # load — and therefore a single leave's movement — bounded by
        # the post-leave cap even across shrink/grow cycles.
        while len(steals) < cap:
            donors = [m for m in by_incumbent
                      if loads[m] > cap and by_incumbent[m]]
            if not donors:
                break
            donor = max(donors, key=lambda m: (loads[m], m))
            _neg_gain, volume = by_incumbent[donor].pop(0)
            steals.append(volume)
            loads[donor] -= 1
        # Phase 2 — rendezvous affinity: remaining budget goes to the
        # volumes the newcomer genuinely scores best on.
        gainful = sorted(
            (neg_gain, volume)
            for offers in by_incumbent.values()
            for neg_gain, volume in offers
            if neg_gain < 0
        )
        for _neg_gain, volume in gainful:
            if len(steals) >= cap:
                break
            steals.append(volume)
        for volume in steals:
            old = self.assignments[volume]
            replicas = [member] + [m for m in old if m != member]
            replicas = replicas[:max(self.replication,
                                     min(len(replicas), self.replication))]
            new = tuple(self._fill_secondaries(volume, replicas))
            self.assignments[volume] = new
            moved[volume] = (old, new)
        # Volumes still under-replicated (cluster smaller than the
        # replication factor until now) pick the newcomer up as a
        # secondary for free placement-wise (the copy is the cost).
        want = min(self.replication, len(self.members))
        for volume in sorted(self.assignments):
            old = self.assignments[volume]
            if len(old) < want:
                new = tuple(self._fill_secondaries(volume, list(old)))
                if new != old:
                    self.assignments[volume] = new
                    moved[volume] = (old, new)
        self._recount_loads()
        return self._bump(), moved

    def leave(self, member, preferred_primaries=None):
        """Remove ``member``; returns (epoch, moved) as in :meth:`join`.

        Surviving secondaries are promoted in place — free, they hold
        the bytes — with ``preferred_primaries`` (volume -> array id,
        the MDM's clean-replica choice) able to override the default
        order. Refill targets respect the post-leave primary cap.
        """
        if member not in self.members:
            raise ValueError("member %r not present" % member)
        self.members = tuple(m for m in self.members if m != member)
        preferred = preferred_primaries or {}
        moved = {}
        if not self.members:
            # Last member gone: every volume is orphaned; keep the
            # assignments empty rather than pointing at a dead array.
            for volume in sorted(self.assignments):
                old = self.assignments[volume]
                if old:
                    self.assignments[volume] = ()
                    moved[volume] = (old, ())
            self._recount_loads()
            return self._bump(), moved
        cap = self.cap()
        loads = {m: 0 for m in self.members}
        for replicas in self.assignments.values():
            if replicas and replicas[0] != member \
                    and replicas[0] in loads:
                loads[replicas[0]] += 1
        for volume in sorted(self.assignments):
            old = self.assignments[volume]
            if member not in old:
                continue
            survivors = [m for m in old if m != member]
            choice = preferred.get(volume)
            if choice in survivors:
                survivors = [choice] + [m for m in survivors if m != choice]
            if not survivors:
                primary = self._pick_primary(volume, cap, loads)
                loads[primary] = loads.get(primary, 0) + 1
                survivors = [primary]
            elif old and old[0] == member:
                loads[survivors[0]] = loads.get(survivors[0], 0) + 1
            new = tuple(self._fill_secondaries(volume, survivors))
            self.assignments[volume] = new
            moved[volume] = (old, new)
        self._recount_loads()
        return self._bump(), moved
