"""The routing client: epoch-stamped I/O with retry and failover.

The client holds a cached placement epoch and routes every operation
with it. Three things can go wrong, each with a deterministic recovery:

* **Stale epoch** — the node rejects with
  :class:`~repro.errors.StaleEpochError`; the client refreshes its
  epoch from the MDM and retries (counted in ``cluster.stale_retries``).
* **Unreachable/down replica** — the client reports the node to the
  MDM (immediate suspicion) and retries against the updated routing;
  a suspect *secondary* is simply skipped — acknowledged writes then
  intentionally exclude it, which is exactly why the MDM dirtied it.
* **Unreachable/down primary** — the client cannot serve without a
  primary, so it waits out the failure detector: it advances the
  event loop one heartbeat interval at a time until the MDM declares
  the member dead and promotes a clean secondary, then retries. The
  wait is bounded by ``ClusterConfig.reroute_bound`` simulated
  seconds, and the observed reroute time lands in the
  ``cluster.reroute.latency`` histogram — the number the chaos suite
  asserts against the bound.

Writes are synchronous to every serving replica before the ack: the
primary write advances the shared clock (it is the latency the client
sees), secondaries are charged to their own arrays without advancing
time, modeling replica work proceeding in parallel.
"""

from repro.errors import (
    ArrayDownError,
    ClusterError,
    StaleEpochError,
    UnreachableError,
)

from repro.cluster.fabric import CLIENT_ADDRESS
from repro.cluster.mdm import ALIVE, DEAD


class ClusterClient:
    """Routes volume I/O by placement epoch; fails over via the MDM."""

    def __init__(self, config, clock, loop, fabric, mdm, nodes, obs):
        self.config = config
        self.clock = clock
        self.loop = loop
        self.fabric = fabric
        self.mdm = mdm
        self.nodes = nodes
        self.obs = obs
        self.epoch = mdm.epoch
        #: Node that served the most recent successful read — the chaos
        #: oracle tags its byte checks with this node's ladder state.
        self.last_read_node = None
        self.last_write_node = None
        #: Sim-clock durations of every primary failover this client
        #: waited out (also recorded as a histogram metric).
        self.reroute_times = []
        self._writes = obs.metrics.counter("cluster.writes")
        self._reads = obs.metrics.counter("cluster.reads")
        self._stale = obs.metrics.counter("cluster.stale_retries")
        self._failovers = obs.metrics.counter("cluster.failovers")
        self._reroute = obs.metrics.histogram("cluster.reroute.latency")

    # ------------------------------------------------------------------
    # Helpers

    def refresh(self):
        """Pull the current placement epoch from the MDM."""
        self.epoch = self.mdm.epoch
        return self.epoch

    def _serving_replicas(self, volume):
        """Replicas a write must reach: primary plus alive secondaries."""
        replicas = self.mdm.routing(volume)
        if not replicas:
            raise ClusterError("volume %s has no replicas" % volume)
        primary = replicas[0]
        serving = [primary]
        serving.extend(
            n for n in replicas[1:] if self.mdm.status(n) == ALIVE
        )
        return primary, serving

    def _report_and_maybe_failover(self, node_id, volume):
        """React to a bounced message: suspect now; if the bounced node
        is the volume's primary, wait for the MDM to declare it dead."""
        self.mdm.report_unreachable(node_id)
        if self.mdm.routing(volume) and \
                self.mdm.routing(volume)[0] == node_id:
            self._await_failover(node_id)
        self.refresh()

    def _await_failover(self, node_id):
        """Advance simulated time until the failure detector declares
        ``node_id`` dead (or it comes back), bounded by the config's
        reroute bound. This is where reroute latency comes from."""
        self._failovers.inc()
        span = None
        if self.obs.tracing:
            span = self.obs.begin("cluster.failover", node=node_id)
        start = self.clock.now
        deadline = start + self.config.reroute_bound
        self.mdm.start()
        while self.clock.now < deadline:
            status = self.mdm.status(node_id)
            if status == DEAD:
                break  # declared dead: routing has moved on
            if status == ALIVE and not self.fabric.isolated(node_id) \
                    and self.nodes[node_id].alive:
                break  # it came back (healed partition)
            self.loop.run(
                until=self.clock.now + self.config.heartbeat_interval
            )
        elapsed = self.clock.now - start
        self.reroute_times.append(elapsed)
        self._reroute.record(elapsed)
        if span is not None:
            self.obs.end(span, lat=elapsed, status=self.mdm.status(node_id))

    # ------------------------------------------------------------------
    # Client API

    def write(self, volume, offset, data, advance_clock=True):
        """Replicated write; returns the primary's acknowledged latency.

        The ack means every serving replica holds the bytes — the
        zero-acknowledged-loss invariant under single-array failures.
        """
        self._writes.inc()
        span = None
        if self.obs.tracing:
            span = self.obs.begin("cluster.write", volume=volume,
                                  offset=offset, nbytes=len(data))
        try:
            latency = self._write_attempts(volume, offset, data,
                                           advance_clock)
        except BaseException:
            if span is not None:
                self.obs.end(span, failed=True)
            raise
        if span is not None:
            self.obs.end(span, lat=latency)
        return latency

    def _write_attempts(self, volume, offset, data, advance_clock):
        for _attempt in range(self.config.max_retries):
            primary, serving = self._serving_replicas(volume)
            target = primary
            try:
                latency = None
                for node_id in serving:
                    target = node_id
                    self.fabric.deliver(CLIENT_ADDRESS, node_id)
                    advance = advance_clock and node_id == primary
                    lat = self.nodes[node_id].handle_write(
                        self.epoch, volume, offset, data,
                        advance_clock=advance,
                    )
                    if node_id == primary:
                        latency = lat
                self.last_write_node = primary
                return latency
            except StaleEpochError:
                self._stale.inc()
                if self.obs.tracing:
                    self.obs.event("cluster.stale-epoch", volume=volume,
                                   epoch=self.epoch)
                self.refresh()
            except (ArrayDownError, UnreachableError):
                self._report_and_maybe_failover(target, volume)
        raise ClusterError(
            "write to %s failed after %d attempts"
            % (volume, self.config.max_retries)
        )

    def manage(self, volume, handler_name, *args):
        """Replicated management verb (snapshot, clone, unmap, destroy).

        Applies the named node handler to every serving replica of
        ``volume`` with the write path's retry/failover discipline, so
        a snapshot exists everywhere a subsequent failover could read
        it. Returns the primary's result.
        """
        for _attempt in range(self.config.max_retries):
            primary, serving = self._serving_replicas(volume)
            target = primary
            try:
                result = None
                for node_id in serving:
                    target = node_id
                    self.fabric.deliver(CLIENT_ADDRESS, node_id)
                    handler = getattr(self.nodes[node_id], handler_name)
                    out = handler(self.epoch, *args)
                    if node_id == primary:
                        result = out
                return result
            except StaleEpochError:
                self._stale.inc()
                if self.obs.tracing:
                    self.obs.event("cluster.stale-epoch", volume=volume,
                                   epoch=self.epoch)
                self.refresh()
            except (ArrayDownError, UnreachableError):
                self._report_and_maybe_failover(target, volume)
        raise ClusterError(
            "%s on %s failed after %d attempts"
            % (handler_name, volume, self.config.max_retries)
        )

    def read(self, volume, offset, length, advance_clock=True):
        """Read from the volume's primary; returns (bytes, latency)."""
        self._reads.inc()
        span = None
        if self.obs.tracing:
            span = self.obs.begin("cluster.read", volume=volume,
                                  offset=offset, nbytes=length)
        try:
            data, latency = self._read_attempts(volume, offset, length,
                                               advance_clock)
        except BaseException:
            if span is not None:
                self.obs.end(span, failed=True)
            raise
        if span is not None:
            self.obs.end(span, lat=latency)
        return data, latency

    def _read_attempts(self, volume, offset, length, advance_clock):
        for _attempt in range(self.config.max_retries):
            replicas = self.mdm.routing(volume)
            if not replicas:
                raise ClusterError("volume %s has no replicas" % volume)
            primary = replicas[0]
            try:
                self.fabric.deliver(CLIENT_ADDRESS, primary)
                data, latency = self.nodes[primary].handle_read(
                    self.epoch, volume, offset, length,
                    advance_clock=advance_clock,
                )
                self.last_read_node = primary
                return data, latency
            except StaleEpochError:
                self._stale.inc()
                if self.obs.tracing:
                    self.obs.event("cluster.stale-epoch", volume=volume,
                                   epoch=self.epoch)
                self.refresh()
            except (ArrayDownError, UnreachableError):
                self._report_and_maybe_failover(primary, volume)
        raise ClusterError(
            "read of %s failed after %d attempts"
            % (volume, self.config.max_retries)
        )
