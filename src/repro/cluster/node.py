"""An array node: one Purity engine behind a message-passing facade.

The node owns a full :class:`~repro.core.array.PurityArray` built over
the cluster's shared :class:`~repro.sim.clock.SimClock`, with its own
``ArrayConfig``, its own seeded device streams, and its own
:class:`~repro.obs.trace.Observability` — private metrics registry,
*shared* :class:`~repro.obs.trace.TraceBuffer` — so N engines coexist
in one process with per-node metric scoping while every span lands in
one cluster-wide trace.

Every client-facing entry point (``handle_write`` / ``handle_read``)
is a message handler: it validates liveness (killed nodes raise
:class:`~repro.errors.ArrayDownError`) and the placement epoch the
caller stamped on the message. An older epoch is rejected with
:class:`~repro.errors.StaleEpochError` — the caller's map may route to
an array that no longer owns the volume — while a *newer* epoch is
adopted on the spot (the node learns the map moved forward without a
separate push).

``kill``/``revive`` reuse the single-array controller failover: kill
crashes the controller (the drive substrate survives), revive runs
``PurityArray.recover`` over it. A revived node's data is stale — it
missed every write acknowledged while it was down — which is why the
MDM treats rejoin as a join with refresh copies, never as a clean
member (see :mod:`repro.cluster.mdm`).
"""

from repro.cluster.fabric import MDM_ADDRESS
from repro.core.array import PurityArray
from repro.errors import ArrayDownError, StaleEpochError, UnreachableError
from repro.obs.trace import Observability


class ArrayNode:
    """One member array plus its membership/heartbeat plumbing."""

    def __init__(self, node_id, config, clock, buffer=None):
        self.node_id = node_id
        self.config = config
        self.clock = clock
        self.obs = Observability(clock, buffer=buffer)
        self.array = PurityArray(config=config, clock=clock, obs=self.obs)
        self.array.pipeline.checkpoint()
        #: The placement epoch this node has adopted.
        self.epoch = 0
        self.alive = True
        #: Volumes provisioned on this node (survive kill/revive: the
        #: substrate keeps them; recovery rebuilds the relations).
        self._volumes = {}
        # Heartbeat wiring (installed by start_heartbeats).
        self._loop = None
        self._mdm = None
        self._fabric = None
        self._interval = None

    # ------------------------------------------------------------------
    # Membership

    def start_heartbeats(self, loop, mdm, fabric, interval):
        """Begin the periodic heartbeat to the MDM on the event loop."""
        self._loop = loop
        self._mdm = mdm
        self._fabric = fabric
        self._interval = interval
        loop.call_in(interval, self._heartbeat)

    def _heartbeat(self):
        if not self.alive:
            # A killed controller sends nothing and stops rescheduling;
            # revive() restarts the cycle.
            return
        try:
            self._fabric.deliver(self.node_id, MDM_ADDRESS)
        except UnreachableError:
            # Partitioned: the beat is dropped; the MDM's silence
            # timers do the rest. Counted so a trace of a partition
            # window shows the missing beats.
            self.obs.metrics.counter("cluster.heartbeats_dropped").inc()
        else:
            self._mdm.heartbeat(self.node_id)
        self._loop.call_in(self._interval, self._heartbeat)

    # ------------------------------------------------------------------
    # Lifecycle

    def kill(self):
        """Crash the controller; the drive substrate survives."""
        if not self.alive:
            return
        self.alive = False
        self._shelf, self._boot_region, _clock = self.array.crash()

    def revive(self):
        """Recover a controller over the surviving substrate and rejoin.

        Keeps this node's ``obs`` (and with it the shared trace buffer)
        across the failover, exactly as single-array recovery does.
        """
        if self.alive:
            return
        self.array, _report = PurityArray.recover(
            self.config, self._shelf, self._boot_region, self.clock,
            obs=self.obs,
        )
        self.alive = True
        if self._loop is not None:
            # Announce immediately — the MDM sees a heartbeat from a
            # dead member and runs the rejoin protocol — then resume
            # the periodic cycle.
            self._heartbeat()

    # ------------------------------------------------------------------
    # Message handlers

    def _check(self, epoch):
        if not self.alive:
            raise ArrayDownError(self.node_id)
        if epoch < self.epoch:
            raise StaleEpochError(self.epoch)
        if epoch > self.epoch:
            self.epoch = epoch

    def update_map(self, epoch):
        """MDM push: adopt a newer placement epoch."""
        if self.alive and epoch > self.epoch:
            self.epoch = epoch

    def ensure_volume(self, volume, size):
        """Provision ``volume`` locally if this node has never held it."""
        if not self.alive:
            raise ArrayDownError(self.node_id)
        if volume not in self._volumes:
            self.array.create_volume(volume, size)
            self._volumes[volume] = size

    def handle_write(self, epoch, volume, offset, data, advance_clock=True):
        self._check(epoch)
        return self.array.write(volume, offset, data,
                                advance_clock=advance_clock)

    def handle_read(self, epoch, volume, offset, length, advance_clock=True):
        self._check(epoch)
        return self.array.read(volume, offset, length,
                               advance_clock=advance_clock)

    # Management-plane handlers (service front end / mgmt API). Same
    # liveness + epoch discipline as the data path: a stale caller is
    # told to refresh rather than mutating a volume that may have moved.

    def handle_unmap(self, epoch, volume, offset, length):
        self._check(epoch)
        return self.array.unmap(volume, offset, length)

    def handle_snapshot(self, epoch, volume, snapshot_name):
        self._check(epoch)
        return self.array.snapshot(volume, snapshot_name)

    def handle_destroy_snapshot(self, epoch, volume, snapshot_name):
        self._check(epoch)
        return self.array.destroy_snapshot(volume, snapshot_name)

    def handle_clone(self, epoch, volume, snapshot_name, new_volume):
        self._check(epoch)
        result = self.array.clone(volume, snapshot_name, new_volume)
        self._volumes[new_volume] = self._volumes.get(volume)
        return result

    def handle_destroy_volume(self, epoch, volume):
        self._check(epoch)
        self.array.destroy_volume(volume)
        self._volumes.pop(volume, None)

    # ------------------------------------------------------------------
    # Introspection

    @property
    def degrade_state(self):
        """The wrapped array's degradation-ladder state (oracle tag)."""
        return self.array.degrade.state
