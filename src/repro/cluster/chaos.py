"""Cluster-level chaos: kill whole arrays mid-workload, prove the ack.

The cluster analogue of :class:`repro.faults.chaos.ChaosHarness`: a
seeded zipfian workload runs against a :class:`~repro.cluster.cluster.
Cluster` while a :meth:`FaultPlan.generate_cluster
<repro.faults.plan.FaultPlan.generate_cluster>` schedule fires
array-kills, timed network partitions, and per-array drive failures.
The invariants asserted are the cluster-grade versions of the paper's
availability contract:

* **zero acknowledged-write loss** — every read returns exactly the
  bytes of the last *acknowledged* write to that slot (the ack means
  every serving replica held the bytes, so one array-sized failure
  cannot lose them); checks are tagged with the serving node's
  degradation-ladder state, extending the single-array "detected loss
  is never wrong bytes" oracle per state across nodes;
* **bounded reroute** — every primary failover the client waits out
  completes within ``ClusterConfig.reroute_bound`` simulated seconds;
* **replay determinism** — the fired-fault trace
  (:class:`~repro.faults.injector.FaultEvent` keys) is identical for
  identical seeds, making any cluster chaos failure replayable.
"""

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.cluster.mdm import ALIVE
from repro.errors import DataLossError, UncorrectableError
from repro.faults.injector import FaultEvent
from repro.faults.plan import (
    ARRAY_KILL,
    ARRAY_REVIVE,
    DRIVE_FAIL,
    NET_PARTITION,
    FaultPlan,
)
from repro.perf import PERF
from repro.sim.rand import RandomStream


class ClusterInvariantViolation(AssertionError):
    """A cluster chaos invariant broke (also recorded on the report)."""

    def __init__(self, invariant, detail):
        super().__init__("%s: %s" % (invariant, detail))
        self.invariant = invariant
        self.detail = detail


@dataclass
class ClusterChaosReport:
    """Everything one cluster chaos run observed."""

    seed: int = None
    ops: int = 0
    reads: int = 0
    writes: int = 0
    kills: int = 0
    revives: int = 0
    partitions: int = 0
    drive_fails: int = 0
    failovers: int = 0
    #: Per-failover reroute durations in simulated seconds.
    reroute_times: list = field(default_factory=list)
    stale_retries: int = 0
    volumes_moved: int = 0
    bytes_copied: int = 0
    #: Ladder state of the serving node -> byte-exact checks done there.
    reads_by_state: dict = field(default_factory=dict)
    #: Set when the run ended in *detected* loss (never legal under the
    #: generated one-failure-at-a-time schedules).
    data_loss: str = None
    violations: list = field(default_factory=list)
    #: Comparable fired-fault trace: same seed → identical list.
    trace: list = field(default_factory=list)

    @property
    def max_reroute(self):
        return max(self.reroute_times, default=0.0)


class ClusterChaosHarness:
    """One seeded cluster chaos run: workload + fault plan + invariants."""

    SAMPLE_EVERY = 8

    def __init__(self, seed, num_arrays=3, num_volumes=4, total_ops=240,
                 record_size=2048, record_slots=8, read_fraction=0.4,
                 maintenance_every=40, plan=None, tracing=False,
                 cluster_config=None):
        self.seed = seed
        self.total_ops = total_ops
        self.record_size = record_size
        self.record_slots = record_slots
        self.read_fraction = read_fraction
        self.maintenance_every = maintenance_every
        self.config = cluster_config or ClusterConfig(
            num_arrays=num_arrays, seed=seed
        )
        self.cluster = Cluster(self.config)
        self.obs = self.cluster.obs
        if tracing:
            self.cluster.enable_tracing()
        self.volumes = ["cvol%d" % i for i in range(num_volumes)]
        for volume in self.volumes:
            self.cluster.create_volume(
                volume, record_slots * record_size
            )
        if plan is None:
            first = next(iter(self.cluster.nodes.values()))
            plan = FaultPlan.generate_cluster(
                seed,
                total_ops,
                sorted(self.cluster.nodes),
                drive_names=sorted(first.array.drives),
                maintenance_every=maintenance_every,
            )
        self.plan = plan
        self._wstream = RandomStream(seed).fork("cluster-chaos-workload")
        #: Oracle: (volume, slot) -> the exact acknowledged bytes.
        self._expected = {}
        self._events = []
        self.report = ClusterChaosReport(seed=seed)

    # ------------------------------------------------------------------
    # Oracle

    def _slot_expected(self, volume, slot):
        key = (volume, slot)
        if key not in self._expected:
            self._expected[key] = bytes(self.record_size)
        return self._expected[key]

    def _check_read(self, where, volume, slot, data):
        state = self.cluster.nodes[self.cluster.client.last_read_node] \
            .degrade_state
        self.report.reads_by_state[state] = (
            self.report.reads_by_state.get(state, 0) + 1
        )
        expected = self._slot_expected(volume, slot)
        if data != expected:
            self._violate(
                "zero-acked-write-loss",
                "%s %s slot %d returned wrong bytes (ladder state %s, "
                "served by %s)" % (where, volume, slot, state,
                                   self.cluster.client.last_read_node),
            )

    def _violate(self, invariant, detail):
        self.report.violations.append((invariant, detail))
        PERF.incr("cluster-chaos-invariant-violation")
        raise ClusterInvariantViolation(invariant, detail)

    # ------------------------------------------------------------------
    # Fault firing

    def _record(self, op, spec):
        event = FaultEvent(op, self.cluster.clock.now, spec.kind,
                           spec.target, tuple(spec.params))
        self._events.append(event)
        if self.obs.tracing:
            self.obs.event("fault", kind=spec.kind, target=spec.target)
        PERF.incr("cluster-chaos-fault")

    def _fire(self, op, spec):
        if spec.kind == ARRAY_KILL:
            self.cluster.kill(spec.target)
            self.report.kills += 1
        elif spec.kind == ARRAY_REVIVE:
            self.cluster.revive(spec.target)
            self.report.revives += 1
        elif spec.kind == NET_PARTITION:
            self.cluster.partition(spec.target, spec.params[0])
            self.report.partitions += 1
        elif spec.kind == DRIVE_FAIL:
            node_id, drive = spec.target.split(":", 1)
            node = self.cluster.nodes[node_id]
            if node.alive and drive in node.array.drives \
                    and not node.array.drives[drive].failed:
                node.array.fail_drive(drive)
                self.report.drive_fails += 1
            else:
                return  # node down or drive already failed: no-op
        self._record(op, spec)

    # ------------------------------------------------------------------
    # Workload

    def _payload(self, op, volume, slot):
        if self._wstream.random() < 0.3:
            return self._wstream.randbytes(self.record_size)
        pattern = b"cluster-%d-%d-%s-%d|" % (
            self.seed, op, volume.encode("ascii"), slot
        )
        reps = self.record_size // len(pattern) + 1
        return (pattern * reps)[: self.record_size]

    def _run_op(self, op):
        flat = self._wstream.zipf_index(
            len(self.volumes) * self.record_slots
        )
        volume = self.volumes[flat // self.record_slots]
        slot = flat % self.record_slots
        offset = slot * self.record_size
        if self._wstream.random() < self.read_fraction:
            self.report.reads += 1
            data, _latency = self.cluster.read(
                volume, offset, self.record_size
            )
            self._check_read("op %d" % op, volume, slot, data)
        else:
            self.report.writes += 1
            payload = self._payload(op, volume, slot)
            self.cluster.write(volume, offset, payload)
            # The ack landed on every serving replica: this is now the
            # only legal content for the slot.
            self._expected[(volume, slot)] = payload

    # ------------------------------------------------------------------
    # Maintenance

    def _node_maintenance(self):
        """Per-array upkeep: replace failed drives, rebuild, scrub."""
        for node_id in sorted(self.cluster.nodes):
            node = self.cluster.nodes[node_id]
            if not node.alive:
                continue
            for drive_name in sorted(node.array.drives):
                if node.array.drives[drive_name].failed:
                    node.array.replace_drive(drive_name)
            node.array.service_health()
            node.array.rebuild()
            node.array.scrub()

    def _maintenance(self):
        """Slot-boundary upkeep: settle membership, then repair arrays.

        ``settle`` advances simulated time so partitions heal, silent
        members get declared dead, rejoins complete, and every refresh
        copy drains — the cluster-level scrub pass that separates two
        disruptions.
        """
        self.cluster.settle()
        self._node_maintenance()

    # ------------------------------------------------------------------
    # Final verification

    def _final_verify(self):
        self._maintenance()
        # Every volume's primary must be clean and alive, and every
        # slot must read back its acknowledged bytes through the
        # normal routed path.
        for volume in self.volumes:
            replicas = self.cluster.mdm.routing(volume)
            primary = replicas[0]
            if self.cluster.mdm.status(primary) != ALIVE:
                self._violate(
                    "primary-alive",
                    "volume %s routed to %s (%s)"
                    % (volume, primary, self.cluster.mdm.status(primary)),
                )
            if primary not in self.cluster.mdm.clean_replicas(volume):
                self._violate(
                    "primary-clean",
                    "volume %s primary %s is not in the clean set"
                    % (volume, primary),
                )
            for slot in range(self.record_slots):
                data, _latency = self.cluster.read(
                    volume, slot * self.record_size, self.record_size
                )
                self._check_read("final", volume, slot, data)

    # ------------------------------------------------------------------
    # Entry point

    def run(self):
        """Execute the schedule; returns the :class:`ClusterChaosReport`.

        Raises :class:`ClusterInvariantViolation` the moment an
        invariant breaks. Detected loss (``DataLossError``) is recorded
        and is itself a violation under the generated one-failure-at-a-
        time schedules — with synchronous replication, no single
        array-sized failure may lose an acknowledged write.
        """
        try:
            for op in range(self.total_ops):
                for spec in self.plan.due(op):
                    self._fire(op, spec)
                self._run_op(op)
                self.report.ops += 1
                PERF.incr("cluster-chaos-op")
                if self.obs.tracing and (op + 1) % self.SAMPLE_EVERY == 0:
                    self.cluster.observe_sample()
                if (op + 1) % self.maintenance_every == 0:
                    self._maintenance()
            self._final_verify()
        except (DataLossError, UncorrectableError) as exc:
            self.report.data_loss = str(exc)
            PERF.incr("cluster-chaos-data-loss-detected")
            self._violate(
                "zero-acked-write-loss",
                "detected loss under a survivable schedule: %s" % exc,
            )
        client = self.cluster.client
        self.report.failovers = len(client.reroute_times)
        self.report.reroute_times = list(client.reroute_times)
        self.report.stale_retries = int(
            self.obs.metrics.counter("cluster.stale_retries").value
        )
        self.report.volumes_moved = int(
            self.obs.metrics.counter(
                "cluster.rebalance.volumes_moved"
            ).value
        )
        self.report.bytes_copied = int(
            self.obs.metrics.counter(
                "cluster.rebalance.bytes_copied"
            ).value
        )
        self.report.trace = [event.key() for event in self._events]
        bound = self.config.reroute_bound + self.config.heartbeat_interval
        for elapsed in self.report.reroute_times:
            if elapsed > bound:
                self._violate(
                    "bounded-reroute",
                    "failover took %.3f s (bound %.3f s)"
                    % (elapsed, bound),
                )
        return self.report

    def export_obs(self, directory, prefix="cluster-chaos"):
        """Write the run's trace + metrics JSONL under ``directory``."""
        return self.cluster.export_obs(directory, prefix=prefix)
