"""The metadata manager: membership, placement, and replica hygiene.

The MDM is the cluster's single source of truth (the paper's two-HA-
controller story scaled out: one small, replicable brain over N dumb
data arrays). It owns three interlocking pieces of state:

**Membership** — each node is ``alive``, ``suspect``, or ``dead``,
driven entirely by heartbeat timestamps on the simulated clock: silence
past ``suspect_after`` makes a member suspect (skipped by writes, no
new placements), past ``dead_after`` makes it dead (its volumes are
rebalanced away). A heartbeat from a suspect member restores it; a
heartbeat from a dead member runs the rejoin protocol. Both paths mark
the returning node's replicas *dirty* — it missed writes while away —
and schedule refresh copies before the node can serve again.

**Placement** — the epoch-stamped :class:`~repro.cluster.placement.
PlacementMap`. Every membership change mutates the map, bumps the
epoch, and pushes the new epoch to reachable nodes; clients carrying an
older epoch get :class:`~repro.errors.StaleEpochError` from nodes and
refresh from here.

**Clean sets** — per volume, the replicas known to hold every
acknowledged byte. Primaries are only ever chosen from the clean set;
a volume whose clean replicas all die is *detected* loss (reported,
never wrong bytes — the cluster face of the single-array ladder
contract). Refresh copies stream a volume from a clean source to a
dirty replica in rate-limited chunks on the event loop, and the chunk
callback re-reads the source at copy time, so a client write landing
between chunks can never be undone by a stale copy.
"""

from repro.cluster.placement import PlacementMap
from repro.errors import DataLossError

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

#: Give up on a refresh copy that cannot find a clean source after
#: this many rescheduled attempts (the schedule generator never
#: produces this; it bounds hand-written pathological scenarios).
COPY_MAX_STALLS = 256


class Member:
    """One node's membership record."""

    __slots__ = ("node_id", "status", "last_heartbeat")

    def __init__(self, node_id, now):
        self.node_id = node_id
        self.status = ALIVE
        self.last_heartbeat = now


class MetadataManager:
    """Volume→array placement plus heartbeat-driven membership."""

    def __init__(self, config, clock, loop, fabric, nodes, obs):
        self.config = config
        self.clock = clock
        self.loop = loop
        self.fabric = fabric
        #: node id -> ArrayNode, insertion order fixed at construction.
        self.nodes = nodes
        self.obs = obs
        self.members = {
            node_id: Member(node_id, clock.now) for node_id in nodes
        }
        self.placement = PlacementMap(
            replication=config.effective_replication
        )
        self.placement.set_members(sorted(nodes))
        #: volume -> provisioned size in bytes.
        self.volume_sizes = {}
        #: volume -> set of node ids holding every acknowledged byte.
        self._clean = {}
        #: Volumes whose every clean replica died: detected loss.
        self.lost = set()
        #: (volume, dst) pairs with a refresh copy in flight.
        self._copies_pending = set()
        self._members_alive = obs.metrics.gauge("cluster.members_alive")
        self._epoch_gauge = obs.metrics.gauge("cluster.epoch")
        self._heartbeats = obs.metrics.counter("cluster.heartbeats")
        self._moved = obs.metrics.counter("cluster.rebalance.volumes_moved")
        self._copied = obs.metrics.counter("cluster.rebalance.bytes_copied")
        self._members_alive.set(len(nodes))
        self._ticking = False

    # ------------------------------------------------------------------
    # Views

    def status(self, node_id):
        return self.members[node_id].status

    def alive_members(self):
        return sorted(n for n, m in self.members.items()
                      if m.status == ALIVE)

    def clean_replicas(self, volume):
        return sorted(self._clean.get(volume, ()))

    def pending_copies(self):
        return len(self._copies_pending)

    @property
    def epoch(self):
        return self.placement.epoch

    # ------------------------------------------------------------------
    # Volumes

    def create_volume(self, volume, size):
        """Place and provision a volume on its replica set."""
        epoch, replicas = self.placement.add_volume(volume)
        self.volume_sizes[volume] = size
        for node_id in replicas:
            self.nodes[node_id].ensure_volume(volume, size)
        # Freshly provisioned replicas are identical (all zeros): the
        # whole set starts clean.
        self._clean[volume] = set(replicas)
        self._push_epochs()
        return epoch, replicas

    def clone_volume(self, parent, snapshot, new_volume):
        """Place a clone *pinned* to its parent's replica set.

        The snapshot's bytes already live on the parent's replicas, so
        rendezvous placement would turn a free clone into a data copy.
        The clone is provisioned by ``handle_clone`` on each replica;
        here only the map and clean set are updated.
        """
        parent_replicas = self.routing(parent)
        if not parent_replicas:
            raise DataLossError("volume %s has no replicas" % parent)
        epoch, replicas = self.placement.adopt_volume(
            new_volume, parent_replicas
        )
        self.volume_sizes[new_volume] = self.volume_sizes[parent]
        # The clone starts clean exactly where its parent is clean: a
        # dirty parent replica has a stale snapshot too.
        self._clean[new_volume] = set(self._clean.get(parent, ()))
        self._push_epochs()
        return epoch, replicas

    def destroy_volume(self, volume):
        """Drop a volume from the map, clean sets, and size catalog."""
        self.placement.drop_volume(volume)
        self.volume_sizes.pop(volume, None)
        self._clean.pop(volume, None)
        self.lost.discard(volume)
        self._push_epochs()

    def routing(self, volume):
        """The replica set a client should use right now.

        Raises :class:`~repro.errors.DataLossError` for volumes whose
        acknowledged bytes are provably gone — detected loss, reported
        at routing time rather than served wrong.
        """
        if volume in self.lost:
            raise DataLossError(
                "volume %s lost every clean replica" % volume
            )
        return self.placement.replicas(volume)

    # ------------------------------------------------------------------
    # Heartbeats and the failure detector

    def start(self):
        """Schedule the periodic failure-detector tick."""
        if not self._ticking:
            self._ticking = True
            self.loop.call_in(self.config.heartbeat_interval, self._tick)

    def heartbeat(self, node_id):
        member = self.members[node_id]
        member.last_heartbeat = self.clock.now
        self._heartbeats.inc()
        if member.status == SUSPECT:
            self._restore(member)
        elif member.status == DEAD:
            self._rejoin(member)

    def _tick(self):
        now = self.clock.now
        for node_id in sorted(self.members):
            member = self.members[node_id]
            if member.status == DEAD:
                continue
            silence = now - member.last_heartbeat
            if silence > self.config.dead_after:
                self._declare_dead(member)
            elif silence > self.config.suspect_after \
                    and member.status == ALIVE:
                self._suspect(member)
        self.loop.call_in(self.config.heartbeat_interval, self._tick)

    def report_unreachable(self, node_id):
        """Client-side evidence: a message to ``node_id`` bounced.

        Marks the member suspect immediately (no waiting out the
        silence window) and dirties its replicas — writes acknowledged
        from here on may legally skip it.
        """
        member = self.members[node_id]
        if member.status == ALIVE:
            self._suspect(member)

    # ------------------------------------------------------------------
    # Membership transitions

    def _membership_event(self, node_id, to_status, **attrs):
        if self.obs.tracing:
            self.obs.event("cluster.membership", node=node_id,
                           status=to_status, epoch=self.placement.epoch,
                           **attrs)

    def _suspect(self, member):
        member.status = SUSPECT
        # Writes stop waiting on a suspect, so from the next ack on its
        # replicas may be stale: dirty them all now.
        self._dirty_everywhere(member.node_id)
        self._members_alive.set(len(self.alive_members()))
        self._membership_event(member.node_id, SUSPECT)

    def _restore(self, member):
        """A suspect member heartbeated: alive again, but dirty.

        Every volume it holds gets a refresh copy before it counts as
        clean again (it may have missed acknowledged writes while
        writes skipped it).
        """
        member.status = ALIVE
        self._members_alive.set(len(self.alive_members()))
        self._membership_event(member.node_id, ALIVE, via="restore")
        for volume in self.placement.volumes_on(member.node_id):
            self._ensure_clean_copy(volume, member.node_id)

    def _declare_dead(self, member):
        """Silence past ``dead_after``: rebalance the member away."""
        member.status = DEAD
        self._dirty_everywhere(member.node_id)
        # Prefer clean survivors as the new primaries — promotion is
        # free and the whole point of synchronous replication.
        preferred = {}
        for volume in self.placement.volumes_on(member.node_id,
                                                primary_only=True):
            clean = [n for n in self.placement.replicas(volume)
                     if n != member.node_id
                     and n in self._clean.get(volume, ())
                     and self.members[n].status == ALIVE]
            if clean:
                preferred[volume] = clean[0]
        epoch, moved = self.placement.leave(
            member.node_id, preferred_primaries=preferred
        )
        self._members_alive.set(len(self.alive_members()))
        self._membership_event(member.node_id, DEAD, moved=len(moved))
        self._apply_moves(moved)
        self._push_epochs()

    def _rejoin(self, member):
        """A dead member heartbeated (revive or healed partition)."""
        member.status = ALIVE
        epoch, moved = self.placement.join(member.node_id)
        self._members_alive.set(len(self.alive_members()))
        self._membership_event(member.node_id, ALIVE, via="rejoin",
                               moved=len(moved))
        self._apply_moves(moved)
        # Everything the returning node holds is stale until refreshed.
        for volume in self.placement.volumes_on(member.node_id):
            self._ensure_clean_copy(volume, member.node_id)
        self._push_epochs()

    def _dirty_everywhere(self, node_id):
        for clean in self._clean.values():
            clean.discard(node_id)

    def _apply_moves(self, moved):
        """React to a placement delta: demote dirty primaries, schedule
        refresh copies for replicas that do not hold the volume's
        acknowledged bytes, and detect volumes with no clean replica.
        """
        if moved:
            self._moved.inc(len(moved))
        for volume in sorted(moved):
            replicas = self.placement.replicas(volume)
            if not replicas:
                self._mark_lost(volume)
                continue
            clean = self._clean.get(volume, set())
            # A replica dropped from the set stops receiving writes, so
            # its copy goes stale on the next ack: it must not linger in
            # the clean set, or a later re-add would skip its refresh.
            clean &= set(replicas)
            self._clean[volume] = clean
            alive_clean = [n for n in replicas if n in clean
                           and self.members[n].status == ALIVE]
            if not alive_clean:
                self._mark_lost(volume)
                continue
            if replicas[0] not in alive_clean:
                # Never expose a dirty primary: reorder so a clean
                # replica serves while the refresh copy runs.
                self._demote(volume, alive_clean[0])
                replicas = self.placement.replicas(volume)
            for node_id in replicas:
                if node_id not in clean:
                    # Provision eagerly so client writes reaching this
                    # replica before its refresh copy starts have a
                    # volume to land in (reachability permitting; the
                    # copy step re-provisions an isolated target).
                    if self.members[node_id].status != DEAD \
                            and self.nodes[node_id].alive \
                            and not self.fabric.isolated(node_id):
                        self.nodes[node_id].ensure_volume(
                            volume, self.volume_sizes[volume]
                        )
                    self._ensure_clean_copy(volume, node_id)

    def _demote(self, volume, clean_primary):
        """Reorder ``volume``'s replica list to lead with a clean one."""
        self.placement.set_primary(volume, clean_primary)

    def _mark_lost(self, volume):
        if volume not in self.lost:
            self.lost.add(volume)
            self._membership_event(volume, "lost")

    # ------------------------------------------------------------------
    # Refresh copies

    def _ensure_clean_copy(self, volume, dst):
        """Schedule a rate-limited refresh of ``volume`` onto ``dst``."""
        if volume in self.lost or dst in self._clean.get(volume, ()):
            return
        key = (volume, dst)
        if key in self._copies_pending:
            return
        self._copies_pending.add(key)
        state = {"offset": 0, "stalls": 0}
        self.loop.call_in(self.config.copy_interval,
                          self._copy_step, volume, dst, state)

    def _copy_source(self, volume, dst):
        for node_id in self.placement.replicas(volume):
            if node_id == dst:
                continue
            if node_id in self._clean.get(volume, ()) \
                    and self.members[node_id].status == ALIVE \
                    and not self.fabric.isolated(node_id):
                return node_id
        return None

    def _copy_step(self, volume, dst, state):
        """Copy one chunk; the read happens *now*, inside this callback,
        so a client write between chunks is already in the source bytes
        this step streams — the copy can never resurrect stale data."""
        key = (volume, dst)
        if key not in self._copies_pending:
            return
        if volume not in self.placement.assignments \
                or dst not in self.placement.replicas(volume) \
                or self.members[dst].status != ALIVE \
                or volume in self.lost:
            # The world moved on (dst died, volume moved or was lost):
            # abandon this copy; a future placement delta reschedules.
            self._copies_pending.discard(key)
            return
        src = self._copy_source(volume, dst)
        if src is None or self.fabric.isolated(dst):
            state["stalls"] += 1
            if state["stalls"] > COPY_MAX_STALLS:
                self._copies_pending.discard(key)
                self._mark_lost(volume)
                return
            self.loop.call_in(self.config.heartbeat_interval,
                              self._copy_step, volume, dst, state)
            return
        size = self.volume_sizes[volume]
        offset = state["offset"]
        chunk = min(self.config.copy_chunk_bytes, size - offset)
        data, _lat = self.nodes[src].array.read(
            volume, offset, chunk, advance_clock=False
        )
        self.nodes[dst].ensure_volume(volume, size)
        self.nodes[dst].array.write(volume, offset, data,
                                    advance_clock=False)
        self._copied.inc(chunk)
        state["offset"] = offset + chunk
        if state["offset"] >= size:
            self._copies_pending.discard(key)
            self._clean.setdefault(volume, set()).add(dst)
            if self.obs.tracing:
                self.obs.event("cluster.copy", volume=volume, src=src,
                               dst=dst, nbytes=size)
        else:
            self.loop.call_in(self.config.copy_interval,
                              self._copy_step, volume, dst, state)

    # ------------------------------------------------------------------
    # Epoch distribution

    def _push_epochs(self):
        """Push the current epoch to every reachable alive node."""
        epoch = self.placement.epoch
        self._epoch_gauge.set(epoch)
        for node_id in sorted(self.nodes):
            if self.members[node_id].status == DEAD:
                continue
            if self.fabric.isolated(node_id):
                continue
            self.nodes[node_id].update_map(epoch)
