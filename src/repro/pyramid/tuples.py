"""Immutable facts, sequence numbers, and their wire encoding.

Everything Purity persists is an immutable fact (Section 3.2): a keyed
tuple stamped with a sequence number. Facts are idempotent and
commutative to insert, which is what makes recovery a set union
(Section 4.3) and lets confused or lagging writers reorder operations
safely.

The wire encoding is a small self-describing tagged format (varints,
length-prefixed bytes/str) used for NVRAM commit records and segment
log records. It is deliberately simple — the *compressed* metadata page
format of Section 4.9 lives in :mod:`repro.metadata.dictpage`; this
format is for the log path, where robustness beats density.
"""

import itertools
import threading
from dataclasses import dataclass

from repro.errors import EncodingError

_TAG_INT = 0
_TAG_BYTES = 1
_TAG_STR = 2
_TAG_NONE = 3
_TAG_TUPLE = 4


@dataclass(frozen=True, order=True)
class Fact:
    """One immutable tuple: ``key`` fields, ``value`` fields, ``seqno``.

    Ordering is (key, seqno, value) so sorted runs cluster by key with
    versions in sequence order — exactly the order patches store.
    """

    key: tuple
    seqno: int
    value: tuple = ()

    def __post_init__(self):
        if not isinstance(self.key, tuple):
            raise TypeError("fact key must be a tuple, got %r" % (self.key,))
        if not isinstance(self.value, tuple):
            raise TypeError("fact value must be a tuple, got %r" % (self.value,))
        if self.seqno < 0:
            raise ValueError("sequence numbers are non-negative")


class SequenceGenerator:
    """Monotonic sequence-number source.

    Sequence numbers are the controlled source of non-monotonicity in
    Purity's otherwise monotone logic (Section 3.2); they are never
    reused, which is also what keeps elide tables collapsible
    (Section 4.10). Thread-safe because benchmark drivers may share one.
    """

    def __init__(self, start=1):
        if start < 1:
            raise ValueError("sequence numbers start at 1 or later")
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._last = start - 1

    @property
    def last_issued(self):
        """The most recently issued sequence number (start-1 if none)."""
        return self._last

    def next(self):
        """Issue the next sequence number."""
        with self._lock:
            self._last = next(self._counter)
            return self._last

    def advance_past(self, seqno):
        """Ensure future numbers exceed ``seqno`` (used by recovery)."""
        with self._lock:
            if seqno >= self._last:
                self._counter = itertools.count(seqno + 1)
                self._last = seqno


def _encode_varint(value, out):
    if value < 0:
        raise EncodingError("varint cannot encode negative %d" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data, offset):
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise EncodingError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise EncodingError("varint too long")


def _zigzag(value):
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value):
    return (value >> 1) ^ -(value & 1)


def _encode_field(field, out):
    if field is None:
        out.append(_TAG_NONE)
    elif isinstance(field, bool):
        # bools are ints in Python; encode as int so decode returns 0/1.
        out.append(_TAG_INT)
        _encode_varint(_zigzag(int(field)), out)
    elif isinstance(field, int):
        out.append(_TAG_INT)
        _encode_varint(_zigzag(field), out)
    elif isinstance(field, bytes):
        out.append(_TAG_BYTES)
        _encode_varint(len(field), out)
        out.extend(field)
    elif isinstance(field, str):
        encoded = field.encode("utf-8")
        out.append(_TAG_STR)
        _encode_varint(len(encoded), out)
        out.extend(encoded)
    elif isinstance(field, tuple):
        out.append(_TAG_TUPLE)
        _encode_varint(len(field), out)
        for item in field:
            _encode_field(item, out)
    else:
        raise EncodingError("cannot encode field of type %s" % type(field).__name__)


def _decode_field(data, offset):
    if offset >= len(data):
        raise EncodingError("truncated field")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_INT:
        raw, offset = _decode_varint(data, offset)
        return _unzigzag(raw), offset
    if tag == _TAG_BYTES:
        length, offset = _decode_varint(data, offset)
        if offset + length > len(data):
            raise EncodingError("truncated bytes field")
        return bytes(data[offset : offset + length]), offset + length
    if tag == _TAG_STR:
        length, offset = _decode_varint(data, offset)
        if offset + length > len(data):
            raise EncodingError("truncated str field")
        return data[offset : offset + length].decode("utf-8"), offset + length
    if tag == _TAG_TUPLE:
        count, offset = _decode_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_field(data, offset)
            items.append(item)
        return tuple(items), offset
    raise EncodingError("unknown field tag %d" % tag)


def encode_value(values):
    """Encode a tuple of primitive fields to bytes."""
    out = bytearray()
    _encode_varint(len(values), out)
    for field in values:
        _encode_field(field, out)
    return bytes(out)


def decode_value(data, offset=0):
    """Decode a tuple encoded by :func:`encode_value`; returns (tuple, end)."""
    count, offset = _decode_varint(data, offset)
    fields = []
    for _ in range(count):
        field, offset = _decode_field(data, offset)
        fields.append(field)
    return tuple(fields), offset


def encode_fact(fact):
    """Serialize one fact to bytes."""
    out = bytearray()
    _encode_varint(fact.seqno, out)
    out.extend(encode_value(fact.key))
    out.extend(encode_value(fact.value))
    return bytes(out)


def decode_fact(data, offset=0):
    """Deserialize one fact; returns (Fact, end offset)."""
    seqno, offset = _decode_varint(data, offset)
    key, offset = decode_value(data, offset)
    value, offset = decode_value(data, offset)
    return Fact(key=key, seqno=seqno, value=value), offset
