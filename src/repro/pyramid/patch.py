"""Patches: immutable sorted runs of facts.

Patches are the pyramid's analogue of LSM-tree levels/components
(Section 4.8): each describes the difference between one version of the
index and the next, tagged with the sequence-number range it covers.
Merging patches is idempotent and always safe, which is what lets
everything below the pyramid's top level run lock-free.
"""

import bisect
import heapq


class Patch:
    """An immutable, key-sorted run of facts with a sequence range."""

    __slots__ = ("facts", "_keys", "min_seq", "max_seq")

    def __init__(self, facts):
        ordered = sorted(facts)
        self.facts = tuple(ordered)
        self._keys = [fact.key for fact in ordered]
        if ordered:
            self.min_seq = min(fact.seqno for fact in ordered)
            self.max_seq = max(fact.seqno for fact in ordered)
        else:
            self.min_seq = 0
            self.max_seq = -1

    def __len__(self):
        return len(self.facts)

    def __iter__(self):
        return iter(self.facts)

    @property
    def key_range(self):
        """(smallest key, largest key), or None for an empty patch."""
        if not self.facts:
            return None
        return self._keys[0], self._keys[-1]

    def lookup_all(self, key):
        """All facts with exactly this key, in seqno order."""
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return list(self.facts[lo:hi])

    def lookup_latest(self, key, max_seq=None):
        """Latest fact for ``key`` with seqno <= ``max_seq`` (None = any)."""
        best = None
        for fact in self.lookup_all(key):
            if max_seq is not None and fact.seqno > max_seq:
                continue
            if best is None or fact.seqno > best.seqno:
                best = fact
        return best

    def scan(self, lo_key=None, hi_key=None):
        """Yield facts with lo_key <= key <= hi_key in (key, seqno) order."""
        start = 0 if lo_key is None else bisect.bisect_left(self._keys, lo_key)
        if hi_key is None:
            stop = len(self.facts)
        else:
            stop = bisect.bisect_right(self._keys, hi_key)
        return iter(self.facts[start:stop])

    def __repr__(self):
        return "Patch(%d facts, seq [%d, %d])" % (
            len(self.facts),
            self.min_seq,
            self.max_seq,
        )


def merge_patches(patches, drop=None):
    """Merge sorted patches into one, deduplicating identical facts.

    ``drop`` is an optional predicate (fact -> bool); matching facts are
    discarded during the merge — this is how the garbage collector
    applies elide records (Section 4.10), reclaiming space at merge time
    instead of waiting for tombstones to reach the bottom level.

    The merge is idempotent: merging a merged patch with itself or
    re-running the merge yields the same facts.
    """
    streams = [iter(patch) for patch in patches]
    merged = []
    previous = None
    for fact in heapq.merge(*streams):
        if fact == previous:
            continue  # identical duplicate fact: facts are idempotent
        previous = fact
        if drop is not None and drop(fact):
            continue
        merged.append(fact)
    return Patch(merged)
