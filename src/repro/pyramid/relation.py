"""Relations: a pyramid plus its elide rules.

Purity stores metadata in "log structured relational structures"
(Section 3): each relation is a set of immutable facts indexed by a
pyramid, with deletion policy expressed as elide rules over an elide
table (Section 4.10). Readers may run in a relaxed mode that ignores
retractions entirely, observing tuples that no longer exist — which is
safe because facts are immutable.
"""

from repro.pyramid.elision import ElideTable
from repro.pyramid.pyramid import Pyramid
from repro.pyramid.tuples import Fact


class Relation:
    """A named table of immutable facts with predicate-based deletion."""

    def __init__(self, name, key_arity=1, fanout=8):
        if key_arity < 1:
            raise ValueError("key arity must be at least 1")
        self.name = name
        self.key_arity = key_arity
        self.pyramid = Pyramid(name, fanout=fanout)
        self.elide_table = ElideTable(name + ".elide")

    def make_fact(self, key, value, seqno):
        """Build a fact, validating key arity."""
        key = tuple(key)
        if len(key) != self.key_arity:
            raise ValueError(
                "%s expects %d key fields, got %r" % (self.name, self.key_arity, key)
            )
        return Fact(key=key, seqno=seqno, value=tuple(value))

    def insert(self, key, value, seqno):
        """Insert one fact; returns it. Idempotent and commutative."""
        fact = self.make_fact(key, value, seqno)
        self.pyramid.insert(fact)
        return fact

    def insert_fact(self, fact):
        """Insert a pre-built fact (recovery path)."""
        self.pyramid.insert(fact)

    def get(self, key, max_seq=None, ignore_elisions=False):
        """Latest visible fact for ``key``, or None.

        ``ignore_elisions=True`` is the relaxed consistency mode from
        Section 3.2: the reader skips the retraction check and may see
        deleted tuples.
        """
        fact = self.pyramid.lookup_latest(tuple(key), max_seq)
        if fact is None:
            return None
        if not ignore_elisions and self.elide_table.is_elided(fact):
            return None
        return fact

    def get_value(self, key, max_seq=None, default=None):
        """The value tuple of the latest visible fact, or ``default``."""
        fact = self.get(key, max_seq)
        return fact.value if fact is not None else default

    def scan(self, lo_key=None, hi_key=None, ignore_elisions=False):
        """Yield the newest visible fact per key in key order."""
        for fact in self.pyramid.scan_latest(lo_key, hi_key):
            if ignore_elisions or not self.elide_table.is_elided(fact):
                yield fact

    def elide_key_range(self, lo, hi, field=0):
        """Atomically delete all facts with key[field] in [lo, hi]."""
        self.elide_table.elide_key_range(lo, hi, field=field)

    def elide_prefix(self, prefix, as_of_seq=None):
        """Atomically delete all facts whose key starts with ``prefix``."""
        self.elide_table.elide_prefix(prefix, as_of_seq=as_of_seq)

    def seal(self):
        """Seal the memtable into a patch (segment-writer hand-off)."""
        return self.pyramid.seal()

    def compact(self):
        """Background merge; drops elided facts during the merge."""
        return self.pyramid.maybe_compact(drop=self.elide_table.is_elided)

    def flatten(self):
        """Merge the whole pyramid into one patch, applying elisions."""
        self.pyramid.seal()
        return self.pyramid.merge(drop=self.elide_table.is_elided)

    def live_fact_count(self):
        """Visible facts (latest version per key, elisions applied)."""
        return sum(1 for _ in self.scan())

    def stored_fact_count(self):
        """Physical facts held, including superseded and elided ones."""
        return self.pyramid.fact_count
