"""The monotonic write-ahead log (paper Figure 4).

Commits are expressed as batches of immutable facts that flow through
the system: a batch is appended to NVRAM (this is the client-visible
commit point, tens of microseconds), buffered in DRAM, and later
written into segios by the segment writer, after which the NVRAM
records are trimmed. Because facts are idempotent, replaying a trimmed
or duplicate record during recovery is harmless — recovery is a set
union (Section 4.3).
"""

from repro.errors import EncodingError
from repro.pyramid.tuples import decode_fact, decode_value, encode_fact, encode_value


def encode_commit_record(relation_name, facts):
    """Serialize one commit batch for NVRAM or a segment log record."""
    out = bytearray()
    out.extend(encode_value((relation_name, len(facts))))
    for fact in facts:
        out.extend(encode_fact(fact))
    return bytes(out)


def decode_commit_record(data, offset=0):
    """Inverse of :func:`encode_commit_record`; returns (name, facts, end)."""
    header, offset = decode_value(data, offset)
    if len(header) != 2:
        raise EncodingError("malformed commit record header %r" % (header,))
    relation_name, count = header
    facts = []
    for _ in range(count):
        fact, offset = decode_fact(data, offset)
        facts.append(fact)
    return relation_name, facts, offset


class MonotonicWAL:
    """Commit pipeline front half: NVRAM persistence of fact batches."""

    def __init__(self, nvram):
        self.nvram = nvram
        self._pending = []  # (record_id, relation_name, facts) not yet in a segment
        self._persisted_through = -1
        #: Fault-injection crashpoint router (see :mod:`repro.faults`).
        self.crashpoints = None
        self.commits = 0
        self.commit_bytes = 0

    @property
    def pending_count(self):
        """Commit records not yet written into a segment."""
        return len(self._pending)

    def commit(self, relation_name, facts):
        """Persist one batch of facts; returns (record_id, latency).

        The returned latency is the client-visible commit cost — this is
        the point at which Purity acknowledges an application write.
        """
        payload = encode_commit_record(relation_name, facts)
        cp = self.crashpoints
        if cp is not None:
            cp.hit("nvram.pre-append", nvram=self.nvram)
        record_id, latency = self.nvram.append(payload)
        if cp is not None:
            # An armed NVRAM-torn fault fires here: the appended record
            # is dropped (never acknowledged) and the controller dies.
            cp.hit("nvram.post-append", nvram=self.nvram, record_id=record_id)
        self._pending.append((record_id, relation_name, list(facts)))
        self.commits += 1
        self.commit_bytes += len(payload)
        return record_id, latency

    def pending_records(self):
        """Snapshot of unpersisted commit records (for the segment writer)."""
        return list(self._pending)

    def mark_persisted(self, record_id):
        """Note that the segment writer persisted records through ``record_id``.

        Trims NVRAM and the pending list. Sequence numbers are monotone,
        so everything at or below ``record_id`` is durable in segments.
        """
        self._persisted_through = max(self._persisted_through, record_id)
        self._pending = [
            entry for entry in self._pending if entry[0] > self._persisted_through
        ]
        self.nvram.trim(self._persisted_through)

    def recovery_scan(self):
        """Read surviving commit records from NVRAM after a crash.

        Returns ([(relation_name, facts)], simulated latency). Records
        already persisted to segments may appear again; inserting their
        facts twice is harmless by design.
        """
        records, latency = self.nvram.scan()
        batches = []
        for _record_id, payload in records:
            relation_name, facts, _end = decode_commit_record(payload)
            batches.append((relation_name, facts))
        return batches, latency
