"""The DRAM-resident, index-ordered staging area for recent facts.

Section 4.8: persist operations assign a sequence number to a batch of
tuples and insert them into NVRAM; each batch is also cached in DRAM
where it is sorted and indexed in key order. The memtable is that DRAM
cache. Sealing it produces a :class:`~repro.pyramid.patch.Patch` for
the segment writer.
"""

from repro.pyramid.patch import Patch


class MemTable:
    """Mutable key-indexed buffer of recent facts."""

    def __init__(self):
        self._by_key = {}
        self._count = 0
        self.min_seq = None
        self.max_seq = None

    def __len__(self):
        return self._count

    def insert(self, fact):
        """Add one fact. Re-inserting an identical fact is a no-op."""
        versions = self._by_key.setdefault(fact.key, [])
        if fact in versions:
            return
        versions.append(fact)
        self._count += 1
        if self.min_seq is None or fact.seqno < self.min_seq:
            self.min_seq = fact.seqno
        if self.max_seq is None or fact.seqno > self.max_seq:
            self.max_seq = fact.seqno

    def lookup_all(self, key):
        """All buffered facts for ``key`` in seqno order."""
        return sorted(self._by_key.get(key, []), key=lambda fact: fact.seqno)

    def lookup_latest(self, key, max_seq=None):
        """Latest buffered fact for ``key`` with seqno <= ``max_seq``."""
        best = None
        for fact in self._by_key.get(key, ()):
            if max_seq is not None and fact.seqno > max_seq:
                continue
            if best is None or fact.seqno > best.seqno:
                best = fact
        return best

    def to_patch(self):
        """Snapshot the current contents as an immutable patch."""
        facts = [fact for versions in self._by_key.values() for fact in versions]
        return Patch(facts)

    def clear(self):
        """Discard all buffered facts."""
        self._by_key.clear()
        self._count = 0
        self.min_seq = None
        self.max_seq = None

    def keys(self):
        """Iterate buffered keys (unordered)."""
        return iter(self._by_key)
