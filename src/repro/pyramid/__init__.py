"""Log-structured merge indexes ("pyramids") and monotonic facts.

Section 3.2 and 4.8: Purity represents all persistent state as
immutable facts carrying sequence numbers; metadata lives in relations
indexed by LSM trees the paper calls *pyramids*, built from sorted
*patches* combined by idempotent merge/flatten operations. Deletion is
by *elision* — predicate tuples in a side table — rather than
tombstones (Section 4.10).
"""

from repro.pyramid.tuples import (
    Fact,
    SequenceGenerator,
    decode_fact,
    decode_value,
    encode_fact,
    encode_value,
)
from repro.pyramid.memtable import MemTable
from repro.pyramid.patch import Patch, merge_patches
from repro.pyramid.pyramid import Pyramid
from repro.pyramid.elision import ElideTable, KeyRangePredicate, KeyPrefixPredicate
from repro.pyramid.relation import Relation
from repro.pyramid.wal import MonotonicWAL

__all__ = [
    "Fact",
    "SequenceGenerator",
    "encode_fact",
    "decode_fact",
    "encode_value",
    "decode_value",
    "MemTable",
    "Patch",
    "merge_patches",
    "Pyramid",
    "ElideTable",
    "KeyRangePredicate",
    "KeyPrefixPredicate",
    "Relation",
    "MonotonicWAL",
]
