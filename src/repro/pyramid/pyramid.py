"""The pyramid: Purity's log-structured merge index (Section 4.8).

A pyramid is a memtable plus a stack of immutable patches, newest
first. Insertions land in the memtable; sealing produces a patch for
the segment writer. Merge combines patches into one and flatten swaps
the merged patch in for its inputs — both idempotent, so index
maintenance is deadlock-free and an interrupted merge can simply be
retried (or discarded) after a crash.
"""

from repro.pyramid.memtable import MemTable
from repro.pyramid.patch import merge_patches


class Pyramid:
    """An LSM index over facts."""

    def __init__(self, name, fanout=8):
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self.name = name
        self.fanout = fanout
        self.memtable = MemTable()
        self._patches = []  # newest first
        self.merges_performed = 0

    @property
    def patches(self):
        """Current patch stack, newest first (read-only view)."""
        return tuple(self._patches)

    @property
    def patch_count(self):
        return len(self._patches)

    @property
    def fact_count(self):
        """Facts across memtable and all patches (including duplicates)."""
        return len(self.memtable) + sum(len(patch) for patch in self._patches)

    def insert(self, fact):
        """Buffer one fact in the memtable (idempotent)."""
        self.memtable.insert(fact)

    def seal(self):
        """Freeze the memtable into a patch on top of the stack.

        Returns the new patch, or None when the memtable is empty.
        """
        if not len(self.memtable):
            return None
        patch = self.memtable.to_patch()
        self.memtable.clear()
        self._patches.insert(0, patch)
        return patch

    def adopt_patch(self, patch):
        """Install an externally built patch (recovery, segment loads)."""
        if len(patch):
            self._patches.insert(0, patch)

    def lookup_latest(self, key, max_seq=None):
        """The newest fact for ``key`` with seqno <= ``max_seq``.

        Checks every source and keeps the max-seqno hit; patch stack
        order is a hint, not a guarantee, because lagging writers may
        insert facts out of order (Section 3.2 allows this).
        """
        best = self.memtable.lookup_latest(key, max_seq)
        for patch in self._patches:
            if best is not None and patch.max_seq < best.seqno:
                continue
            candidate = patch.lookup_latest(key, max_seq)
            if candidate is not None and (best is None or candidate.seqno > best.seqno):
                best = candidate
        return best

    def lookup_all(self, key):
        """Every stored version of ``key``, deduplicated, seqno order."""
        seen = set()
        out = []
        for source in [self.memtable] + self._patches:
            for fact in source.lookup_all(key):
                if fact not in seen:
                    seen.add(fact)
                    out.append(fact)
        out.sort(key=lambda fact: fact.seqno)
        return out

    def scan_latest(self, lo_key=None, hi_key=None):
        """Yield the newest fact per key, in key order."""
        merged = merge_patches(
            [self.memtable.to_patch()] + self._patches
        )
        current_key = object()
        best = None
        for fact in merged.scan(lo_key, hi_key):
            if fact.key != current_key:
                if best is not None:
                    yield best
                current_key = fact.key
                best = fact
            elif fact.seqno > best.seqno:
                best = fact
        if best is not None:
            yield best

    def merge(self, count=None, drop=None):
        """Merge the oldest ``count`` patches (default: all) into one.

        ``drop`` is the elision filter applied during the merge. The
        operation is idempotent: the resulting stack serves exactly the
        same lookups. Returns the merged patch (or None if nothing to
        merge).
        """
        if count is None:
            count = len(self._patches)
        if not self._patches:
            return None
        if (count < 2 or len(self._patches) < 2) and drop is None:
            return None  # nothing to combine and nothing to filter
        count = max(1, min(count, len(self._patches)))
        victims = self._patches[-count:]
        merged = merge_patches(victims, drop=drop)
        self._patches = self._patches[:-count] + [merged]
        self.merges_performed += 1
        return merged

    def maybe_compact(self, drop=None):
        """Merge when the stack exceeds the fanout (background policy)."""
        compacted = False
        while len(self._patches) > self.fanout:
            self.merge(count=len(self._patches) - self.fanout + 1, drop=drop)
            compacted = True
        return compacted
