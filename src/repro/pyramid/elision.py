"""Elision: atomic predicate-based tuple deletion (paper Section 4.10).

Instead of per-key tombstones, each relation carries elide tables whose
tuples are *deletion predicates*: every fact matching a predicate is
treated as deleted. Dropping a medium inserts one record rather than
deleting one cblock at a time; readers filter results against the elide
table without locks; the garbage collector drops matching facts during
merges, reclaiming space immediately.

Elide records must not themselves leak space. Predicates over dense,
monotonically increasing keys are stored as integer ranges and merged
when contiguous, so the table is bounded by the number of live gaps in
the key space rather than the number of deletions ever performed.
"""

from dataclasses import dataclass

from repro.metadata.rangecode import IntRangeSet


@dataclass(frozen=True)
class KeyRangePredicate:
    """Elides facts whose ``key[field]`` lies in [lo, hi].

    ``as_of_seq`` bounds the predicate in time: only facts with
    seqno < as_of_seq are elided (None elides all versions, the common
    case when keys are never reused).
    """

    lo: int
    hi: int
    as_of_seq: int = None
    field: int = 0

    def __post_init__(self):
        if self.lo > self.hi:
            raise ValueError("empty range [%d, %d]" % (self.lo, self.hi))

    def matches(self, fact):
        """True if the fact is deleted under this predicate."""
        if self.as_of_seq is not None and fact.seqno >= self.as_of_seq:
            return False
        if self.field >= len(fact.key):
            return False
        component = fact.key[self.field]
        return isinstance(component, int) and self.lo <= component <= self.hi


@dataclass(frozen=True)
class KeyPrefixPredicate:
    """Elides facts whose key starts with ``prefix``."""

    prefix: tuple
    as_of_seq: int = None

    def matches(self, fact):
        """True if the fact is deleted under this predicate."""
        if self.as_of_seq is not None and fact.seqno >= self.as_of_seq:
            return False
        return fact.key[: len(self.prefix)] == self.prefix


class ElideTable:
    """The set of deletion predicates attached to one relation.

    Unbounded-lifetime predicates (``as_of_seq is None``) over the
    leading integer key field are held in an :class:`IntRangeSet`, which
    coalesces contiguous ranges — the paper's bound on elide-table
    growth. Sequence-bounded or prefix predicates are kept verbatim.
    """

    def __init__(self, name="elide"):
        self.name = name
        self._coalesced = {}  # field index -> IntRangeSet
        self._predicates = []  # non-coalescible predicates
        self.records_inserted = 0

    def insert(self, predicate):
        """Add one deletion predicate (idempotent)."""
        self.records_inserted += 1
        if isinstance(predicate, KeyRangePredicate) and predicate.as_of_seq is None:
            ranges = self._coalesced.setdefault(predicate.field, IntRangeSet())
            ranges.add(predicate.lo, predicate.hi)
            return
        if isinstance(predicate, KeyPrefixPredicate) and (
            predicate.as_of_seq is None
            and len(predicate.prefix) == 1
            and isinstance(predicate.prefix[0], int)
        ):
            # A one-int prefix is a width-one range on field 0: coalesce it.
            ranges = self._coalesced.setdefault(0, IntRangeSet())
            ranges.add(predicate.prefix[0], predicate.prefix[0])
            return
        if predicate not in self._predicates:
            self._predicates.append(predicate)

    def elide_key_range(self, lo, hi, field=0):
        """Convenience: elide all facts with key[field] in [lo, hi]."""
        self.insert(KeyRangePredicate(lo, hi, field=field))

    def elide_prefix(self, prefix, as_of_seq=None):
        """Convenience: elide all facts whose key starts with ``prefix``."""
        self.insert(KeyPrefixPredicate(tuple(prefix), as_of_seq=as_of_seq))

    def is_elided(self, fact):
        """True if any predicate deletes this fact."""
        for field, ranges in self._coalesced.items():
            if field < len(fact.key):
                component = fact.key[field]
                if isinstance(component, int) and ranges.contains(component):
                    return True
        return any(predicate.matches(fact) for predicate in self._predicates)

    @property
    def record_count(self):
        """Live predicate records after range coalescing.

        The paper's invariant: this stays bounded by the number of gaps
        in the (dense, monotone) key space, not by deletions performed.
        """
        coalesced = sum(len(ranges) for ranges in self._coalesced.values())
        return coalesced + len(self._predicates)

    def ranges_for_field(self, field=0):
        """The coalesced (lo, hi) ranges for one key field (for tests)."""
        ranges = self._coalesced.get(field)
        return list(ranges) if ranges is not None else []
