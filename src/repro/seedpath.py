"""Seed-path emulation: run the pipeline with pre-optimization kernels.

The hot-path optimizations (full-table GF(256) kernels, batched RS
encode with codec-owned scratch, sampled record hashing, memoryview
write splitting, bulk dedup-run extension) replaced the seed
implementations in place. This module patches the seed behaviours back
in, under a context manager, for two consumers:

* ``benchmarks/bench_hotpath.py`` measures seed-vs-optimized numbers
  with the *same* harness, so the recorded speedups compare identical
  workloads;
* the pipeline-equivalence test proves a mixed workload produces
  byte-identical reads and identical data-reduction stats either way.

The seed kernels themselves (``GF256.mul_array_reference``,
``ReedSolomon.encode_reference``) stay in their home modules as the
bit-exactness oracles; this module only re-wires the pipeline to them.
"""

from contextlib import contextmanager

import numpy as np

import repro.core.datapath as _datapath_module
from repro.core.datapath import DataPath
from repro.dedup.hashing import sector_hash
from repro.dedup.index import DedupLocation
from repro.dedup.inline import DedupMatch, InlineDeduper
from repro.erasure.gf256 import GF256
from repro.erasure.reed_solomon import ReedSolomon
from repro.perf import PERF
from repro.units import MAX_CBLOCK, SECTOR


def _seed_mul_array(cls, array, scalar):
    return cls.mul_array_reference(array, scalar)


def _seed_addmul_array(cls, accumulator, array, scalar, scratch=None):
    return cls.addmul_array_reference(accumulator, array, scalar)


def _seed_encode(self, shards):
    return self.encode_reference(shards)


def _seed_encode_stripes(self, data_matrix):
    """Seed segio flush: per-shard byte strings + allocating encode."""
    matrix = np.asarray(data_matrix, dtype=np.uint8)
    shards = [matrix[index].tobytes() for index in range(matrix.shape[0])]
    parity = self.encode_reference(shards)
    return np.stack([np.frombuffer(row, dtype=np.uint8) for row in parity])


def _seed_split_write(offset, data, max_cblock=MAX_CBLOCK):
    """Seed splitter: each chunk is a copying bytes slice."""
    if offset % SECTOR:
        raise ValueError("write offset %d is not sector-aligned" % offset)
    if len(data) % SECTOR:
        raise ValueError("write length %d is not a sector multiple" % len(data))
    if max_cblock % SECTOR or max_cblock <= 0:
        raise ValueError("max_cblock must be a positive sector multiple")
    data = bytes(data)
    cursor = 0
    while cursor < len(data):
        chunk = data[cursor : cursor + max_cblock]
        yield offset + cursor, chunk
        cursor += len(chunk)


def _seed_sector_hashes(data):
    """Seed hashing: one copying bytes slice per sector."""
    data = bytes(data)
    if len(data) % SECTOR:
        raise ValueError("data length %d is not a sector multiple" % len(data))
    return [
        sector_hash(data[offset : offset + SECTOR])
        for offset in range(0, len(data), SECTOR)
    ]


def _seed_record_hashes(self, segment_id, payload_offset, stored_length, data):
    """Seed recording: hash every sector, keep every Nth digest."""
    hashes = _seed_sector_hashes(data)
    for sector, value in enumerate(hashes):
        if sector % self.config.dedup_sample_every == 0:
            self.dedup_index.record(
                value,
                DedupLocation(segment_id, payload_offset, stored_length, sector),
            )


def _seed_find_matches(self, data):
    """Seed matcher: hash every sector of the write eagerly, up front."""
    with PERF.timer("hash"):
        hashes = _seed_sector_hashes(data)
    total = len(hashes)
    matches = []
    claimed_until = 0
    cursor = 0
    while cursor < total:
        location = self.index.lookup(hashes[cursor])
        if location is None:
            cursor += 1
            continue
        if not self._verify(location, self._sector(data, cursor)):
            self.false_hash_hits += 1
            cursor += 1
            continue
        run_start, run_location = self._extend_backward(
            data, cursor, location, limit=cursor - claimed_until
        )
        run_end = self._extend_forward(data, cursor, location, total)
        run_length = run_end - run_start
        if run_length >= self.min_run_sectors:
            matches.append(
                DedupMatch(
                    sector_start=run_start,
                    sector_count=run_length,
                    location=run_location,
                )
            )
            self.matches_found += 1
            claimed_until = run_end
            cursor = run_end
        else:
            cursor += 1
    return matches


def _seed_extend_forward(self, data, anchor, location, total):
    end = anchor + 1
    while end < total:
        candidate = location.shifted(end - anchor)
        if not self._verify(candidate, self._sector(data, end)):
            break
        end += 1
    return end


def _seed_extend_backward(self, data, anchor, location, limit):
    start = anchor
    steps = 0
    while (
        steps < limit
        and start > 0
        and location.sector_index - (anchor - start) - 1 >= 0
    ):
        candidate = location.shifted(start - 1 - anchor)
        if not self._verify(candidate, self._sector(data, start - 1)):
            break
        start -= 1
        steps += 1
    return start, location.shifted(start - anchor)


@contextmanager
def seed_pipeline():
    """Patch the seed hot-path implementations back in, temporarily."""
    saved = {
        "mul_array": GF256.__dict__["mul_array"],
        "addmul_array": GF256.__dict__["addmul_array"],
        "encode": ReedSolomon.encode,
        "encode_stripes": ReedSolomon.encode_stripes,
        "split_write": _datapath_module.split_write,
        "record_hashes": DataPath._record_hashes,
        "find_matches": InlineDeduper.find_matches,
        "extend_forward": InlineDeduper._extend_forward,
        "extend_backward": InlineDeduper._extend_backward,
    }
    GF256.mul_array = classmethod(_seed_mul_array)
    GF256.addmul_array = classmethod(_seed_addmul_array)
    ReedSolomon.encode = _seed_encode
    ReedSolomon.encode_stripes = _seed_encode_stripes
    _datapath_module.split_write = _seed_split_write
    DataPath._record_hashes = _seed_record_hashes
    InlineDeduper.find_matches = _seed_find_matches
    InlineDeduper._extend_forward = _seed_extend_forward
    InlineDeduper._extend_backward = _seed_extend_backward
    try:
        yield
    finally:
        GF256.mul_array = saved["mul_array"]
        GF256.addmul_array = saved["addmul_array"]
        ReedSolomon.encode = saved["encode"]
        ReedSolomon.encode_stripes = saved["encode_stripes"]
        _datapath_module.split_write = saved["split_write"]
        DataPath._record_hashes = saved["record_hashes"]
        InlineDeduper.find_matches = saved["find_matches"]
        InlineDeduper._extend_forward = saved["extend_forward"]
        InlineDeduper._extend_backward = saved["extend_backward"]
