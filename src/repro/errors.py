"""Exception hierarchy for the Purity reproduction.

Every error raised by the library derives from :class:`PurityError` so
applications can catch library failures with a single except clause.
"""


class PurityError(Exception):
    """Base class for all errors raised by this library."""


class DeviceError(PurityError):
    """A simulated storage device could not service a request."""


class DeviceFailedError(DeviceError):
    """The addressed device has failed and holds no recoverable data."""


class UncorrectableError(DeviceError):
    """Data was lost beyond what the erasure code can reconstruct."""


class DataLossError(PurityError):
    """Acknowledged data is provably unrecoverable.

    Raised when the system *detects* loss (e.g. recovery cannot read a
    checkpointed patch, or too many shards of one stripe are gone) —
    the contract is that loss is reported, never silently returned as
    wrong bytes.
    """


class ReadOnlyModeError(PurityError):
    """The degradation ladder has pinned the array read-only.

    Raised by the write path once detected, beyond-parity damage makes
    further writes unsafe to acknowledge. Reads stay served (and report
    loss honestly via :class:`UncorrectableError`); background repair
    keeps running. See :mod:`repro.degrade`.
    """


class InjectedCrashError(PurityError):
    """A fault-injection plan crashed the controller at a crashpoint.

    Only ever raised by :mod:`repro.faults`; harnesses catch it, run
    recovery, and verify the crash-consistency invariants.
    """

    def __init__(self, crashpoint, message=None):
        super().__init__(message or "injected crash at %s" % crashpoint)
        self.crashpoint = crashpoint


class AllocationError(PurityError):
    """The space allocator could not satisfy a request."""


class OutOfSpaceError(AllocationError):
    """The array has no free allocation units left."""


class VolumeError(PurityError):
    """Invalid operation on a volume (missing, read-only, bad range)."""


class VolumeNotFoundError(VolumeError):
    """The named volume does not exist."""


class VolumeExistsError(VolumeError):
    """A volume with the requested name already exists."""


class SnapshotError(PurityError):
    """Invalid snapshot or clone operation."""


class RecoveryError(PurityError):
    """Crash recovery could not reconstruct a consistent state."""


class ControllerError(PurityError):
    """Invalid controller state transition (e.g. both controllers down)."""


class EncodingError(PurityError):
    """Metadata page encode/decode failure."""


class ReplicationError(PurityError):
    """Asynchronous replication failure."""


class ClusterError(PurityError):
    """Base class for multi-array cluster failures (see repro.cluster)."""


class StaleEpochError(ClusterError):
    """An operation carried a placement epoch older than the node's.

    The node rejects rather than serving: the client's placement map is
    out of date and the volume may have moved. Carries the node's
    current epoch so the client knows how far to refresh.
    """

    def __init__(self, node_epoch, message=None):
        super().__init__(
            message or "placement epoch is stale (node is at %d)" % node_epoch
        )
        self.node_epoch = node_epoch


class ArrayDownError(ClusterError):
    """The addressed array node is killed/crashed and serving nothing."""

    def __init__(self, node_id, message=None):
        super().__init__(message or "array node %s is down" % node_id)
        self.node_id = node_id


class UnreachableError(ClusterError):
    """A network partition blocks the message from reaching its target."""

    def __init__(self, src, dst, message=None):
        super().__init__(
            message or "network partition: %s cannot reach %s" % (src, dst)
        )
        self.src = src
        self.dst = dst
