"""Medium-chain resolution.

The medium table identifies "all possible keys that might be used to
find the value for a given <volume, offset> lookup" (Section 4.5).
:func:`resolve_chain` walks the delegation chain from a medium down to
its deepest ancestor, yielding each <medium, offset> the address map
must be probed with, newest first. Garbage collection keeps these
chains short (application reads never touch more than three cblocks);
:func:`chain_depth` measures them for the Figure 6 benchmarks.
"""

from repro.errors import SnapshotError

#: A chain longer than this indicates a cycle or a corrupted table.
MAX_CHAIN_DEPTH = 64


def resolve_chain(table, medium_id, offset):
    """Yield (medium_id, offset) probes from the top of the chain down.

    Stops at a medium that holds its own data for the range (target =
    none) or at a gap (a range no medium covers). Raises SnapshotError
    on a cycle.
    """
    probes = []
    visited = set()
    current = (medium_id, offset)
    while True:
        if current in visited or len(probes) >= MAX_CHAIN_DEPTH:
            raise SnapshotError(
                "medium chain cycle or overlong chain at medium %d" % current[0]
            )
        visited.add(current)
        probes.append(current)
        row = table.range_covering(*current)
        if row is None or row.maps_directly():
            return probes
        current = (row.target, row.target_offset + (current[1] - row.start))


def chain_depth(table, medium_id, offset):
    """Number of address-map probes a read of (medium, offset) needs."""
    return len(resolve_chain(table, medium_id, offset))
