"""Mediums: virtual data containers (paper Sections 3.4, 4.5, Figure 6).

All user data lives in a single mapping structure addressed by
<medium, offset> rather than <volume, offset>. A medium's table entries
either hold data directly or delegate ranges to an underlying medium at
an offset — which is all a snapshot or clone is. The medium table is
consulted to enumerate every key that might hold the value for a
lookup; garbage collection flattens medium trees so reads never chase
more than three levels.
"""

from repro.mediums.medium import (
    MEDIUM_NONE,
    STATUS_RO,
    STATUS_RW,
    MediumRange,
    MediumTable,
)
from repro.mediums.resolver import chain_depth, resolve_chain

__all__ = [
    "MEDIUM_NONE",
    "STATUS_RO",
    "STATUS_RW",
    "MediumRange",
    "MediumTable",
    "resolve_chain",
    "chain_depth",
]
