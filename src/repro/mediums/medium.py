"""The medium table.

Each row maps a range of one medium onto either nothing (the medium
holds its own data for that range, found via the address map) or an
underlying <medium, offset>, exactly as in the paper's Figure 6:

    Source Medium  Start:End  Target Medium  Offset  Status
    12             0:3999     none                   RO
    14             0:3999     12             0       RO     (snapshot)
    15             0:999      12             2000    RW     (clone of part)

Rows are immutable facts in a relation keyed (medium_id, start); a
range is rewritten by inserting a newer fact with the same key.
Dropping a medium inserts one elide record for its key prefix — the
motivating example for elision.
"""

from dataclasses import dataclass

from repro.errors import SnapshotError

#: Sentinel target for "this medium holds its own data here".
MEDIUM_NONE = -1

STATUS_RW = 0
STATUS_RO = 1


@dataclass(frozen=True)
class MediumRange:
    """One decoded medium-table row."""

    medium_id: int
    start: int
    end: int
    target: int
    target_offset: int
    status: int

    @property
    def length(self):
        return self.end - self.start

    @property
    def writable(self):
        return self.status == STATUS_RW

    def maps_directly(self):
        """True when this range holds its own data (no delegation)."""
        return self.target == MEDIUM_NONE


class MediumTable:
    """Operations over the medium relation.

    ``inserter(key, value)`` persists one fact (the commit pipeline
    provides sequence numbers and WAL ordering); the table itself only
    decides *what* facts to write.
    """

    def __init__(self, relation, inserter, first_medium_id=1, on_allocate=None,
                 elider=None):
        self.relation = relation
        self._insert = inserter
        self._next_medium_id = first_medium_id
        self._on_allocate = on_allocate
        # How drop_medium deletes: the default elides in-memory only;
        # the array wires a durable (WAL-backed) elider.
        self._elide_prefix = elider or (
            lambda prefix: self.relation.elide_prefix(prefix)
        )

    def set_next_medium_id(self, next_id):
        """Continue numbering after recovery."""
        self._next_medium_id = max(self._next_medium_id, next_id)

    def _allocate_id(self):
        medium_id = self._next_medium_id
        self._next_medium_id += 1
        if self._on_allocate is not None:
            self._on_allocate(medium_id)
        return medium_id

    def _write_range(self, medium_id, start, end, target, target_offset, status):
        if start < 0 or end <= start:
            raise ValueError("bad medium range [%d, %d)" % (start, end))
        self._insert(
            (medium_id, start), (end, target, target_offset, status)
        )

    def _decode(self, fact):
        medium_id, start = fact.key
        end, target, target_offset, status = fact.value
        return MediumRange(medium_id, start, end, target, target_offset, status)

    def create_medium(self, size):
        """A fresh writable medium holding its own (empty) data."""
        medium_id = self._allocate_id()
        self._write_range(medium_id, 0, size, MEDIUM_NONE, 0, STATUS_RW)
        return medium_id

    def ranges_of(self, medium_id):
        """All current ranges of one medium, by start offset."""
        rows = self.relation.scan((medium_id, 0), (medium_id, 2 ** 62))
        return [self._decode(fact) for fact in rows]

    def exists(self, medium_id):
        """True when the medium has any live range rows."""
        return bool(self.ranges_of(medium_id))

    def size_of(self, medium_id):
        """Logical size: the end of the medium's last range."""
        ranges = self.ranges_of(medium_id)
        if not ranges:
            raise SnapshotError("medium %d does not exist" % medium_id)
        return max(r.end for r in ranges)

    def range_covering(self, medium_id, offset):
        """The range row covering ``offset``, or None for a gap."""
        fact = self.relation.pyramid.lookup_latest((medium_id, offset))
        if fact is None:
            # Predecessor search over the sorted row starts.
            candidates = [
                row for row in self.ranges_of(medium_id) if row.start <= offset
            ]
            if not candidates:
                return None
            row = max(candidates, key=lambda r: r.start)
        else:
            if self.relation.elide_table.is_elided(fact):
                return None
            row = self._decode(fact)
        if not row.start <= offset < row.end:
            return None
        return row

    def freeze(self, medium_id):
        """Make every range of a medium read-only."""
        for row in self.ranges_of(medium_id):
            if row.status != STATUS_RO:
                self._write_range(
                    row.medium_id, row.start, row.end, row.target,
                    row.target_offset, STATUS_RO,
                )

    def is_writable(self, medium_id):
        """True when any range of the medium accepts writes."""
        return any(row.writable for row in self.ranges_of(medium_id))

    def snapshot(self, medium_id):
        """Freeze ``medium_id``; returns (snapshot_medium, new_write_medium).

        The snapshot medium and the volume's replacement anchor both
        delegate to the frozen base, so neither costs data movement.
        """
        size = self.size_of(medium_id)
        self.freeze(medium_id)
        snapshot_id = self._allocate_id()
        self._write_range(snapshot_id, 0, size, medium_id, 0, STATUS_RO)
        new_anchor = self._allocate_id()
        self._write_range(new_anchor, 0, size, medium_id, 0, STATUS_RW)
        return snapshot_id, new_anchor

    def clone(self, medium_id, start=0, end=None):
        """A writable medium exposing [start, end) of ``medium_id`` at 0.

        The source range must be stable, so the source medium is frozen
        first (cloning a live volume goes through snapshot()).
        """
        size = self.size_of(medium_id)
        if end is None:
            end = size
        if not 0 <= start < end <= size:
            raise SnapshotError(
                "clone range [%d, %d) outside medium of size %d"
                % (start, end, size)
            )
        self.freeze(medium_id)
        clone_id = self._allocate_id()
        self._write_range(clone_id, 0, end - start, medium_id, start, STATUS_RW)
        return clone_id

    def define_range(self, medium_id, start, end, target, target_offset, status):
        """Write one range row directly (building composite mediums).

        Callers are responsible for keeping a medium's ranges disjoint;
        normal snapshot/clone flows never need this, but composite
        layouts like the paper's medium 22 (three ranges with different
        targets) are built from it.
        """
        self._write_range(medium_id, start, end, target, target_offset, status)
        self._next_medium_id = max(self._next_medium_id, medium_id + 1)

    def retarget_range(self, row, target, target_offset):
        """GC path compression: point a range directly at a deeper medium."""
        self._write_range(
            row.medium_id, row.start, row.end, target, target_offset, row.status
        )

    def drop_medium(self, medium_id):
        """Atomically delete a medium's rows via one elide record."""
        self._elide_prefix((medium_id,))

    def all_medium_ids(self):
        """Every live medium id."""
        return sorted({fact.key[0] for fact in self.relation.scan()})
