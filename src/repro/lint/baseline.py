"""The committed findings baseline.

A baseline grandfathers pre-existing findings so a new rule can land
without a flag-day fix of the whole tree; new code is held to the full
standard immediately. The policy here (see DESIGN.md) is to keep the
committed baseline **empty** — the file exists so the mechanism stays
exercised, not as a parking lot.

Format: JSON, one object with a sorted ``findings`` list of
``{rule, path, snippet}`` triples. Matching ignores line numbers so a
baselined finding survives unrelated edits above it; it dies the moment
the offending line itself changes.
"""

import json
import os


def empty_baseline():
    return {"findings": []}


def load_baseline(path):
    """Read a baseline file; a missing file is an empty baseline."""
    if path is None or not os.path.exists(path):
        return empty_baseline()
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError("malformed baseline %s: expected {'findings': [...]}"
                         % path)
    return data


def baseline_keys(baseline):
    """The set of (rule, path, snippet) identities in ``baseline``."""
    keys = set()
    for entry in baseline["findings"]:
        keys.add((entry["rule"], entry["path"], entry.get("snippet", "")))
    return keys


def write_baseline(path, findings):
    """Write ``findings`` as the new baseline; returns the entry count.

    Only error-severity findings are baselined — advice never gates, so
    freezing it would only hide it.
    """
    entries = sorted(
        {
            (f.rule, f.path, f.snippet)
            for f in findings
            if f.severity == "error"
        }
    )
    data = {
        "findings": [
            {"rule": rule, "path": rel_path, "snippet": snippet}
            for rule, rel_path, snippet in entries
        ]
    }
    with open(path, "w") as handle:
        json.dump(data, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return len(entries)


def split_by_baseline(findings, baseline):
    """Partition findings into (new, grandfathered) against ``baseline``."""
    keys = baseline_keys(baseline)
    new, grandfathered = [], []
    for finding in findings:
        if finding.severity == "error" and finding.key() in keys:
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered


def stale_entries(findings, baseline):
    """Baseline entries no longer produced by the tree (safe to drop)."""
    produced = {f.key() for f in findings}
    return sorted(
        key for key in baseline_keys(baseline) if key not in produced
    )
