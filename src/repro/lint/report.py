"""Human and JSON renderings of a :class:`~repro.lint.engine.LintResult`.

Both renderings are deterministic functions of the linted tree: the
findings arrive sorted, the JSON is dumped with ``sort_keys=True`` and
fixed separators, and nothing wall-clock (timestamps, durations, host
names) ever enters a report — the same tree produces byte-identical
output on every run, which is what lets CI diff reports directly.
"""

import json


def render_json(result):
    """The whole result as one stable JSON document (with newline)."""
    document = {
        "checked_files": result.checked_files,
        "errors": len(result.errors),
        "advice": len(result.advice),
        "suppressed": result.suppressed_count,
        "grandfathered": len(result.grandfathered),
        "stale_baseline": [list(entry) for entry in result.stale_baseline],
        "findings": [finding.to_dict() for finding in result.findings],
        "ok": result.ok,
    }
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def render_human(result):
    """Readable report: one block per finding plus a summary line."""
    lines = []
    for finding in result.findings:
        tag = "advice" if finding.severity != "error" else "error"
        lines.append(
            "%s: %s [%s] %s"
            % (finding.location(), tag, finding.rule, finding.message)
        )
        if finding.snippet:
            lines.append("    %s" % finding.snippet)
        if tag == "error":
            lines.append(
                "    suppress with: # lint: allow[%s] <reason>" % finding.rule
            )
    if result.stale_baseline:
        lines.append("stale baseline entries (no longer produced; drop them):")
        for rule, path, snippet in result.stale_baseline:
            lines.append("    [%s] %s: %s" % (rule, path, snippet))
    lines.append(
        "%d files checked: %d error(s), %d advice, "
        "%d pragma-suppressed, %d baselined"
        % (
            result.checked_files,
            len(result.errors),
            len(result.advice),
            result.suppressed_count,
            len(result.grandfathered),
        )
    )
    return "\n".join(lines) + "\n"


def render_explain(rule):
    """``--explain <rule-id>`` output: rationale plus a fixture example."""
    lines = [
        "%s (%s%s)" % (rule.id, rule.severity,
                       ", whole-program" if rule.project else ""),
        "",
        rule.summary,
    ]
    if rule.rationale:
        lines.append("")
        lines.append("Why:")
        for raw in rule.rationale.splitlines():
            lines.append("  %s" % raw if raw else "")
    if rule.example:
        lines.append("")
        lines.append("Example (violates the rule):")
        for raw in rule.example.splitlines():
            lines.append("  %s" % raw if raw else "")
    lines.append("")
    lines.append("Suppress with: # lint: allow[%s] <one-line reason>"
                 % rule.id)
    return "\n".join(lines) + "\n"


def render_rule_list(rules):
    """``--list-rules`` output: id, severity, one-line summary."""
    lines = []
    for rule in rules:
        lines.append("%-22s %-7s %s" % (rule.id, rule.severity, rule.summary))
    return "\n".join(lines) + "\n"
