"""no-unseeded-worker: pool-shipped functions are pure.

``@pure_worker`` functions (see :mod:`repro.parallel.workers`) execute
inside worker processes, where results must be a function of the
arguments alone — the same-seed byte-identity contract covers any
worker count, so nothing drawn from the host environment may leak into
a worker's output. The executor enforces the marker at runtime; this
rule enforces the marker's *meaning* statically: no ``random`` (module
functions, ``numpy.random``, from-imports of the global draws), no wall
clock (``time.*``, ``datetime.now/utcnow/today``), and no smuggling
either in via an import inside the function body.

Seeded :class:`~repro.sim.rand.RandomStream` draws are *not* exempted:
worker inputs are plain data, so randomness has no business inside a
worker at all — derive random inputs before the map, in the sim
process, and ship the bytes.
"""

import ast

from repro.lint.rule import Rule, register
from repro.lint.rules.randomness import GLOBAL_DRAWS
from repro.lint.rules.wallclock import DATETIME_ATTRS, WALL_CLOCK_ATTRS

#: Modules a worker body may not import locally.
BANNED_LOCAL_IMPORTS = frozenset({"random", "time", "datetime",
                                  "numpy.random"})


def _is_pure_worker_decorator(node):
    if isinstance(node, ast.Call):
        return _is_pure_worker_decorator(node.func)
    if isinstance(node, ast.Name):
        return node.id == "pure_worker"
    if isinstance(node, ast.Attribute):
        return node.attr == "pure_worker"
    return False


@register
class NoUnseededWorker(Rule):

    id = "no-unseeded-worker"
    summary = ("@pure_worker functions ship to the process pool and must "
               "not touch random or the wall clock")
    rationale = (
        "@pure_worker marks a function as shippable to forked pool\n"
        "processes, where the contract is: results are a function of\n"
        "the arguments alone, so serial and pooled runs produce the\n"
        "same bytes. This rule checks worker *bodies* for wall-clock\n"
        "reads, global RNG draws, and smuggled local imports of either;\n"
        "worker-transitive-purity extends the same ban to everything\n"
        "the worker calls."
    )
    example = (
        "@pure_worker\n"
        "def verify(chunk):\n"
        "    import random                  # smuggled impurity\n"
        "    return random.random() < 0.5   # host RNG in a worker\n"
    )

    def check(self, ctx):
        imports = {
            "time": ctx.imports.module_aliases("time"),
            "datetime_mod": ctx.imports.module_aliases("datetime"),
            "datetime_cls": set(ctx.imports.from_imports("datetime")),
            "random": ctx.imports.module_aliases("random"),
            "numpy": ctx.imports.module_aliases("numpy"),
            "numpy_random": ctx.imports.module_aliases("numpy.random"),
            "from_time_wall": {
                local for local, original
                in ctx.imports.from_imports("time").items()
                if original in WALL_CLOCK_ATTRS
            },
            "from_random_draws": {
                local for local, original
                in ctx.imports.from_imports("random").items()
                if original in GLOBAL_DRAWS
            },
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not any(_is_pure_worker_decorator(decorator)
                       for decorator in node.decorator_list):
                continue
            yield from self._check_worker(ctx, node, imports)

    def _check_worker(self, ctx, func, imports):
        for node in ast.walk(func):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in BANNED_LOCAL_IMPORTS:
                        yield self._impure(
                            ctx, node, func,
                            "imports %r inside the worker body" % alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module in BANNED_LOCAL_IMPORTS:
                    yield self._impure(
                        ctx, node, func,
                        "imports from %r inside the worker body"
                        % node.module)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node, func, imports)
            elif isinstance(node, ast.Name):
                if node.id in imports["from_time_wall"]:
                    yield self._impure(
                        ctx, node, func,
                        "reads the wall clock via %r" % node.id)
                elif node.id in imports["from_random_draws"]:
                    yield self._impure(
                        ctx, node, func,
                        "draws from the process-global RNG via %r" % node.id)

    def _check_attribute(self, ctx, node, func, imports):
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in imports["time"] and node.attr in WALL_CLOCK_ATTRS:
                yield self._impure(
                    ctx, node, func,
                    "reads the wall clock ('time.%s')" % node.attr)
            elif base.id in imports["random"]:
                yield self._impure(
                    ctx, node, func,
                    "touches the process-global RNG ('random.%s')"
                    % node.attr)
            elif base.id in imports["numpy_random"]:
                yield self._impure(
                    ctx, node, func,
                    "touches numpy's global RNG ('%s.%s')"
                    % (base.id, node.attr))
            elif base.id in imports["numpy"] and node.attr == "random":
                yield self._impure(
                    ctx, node, func,
                    "touches numpy's global RNG ('%s.random')" % base.id)
            elif (base.id in imports["datetime_mod"]
                    or base.id in imports["datetime_cls"]) \
                    and node.attr in DATETIME_ATTRS:
                yield self._impure(
                    ctx, node, func,
                    "reads the wall clock ('%s.%s')" % (base.id, node.attr))
        elif isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name) \
                and base.value.id in imports["datetime_mod"] \
                and node.attr in DATETIME_ATTRS:
            # datetime.datetime.now / datetime.date.today
            yield self._impure(
                ctx, node, func,
                "reads the wall clock ('datetime.%s.%s')"
                % (base.attr, node.attr))

    def _impure(self, ctx, node, func, what):
        return self.finding(
            ctx, node,
            "@pure_worker function %r %s; workers must be pure functions "
            "of their arguments (same seed, same bytes, any worker count)"
            % (func.name, what),
        )
