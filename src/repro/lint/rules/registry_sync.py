"""name-registry-sync: instrumentation names resolve against registries.

Span, event, and metric names live in :mod:`repro.obs.names`;
crashpoint names live in :data:`repro.faults.plan.CRASHPOINTS`. A typo
at a call site ("io.wrte", "segio-flush" for "segio.flush") would never
crash — it would just fork a name, and every report joining on the real
one would silently render an empty table. This rule resolves string
literals at the four instrumentation call shapes against the
registries, so drift is a lint failure instead of a confusing report:

* ``<obs>.begin("name", ...)``           -> ``SPAN_NAMES``
* ``<obs>.event("name", ...)``           -> ``EVENT_NAMES``
* ``<metrics|registry>.counter/gauge/histogram/series("name")``
                                         -> ``METRIC_NAMES``
* ``<cp>.hit("name", ...)``              -> ``CRASHPOINTS``
* ``<parallel|executor>.map("name", ...)``
                                         -> ``repro.parallel.names.STAGE_NAMES``

Non-literal names are skipped (they cannot be resolved statically), as
are the registry modules themselves and :mod:`repro.perf` counters
(a separate, wall-clock-side namespace).
"""

import ast

from repro.lint.astutil import first_str_arg, receiver_last_name
from repro.lint.rule import Rule, register

METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "series"})

#: Receivers whose counter()/gauge() calls target the MetricsRegistry.
#: (Excludes PERF — repro.perf counters are a wall-clock-side namespace.)
METRIC_RECEIVERS = frozenset({"metrics", "registry"})

#: Receivers whose map() calls target the ParallelExecutor.
PARALLEL_RECEIVERS = frozenset({"parallel", "executor"})

#: The registry modules themselves (definitions, not call sites).
REGISTRY_FILES = frozenset({
    "src/repro/obs/names.py",
    "src/repro/faults/plan.py",
    "src/repro/parallel/names.py",
})


@register
class NameRegistrySync(Rule):

    id = "name-registry-sync"
    summary = ("span/event/metric/crashpoint string literals must appear "
               "in repro.obs.names / repro.faults.plan registries")
    rationale = (
        "Instrumentation names are join keys: reports group trace spans\n"
        "and metric series by exact string. A typo at a call site never\n"
        "crashes — it forks the name, and the report joining on the\n"
        "real one quietly renders an empty table. Resolving literals\n"
        "against the committed registries turns that silent drift into\n"
        "a lint failure with a nearest-name hint."
    )
    example = (
        "def flush(self, obs):\n"
        "    with obs.begin(\"segio-flsuh\"):   # typo: not in SPAN_NAMES\n"
        "        ...                            # hint: 'segio.flush'\n"
    )

    def __init__(self, registries=None):
        #: Overridable for fixture tests; defaults to the live modules.
        self._registries = registries

    def registries(self):
        if self._registries is None:
            from repro.faults.plan import CRASHPOINTS
            from repro.obs.names import EVENT_NAMES, METRIC_NAMES, SPAN_NAMES
            from repro.parallel.names import STAGE_NAMES

            self._registries = {
                "span": frozenset(SPAN_NAMES),
                "event": frozenset(EVENT_NAMES),
                "metric": frozenset(METRIC_NAMES),
                "crashpoint": frozenset(CRASHPOINTS),
                "stage": frozenset(STAGE_NAMES),
            }
        return self._registries

    def applies_to(self, ctx):
        return ctx.in_src and ctx.rel_path not in REGISTRY_FILES

    def check(self, ctx):
        registries = self.registries()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            name = first_str_arg(node)
            if name is None:
                continue
            if method == "begin":
                if name not in registries["span"]:
                    yield self._drift(ctx, node, "span", name,
                                      registries["span"],
                                      "repro.obs.names.SPAN_NAMES")
            elif method == "event":
                if name not in registries["event"]:
                    yield self._drift(ctx, node, "event", name,
                                      registries["event"],
                                      "repro.obs.names.EVENT_NAMES")
            elif method == "hit":
                if name not in registries["crashpoint"]:
                    yield self._drift(ctx, node, "crashpoint", name,
                                      registries["crashpoint"],
                                      "repro.faults.plan.CRASHPOINTS")
            elif method == "map":
                recv = receiver_last_name(node)
                if recv in PARALLEL_RECEIVERS \
                        and name not in registries.get("stage", frozenset()):
                    yield self._drift(ctx, node, "stage", name,
                                      registries.get("stage", frozenset()),
                                      "repro.parallel.names.STAGE_NAMES")
            elif method in METRIC_METHODS:
                recv = receiver_last_name(node)
                if recv in METRIC_RECEIVERS \
                        and name not in registries["metric"]:
                    yield self._drift(ctx, node, "metric", name,
                                      registries["metric"],
                                      "repro.obs.names.METRIC_NAMES")

    def _drift(self, ctx, node, kind, name, registry, registry_name):
        hint = _closest(name, registry)
        suffix = "; did you mean %r?" % hint if hint else ""
        return self.finding(
            ctx, node,
            "%s name %r is not in %s%s — add it to the registry or fix "
            "the typo" % (kind, name, registry_name, suffix),
        )


def _closest(name, registry):
    """Cheap nearest-name hint: smallest edit distance, ties by name."""
    best, best_cost = None, 4
    for candidate in sorted(registry):
        cost = _edit_distance(name, candidate, cap=best_cost)
        if cost < best_cost:
            best, best_cost = candidate, cost
    return best


def _edit_distance(a, b, cap):
    """Levenshtein with an early-out cap (distances >= cap are cap)."""
    if abs(len(a) - len(b)) >= cap:
        return cap
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            current.append(min(
                previous[j] + 1,
                current[j - 1] + 1,
                previous[j - 1] + (char_a != char_b),
            ))
        if min(current) >= cap:
            return cap
        previous = current
    return min(previous[-1], cap)
