"""hot-path-copy (advisory): don't re-copy what the zero-copy pass won.

The hot-path kernel PR moved the write pipeline onto memoryviews so a
cblock flows from compression through RS encode to the device without
byte copies. ``bytes(view)`` silently materializes a copy — sometimes
deliberately (an API boundary that must hand out immutable bytes),
often accidentally (a slice that could have stayed a view). This rule
flags the accidental kind in the three hot-path packages (``layout/``,
``erasure/``, ``compression/``):

* ``bytes(memoryview(...))`` composed directly;
* ``bytes(name)`` / ``bytes(name[...])`` where ``name`` was assigned
  from ``memoryview(...)`` — or from a subscript of such a name — in
  the same function.

Advisory severity: findings are reported but never fail the run.
Deliberate materialization points carry a pragma naming the reason,
which doubles as documentation of where the copies are.
"""

import ast

from repro.lint.astutil import call_name, functions, own_nodes
from repro.lint.rule import ADVICE, Rule, register


def _memoryview_names(func):
    """Names assigned (directly or via subscript chains) from memoryview."""
    names = set()
    changed = True
    while changed:
        changed = False
        for node in own_nodes(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            derived = False
            if call_name(value) == "memoryview":
                derived = True
            elif isinstance(value, ast.Subscript) \
                    and isinstance(value.value, ast.Name) \
                    and value.value.id in names:
                derived = True
            if derived and target.id not in names:
                names.add(target.id)
                changed = True
    return names


@register
class HotPathCopy(Rule):

    id = "hot-path-copy"
    summary = ("advisory: bytes(memoryview) copies in layout/erasure/"
               "compression hot paths")
    severity = ADVICE
    rationale = (
        "layout/erasure/compression run per-I/O; a bytes(memoryview)\n"
        "there materializes a copy of data that was sliced zero-copy on\n"
        "purpose, and the bench gate sees it as allocation-rate drift.\n"
        "Advisory only: sometimes the copy is the point (e.g. detaching\n"
        "from a buffer about to be recycled) — say so in a pragma."
    )
    example = (
        "def shard(view):\n"
        "    return bytes(view[a:b])   # copies the slice on the hot path\n"
        "    # often fine: view[a:b]   (zero-copy memoryview)\n"
    )

    def applies_to(self, ctx):
        return ctx.in_subsystem("layout", "erasure", "compression")

    def check(self, ctx):
        for func in functions(ctx.tree):
            view_names = _memoryview_names(func)
            for node in own_nodes(func):
                if not isinstance(node, ast.Call) \
                        or call_name(node) != "bytes" or len(node.args) != 1:
                    continue
                arg = node.args[0]
                if call_name(arg) == "memoryview":
                    yield self.finding(
                        ctx, node,
                        "bytes(memoryview(...)) copies what was just made "
                        "zero-copy; keep the view or drop the wrapper",
                    )
                elif isinstance(arg, ast.Name) and arg.id in view_names:
                    yield self.finding(
                        ctx, node,
                        "bytes(%s) copies a memoryview in a hot path; "
                        "pass the view through if the consumer accepts "
                        "buffers" % arg.id,
                    )
                elif isinstance(arg, ast.Subscript) \
                        and isinstance(arg.value, ast.Name) \
                        and arg.value.id in view_names:
                    yield self.finding(
                        ctx, node,
                        "bytes(%s[...]) copies a memoryview slice in a hot "
                        "path; slicing the view is already zero-copy"
                        % arg.value.id,
                    )
