"""no-bare-except: failures are handled, not swallowed.

A bare ``except:`` catches ``KeyboardInterrupt`` and ``SystemExit``
along with everything else, and — worse for this codebase — catches
:class:`repro.faults.injector.InjectedCrashError`, turning a scheduled
controller crash into silent corruption of the scenario. A handler
whose whole body is ``pass`` (or ``...``) swallows the failure with no
record of it, which the chaos harness's "detected loss is never wrong
bytes" invariant cannot tolerate.

Scoped to ``src/repro``; tests may legitimately swallow in teardown.
Catch a *named* exception and do something with it — return a sentinel,
count it, re-raise — or pragma the site with the reason it is safe.
"""

import ast

from repro.lint.rule import Rule, register


def _is_swallow_body(body):
    """A handler body that does nothing: only pass/... statements."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) \
                and stmt.value.value is Ellipsis:
            continue
        return False
    return True


@register
class NoBareExcept(Rule):

    id = "no-bare-except"
    summary = ("no 'except:' and no handlers whose whole body is pass "
               "in src/repro")
    rationale = (
        "A bare except (or a handler whose whole body is pass) swallows\n"
        "the invariant violations this repo exists to surface — a\n"
        "determinism divergence caught and discarded is worse than a\n"
        "crash, because the run keeps going with silently wrong state.\n"
        "Catch the narrowest exception the code can actually handle,\n"
        "and do something observable with it."
    )
    example = (
        "try:\n"
        "    shard = drive.read(lba)\n"
        "except:          # swallows SimCorruption, KeyboardInterrupt...\n"
        "    pass         # ...and hides the data-loss signal entirely\n"
    )

    def applies_to(self, ctx):
        return ctx.in_src

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt "
                    "and injected crashes; name the exception",
                )
            elif _is_swallow_body(node.body):
                yield self.finding(
                    ctx, node,
                    "exception handler swallows the failure with 'pass'; "
                    "handle it, count it, or re-raise",
                )
