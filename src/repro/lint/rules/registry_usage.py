"""registry-resolution: whole-program name-registry reconciliation.

``name-registry-sync`` checks *literal* instrumentation names per file.
This rule closes the two gaps literals leave open:

* **Folded names.** A name assembled at the call site — an f-string, a
  ``%``-format, a ``+`` concatenation, or a reference to a string
  constant — is invisible to the per-file rule. The graph records the
  parts; when every part folds to a constant (project-wide, following
  imports), the assembled name is resolved against the registry like a
  literal would be.
* **Dead entries.** A registry entry nothing references is drift in the
  other direction: the report renders an empty table and nobody knows
  why. Every entry must be *used* somewhere outside the registry
  modules — matched by a literal anywhere in the linted tree, a folded
  name, or a partially-folded pattern (``"%s.hits" % self.name``
  becomes ``.*\\.hits`` and keeps ``pool.segio.hits`` alive).

Registries are parsed from the linted tree itself (constant folding
handles ``CRASHPOINTS = CRASHPOINT_CHOICES + (...)``), so fixture
projects bring their own registries and a tree without any simply has
no findings.
"""

import re

from repro.lint.rule import ProjectRule, register
from repro.lint.rules.registry_sync import _closest

#: (site kind, defining module, constant name) per registry.
REGISTRIES = (
    ("span", "repro.obs.names", "SPAN_NAMES"),
    ("event", "repro.obs.names", "EVENT_NAMES"),
    ("metric", "repro.obs.names", "METRIC_NAMES"),
    ("crashpoint", "repro.faults.plan", "CRASHPOINTS"),
    ("stage", "repro.parallel.names", "STAGE_NAMES"),
)


@register
class RegistryResolution(ProjectRule):

    id = "registry-resolution"
    summary = ("constant-folded instrumentation names must resolve into "
               "the registries, and every registry entry must be used")
    rationale = (
        "The obs registries (repro.obs.names, repro.faults.plan\n"
        "CRASHPOINTS, repro.parallel.names) are the contract between\n"
        "instrumented call sites and report joins. The per-file rule\n"
        "catches literal typos; this rule folds assembled names\n"
        "(f-strings, %-formats, constant references) project-wide and\n"
        "resolves them the same way, and then reconciles the other\n"
        "direction: an entry no call site, folded name, or pattern can\n"
        "produce is dead — the report column it feeds will always be\n"
        "empty, which is exactly the silent drift the registry exists\n"
        "to prevent."
    )
    example = (
        "PREFIX = \"poool\"                  # typo'd constant\n"
        "\n"
        "def bind(metrics, name):\n"
        "    # folds to \"poool.<name>.hits\" -> matches no registry\n"
        "    # entry pattern -> registry-resolution\n"
        "    return metrics.counter(f\"{PREFIX}.{name}.hits\")\n"
    )

    def check_project(self, graph):
        registries = {}       # kind -> {value: lineno}
        registry_files = {}   # kind -> rel_path
        registry_names = {}   # kind -> "module.CONST"
        for kind, module, const_name in REGISTRIES:
            summary = graph.by_module.get(module)
            if summary is None:
                continue
            entries = graph.fold_string_collection(module, const_name)
            if entries is None:
                continue
            values = {}
            for value, lineno in entries:
                values.setdefault(value, lineno)
            registries[kind] = values
            registry_files[kind] = summary["rel_path"]
            registry_names[kind] = "%s.%s" % (module, const_name)
        if not registries:
            return

        excluded_files = set(registry_files.values())
        literal_uses = set()
        for rel_path in sorted(graph.summaries):
            if rel_path in excluded_files:
                continue
            literal_uses.update(graph.summaries[rel_path]["string_literals"])

        patterns = {kind: [] for kind in registries}
        folded_uses = {kind: set() for kind in registries}

        # Pass 1: fold every recorded site; check fully-folded names.
        for module, qualname, info in graph.iter_functions():
            rel_path = graph.by_module[module]["rel_path"]
            if rel_path in excluded_files:
                continue
            for site in info["name_sites"]:
                kind = site["kind"]
                if kind not in registries:
                    continue
                folded = self._fold_site(graph, module, site["parts"])
                if folded is None:
                    patterns[kind].append(re.compile(".*"))
                    continue
                value, fully, assembled = folded
                if fully:
                    folded_uses[kind].add(value)
                    if assembled and value not in registries[kind]:
                        hint = _closest(value, registries[kind])
                        suffix = ("; did you mean %r?" % hint
                                  if hint else "")
                        yield self.project_finding(
                            graph, rel_path, site["lineno"],
                            "%s name %r (folded from the expression in "
                            "%r) is not in %s%s — add it to the registry "
                            "or fix the parts"
                            % (kind, value, qualname,
                               registry_names[kind], suffix))
                else:
                    patterns[kind].append(re.compile(value))

        # Pass 2: every registry entry must be reachable by some use.
        for kind in sorted(registries):
            for value in sorted(registries[kind]):
                if value in literal_uses or value in folded_uses[kind]:
                    continue
                if any(pattern.fullmatch(value)
                       for pattern in patterns[kind]):
                    continue
                yield self.project_finding(
                    graph, registry_files[kind], registries[kind][value],
                    "registry entry %r in %s is never used by any call "
                    "site, folded name, or literal in the linted tree — "
                    "instrument a site with it or remove the entry"
                    % (value, registry_names[kind]))

    def _fold_site(self, graph, module, parts):
        """(value, fully_folded, assembled) for one site's parts.

        ``value`` is the assembled name when fully folded, else a regex
        source with ``.*`` holes. ``assembled`` is False for a plain
        single literal (the per-file rule already owns those). Returns
        None when nothing useful folds (all holes).
        """
        pieces = []
        fully = True
        assembled = len(parts) != 1 or "lit" not in (parts[0] or {})
        resolved_any = False
        for part in parts:
            if part is None:
                pieces.append(None)
                fully = False
                continue
            if "lit" in part:
                pieces.append(part["lit"])
                resolved_any = True
                continue
            resolved = graph.resolve_constant(module, part["ref"])
            if resolved is not None and resolved[2].get("kind") == "str":
                pieces.append(resolved[2]["value"])
                resolved_any = True
            else:
                pieces.append(None)
                fully = False
        if not resolved_any:
            return None
        if fully:
            return "".join(pieces), True, assembled
        regex = "".join(
            re.escape(piece) if piece is not None else ".*"
            for piece in pieces
        )
        return regex, False, assembled
