"""cross-domain-shared-state: module globals written from two worlds.

A module-level mutable written from exactly one execution domain is a
(possibly ugly) cache. The same binding written from *two* domains is a
race against the determinism contract:

* main + worker: the serial path mutates the shared module, the pooled
  path mutates a fork's copy — same seed, different bytes.
* any cluster message handler: every in-process ``ArrayNode`` shares
  the interpreter, so a module-level write from ``handle_*`` is state
  shared between nodes that are modelled as separate machines.
* main + sim-callback: callback ordering belongs to the event queue;
  interleaved writes make replay order load-bearing in a way no local
  reader can see.

Writes are aggregated per (module, binding) over the whole graph, each
writer tagged with its domains; the finding lands on every write site
of an offending binding so a pragma must be argued for at each one.
"""

from repro.lint.domains import (CLUSTER_HANDLER, MAIN, SIM_CALLBACK,
                                WORKER, build_domains)
from repro.lint.rule import ProjectRule, register


@register
class CrossDomainSharedState(ProjectRule):

    id = "cross-domain-shared-state"
    summary = ("module-level mutables must not be written from more "
               "than one execution domain (main/worker/sim-callback/"
               "cluster-handler)")
    rationale = (
        "Execution domains have different sharing semantics: worker code\n"
        "runs in forked pool processes (writes hit the fork's copy),\n"
        "cluster handle_* methods run in every in-process node (writes\n"
        "are accidentally cross-node), sim callbacks interleave at the\n"
        "event queue's pleasure. A module-level mutable written from two\n"
        "of these worlds — or from any cluster handler at all — is\n"
        "shared state whose final value depends on which world ran,\n"
        "which is exactly what same-seed byte-identity forbids."
    )
    example = (
        "_SEEN = set()            # module-level mutable\n"
        "\n"
        "def record(key):         # called from the main line\n"
        "    _SEEN.add(key)\n"
        "\n"
        "@pure_worker\n"
        "def scan(chunk):         # ...and from the worker domain\n"
        "    _SEEN.add(chunk.key) # -> cross-domain-shared-state\n"
        "    return summarize(chunk)\n"
    )

    def check_project(self, graph):
        domains = build_domains(graph)
        # (module, name) -> [(writer_domains, rel_path, lineno, qualname)]
        writes = {}
        for module, qualname, info in graph.iter_functions():
            writer_domains = domains.domains_of(module, qualname)
            rel_path = graph.by_module[module]["rel_path"]
            for target_module, name, lineno in info["writes"]:
                owner = target_module or module
                writes.setdefault((owner, name), []).append(
                    (frozenset(writer_domains), rel_path, lineno, qualname))

        for (owner, name) in sorted(writes):
            sites = writes[(owner, name)]
            union = set()
            for writer_domains, _, _, _ in sites:
                union.update(writer_domains)
            union.discard("hot")  # hot is a perf tag, not a sharing domain
            cross = len(union & {MAIN, WORKER, SIM_CALLBACK,
                                 CLUSTER_HANDLER}) > 1
            handler_write = CLUSTER_HANDLER in union
            if not cross and not handler_write:
                continue
            if union == {WORKER}:
                # All-worker writes are worker-transitive-purity's
                # finding; do not report the same sites twice.
                continue
            reason = ("is written from domains {%s}"
                      % ", ".join(sorted(union)))
            if handler_write and not cross:
                reason = ("is written from a cluster message handler — "
                          "in-process nodes share the interpreter, so "
                          "this is cross-node shared state")
            for writer_domains, rel_path, lineno, qualname in sorted(
                    sites, key=lambda site: (site[1], site[2])):
                yield self.project_finding(
                    graph, rel_path, lineno,
                    "module-level mutable %r (in %s) %s; write here is "
                    "from %r in domain {%s}"
                    % (name, owner, reason, qualname,
                       ", ".join(sorted(writer_domains))))
