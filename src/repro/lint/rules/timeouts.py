"""no-inline-timeout: timing knobs live in config, not at call sites.

Retry counts, backoffs, deadlines, and SLO thresholds shape every
latency number this repo reports; a literal buried at a call site
(``backoff = 0.25``, ``connect(deadline=5 * MICROSECOND)``) is a knob
nobody can find, document, or sweep. All such knobs belong in
``src/repro/core/config.py`` — either as :class:`ArrayConfig` fields or
as documented module constants — and call sites read them from there.

Flagged, in ``src/repro`` outside ``config.py``: assignments inside
classes or functions whose target name smells like a timing knob
(``*timeout*``, ``*deadline*``, ``*backoff*``, ``*retry*/``*retries*``,
``*slo*``) bound to a *pure literal* timing expression; call keywords
and function-parameter defaults with the same shape. A pure literal is
a numeric constant, possibly combined with unit constants
(``250 * MICROSECOND``) — expressions involving runtime values
(``self.retry_backoff * (2 ** attempts)``) are derived, not inline,
and stay legal. Module-level ``UPPER_CASE`` assignments are exempt:
a named, documented module constant is exactly the alternative this
rule pushes toward.
"""

import ast

from repro.lint.rule import Rule, register

#: Words that mark a name as a timing knob. Matched against whole
#: ``_``-separated tokens so ``slo`` does not catch ``slots``.
KNOB_WORDS = frozenset({
    "timeout", "deadline", "backoff", "retry", "retries", "slo",
})


def _is_knob_name(name):
    return any(token in KNOB_WORDS for token in name.lower().split("_"))


#: The sanctioned home for timing literals.
ALLOWED_FILES = frozenset({
    "src/repro/core/config.py",
})


def _is_numeric_constant(node):
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def _is_unit_name(node):
    """An UPPER_CASE name or attribute: a unit/module constant."""
    if isinstance(node, ast.Name):
        return node.id.isupper()
    if isinstance(node, ast.Attribute):
        return node.attr.isupper()
    return False


def _literal_shape(node):
    """(is_pure_literal, contains_numeric) for a candidate expression."""
    if _is_numeric_constant(node):
        return True, True
    if _is_unit_name(node):
        return True, False
    if isinstance(node, ast.UnaryOp):
        return _literal_shape(node.operand)
    if isinstance(node, ast.BinOp):
        left_pure, left_num = _literal_shape(node.left)
        right_pure, right_num = _literal_shape(node.right)
        return left_pure and right_pure, left_num or right_num
    return False, False


def _is_inline_timing_literal(node):
    """True for ``30``, ``0.25``, ``250 * MICROSECOND``, ``5 * KIB * 2``
    — but not for ``config.hedge_deadline`` or derived expressions."""
    pure, numeric = _literal_shape(node)
    return pure and numeric


def _target_names(target):
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        return [target.attr]
    if isinstance(target, (ast.Tuple, ast.List)):
        names = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


@register
class NoInlineTimeout(Rule):

    id = "no-inline-timeout"
    summary = ("timeout/retry/backoff/deadline literals belong in "
               "core/config.py, not at call sites")
    rationale = (
        "Timing knobs scattered as call-site literals drift apart: two\n"
        "sites meant to share a deadline get tuned independently, and\n"
        "experiments can't sweep a knob that has no name. Every\n"
        "timeout/retry/backoff value lives as a named constant (module\n"
        "UPPER_CASE or core/config.py) so it is greppable, sweepable,\n"
        "and consistent."
    )
    example = (
        "def read(self, lba):\n"
        "    return self._wait(timeout=0.25)   # magic inline deadline\n"
        "    # fix: timeout=READ_TIMEOUT (named module constant)\n"
    )

    def applies_to(self, ctx):
        return ctx.in_src and ctx.rel_path not in ALLOWED_FILES

    def check(self, ctx):
        yield from self._scan(ctx, ctx.tree.body, module_level=True)

    def _scan(self, ctx, body, module_level):
        for node in body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assign(ctx, node, module_level)
            elif isinstance(node, ast.ClassDef):
                yield from self._scan(ctx, node.body, module_level=False)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(ctx, node)
                yield from self._scan(ctx, node.body, module_level=False)
            elif hasattr(node, "body"):
                # if/for/while/with/try keep the enclosing scope.
                for block in ("body", "orelse", "finalbody"):
                    yield from self._scan(
                        ctx, getattr(node, block, []), module_level
                    )
                for handler in getattr(node, "handlers", []):
                    yield from self._scan(ctx, handler.body, module_level)
        # Call keywords can hide anywhere in the scanned statements.
        if module_level:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.keyword):
                    yield from self._check_keyword(ctx, node)

    def _check_assign(self, ctx, node, module_level):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        else:
            targets, value = [node.target], node.value
        if value is None or not _is_inline_timing_literal(value):
            return
        if _is_numeric_constant(value) and value.value == 0:
            # ``exhausted_retries = 0`` is a counter being zeroed, not a
            # timing knob — no real deadline/backoff is ever literal 0.
            return
        for target in targets:
            for name in _target_names(target):
                if not _is_knob_name(name):
                    continue
                if module_level and name.isupper():
                    # A named, documented module constant — the pattern
                    # this rule steers code toward (cf. ha.py's
                    # CLIENT_TIMEOUT_SECONDS).
                    continue
                yield self.finding(
                    ctx, node,
                    "inline timing literal assigned to %r; hoist it into "
                    "core/config.py (ArrayConfig field or module "
                    "constant)" % name,
                )

    def _check_keyword(self, ctx, node):
        if node.arg is None or not _is_knob_name(node.arg):
            return
        if _is_inline_timing_literal(node.value):
            yield self.finding(
                ctx, node.value,
                "inline timing literal for keyword %r; pass a config "
                "value or a core/config.py constant instead" % node.arg,
            )

    def _check_defaults(self, ctx, node):
        args = node.args
        positional = args.posonlyargs + args.args
        defaults = args.defaults
        for arg, default in zip(positional[len(positional) - len(defaults):],
                                defaults):
            yield from self._check_one_default(ctx, arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                yield from self._check_one_default(ctx, arg, default)

    def _check_one_default(self, ctx, arg, default):
        if _is_knob_name(arg.arg) and _is_inline_timing_literal(default):
            yield self.finding(
                ctx, default,
                "inline timing literal as default for parameter %r; "
                "default it from core/config.py" % arg.arg,
            )
