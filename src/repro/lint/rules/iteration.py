"""nondeterministic-iteration: never iterate hash-ordered collections.

Sets (and ``frozenset``s) iterate in hash order, and hash order is the
one thing ``PYTHONHASHSEED`` is allowed to change between runs. Any
``for`` loop, comprehension, ``list()``/``tuple()``/``enumerate()``
call, or ``"".join()`` over a set therefore produces run-dependent
order — poison for a simulator whose contract is byte-identical traces
and exports. ``dict`` iteration is insertion-ordered and fine.

The per-file half of this rule flags inline set expressions
(``for x in {…}``, ``set(…)``, ``vars()``/``globals()``). The
whole-program half resolves *names* being iterated against the graph's
module-level constants — catching ``for name in SPAN_NAMES`` in a
module that imported ``SPAN_NAMES`` from two hops away. Wrapping the
iterable in ``sorted(...)`` is the fix and is exempt by construction
(the extractor never records sorted iterables).
"""

from repro.lint.graph import SET_KINDS
from repro.lint.rule import ProjectRule, register


@register
class NondeterministicIteration(ProjectRule):

    id = "nondeterministic-iteration"
    summary = ("iterating a set/frozenset (inline or via a resolved "
               "module constant) has hash order; wrap it in sorted()")
    rationale = (
        "Set iteration order is hash order, and hash order moves with\n"
        "PYTHONHASHSEED. Anything that iterates a set and lets the order\n"
        "reach placement scores, trace lines, or exported JSONL breaks\n"
        "byte-identity between two runs of the same seed. The fix is\n"
        "one word: sorted(). The rule resolves iterated names through\n"
        "the project graph, so a frozenset imported via a package\n"
        "re-export is still caught at its iteration site."
    )
    example = (
        "NAMES = frozenset({\"a\", \"b\"})\n"
        "\n"
        "def export(out):\n"
        "    for name in NAMES:       # hash order -> run-dependent file\n"
        "        out.write(name)      # fix: for name in sorted(NAMES)\n"
    )

    def check_project(self, graph):
        for module, qualname, info in graph.iter_functions():
            rel_path = graph.by_module[module]["rel_path"]
            for kind, detail, lineno in info["set_iterations"]:
                if kind == "inline":
                    yield self.project_finding(
                        graph, rel_path, lineno,
                        "%r iterates %s — set iteration is hash order "
                        "and varies with PYTHONHASHSEED; wrap the "
                        "iterable in sorted()" % (qualname, detail))
                    continue
                resolved = graph.resolve_constant(module, detail)
                if resolved is None:
                    continue
                res_module, symbol, const = resolved
                if const["kind"] not in SET_KINDS:
                    continue
                yield self.project_finding(
                    graph, rel_path, lineno,
                    "%r iterates %s.%s, a %s — iteration order is hash "
                    "order and varies with PYTHONHASHSEED; wrap it in "
                    "sorted()" % (qualname, res_module, symbol,
                                  const["kind"]))
