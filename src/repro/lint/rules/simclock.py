"""sim-clock-monotonic: never cache clock.now across a yield.

Process-style simulation code (generators driven by the event loop)
suspends at every ``yield`` — and simulated time moves while it is
suspended. A ``clock.now`` reading cached in a local before a yield is
stale after it; arithmetic on the stale value (latency accounting,
timeout checks) silently reports times from before the suspension.
Correct code re-reads ``clock.now`` after every resume.

The rule flags, inside any generator function in ``src/repro``, a local
assigned from an expression containing ``<...>clock.now`` that is read
again on a line after a later ``yield``. Non-generator functions are
exempt: without a yield there is no suspension and caching is fine
(and common — ``start = clock.now`` around a computed latency).
"""

import ast

from repro.lint.astutil import functions, is_generator, own_nodes
from repro.lint.rule import Rule, register


def _reads_clock_now(expr):
    """Whether ``expr`` contains an attribute read of ``<...>clock.now``."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == "now":
            base = node.value
            if isinstance(base, ast.Name) and base.id.endswith("clock"):
                return True
            if isinstance(base, ast.Attribute) and base.attr.endswith("clock"):
                return True
    return False


@register
class SimClockMonotonic(Rule):

    id = "sim-clock-monotonic"
    summary = ("generator callbacks must not cache clock.now across a "
               "yield; re-read after resume")
    rationale = (
        "A generator scheduled on the event loop suspends at every\n"
        "yield, and simulated time advances while it sleeps. A local\n"
        "variable holding clock.now from before the yield is a stale\n"
        "timestamp afterwards; durations computed from it are negative\n"
        "or wrong and poison latency histograms. Re-read the clock\n"
        "after every resume."
    )
    example = (
        "def service(clock):\n"
        "    started = clock.now\n"
        "    yield wait(1.0)\n"
        "    record(clock.now - started)  # 'started' is pre-yield time;\n"
        "                                 # re-read clock.now after resume\n"
    )

    def applies_to(self, ctx):
        return ctx.in_src

    def check(self, ctx):
        for func in functions(ctx.tree):
            if not is_generator(func):
                continue
            assigns = {}   # name -> first line assigned from clock.now
            yields = []
            reads = {}     # name -> [lines read]
            for node in own_nodes(func):
                if isinstance(node, ast.Assign) and _reads_clock_now(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            line = assigns.get(target.id)
                            if line is None or node.lineno < line:
                                assigns[target.id] = node.lineno
                elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                    yields.append(node.lineno)
                elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    reads.setdefault(node.id, []).append(node.lineno)
            for name, assigned_line in sorted(assigns.items()):
                crossed = [y for y in yields if y >= assigned_line]
                if not crossed:
                    continue
                first_yield = min(crossed)
                stale_reads = [
                    line for line in reads.get(name, [])
                    if line > first_yield
                ]
                if stale_reads:
                    yield self.finding(
                        ctx, _line_anchor(assigned_line),
                        "'%s' caches clock.now at line %d but is read at "
                        "line %d after a yield (line %d); simulated time "
                        "moved while suspended — re-read clock.now"
                        % (name, assigned_line, min(stale_reads), first_yield),
                    )


class _line_anchor:
    """A minimal node-alike to anchor a finding at a line."""

    def __init__(self, lineno):
        self.lineno = lineno
        self.col_offset = 0
