"""worker-transitive-purity: the whole worker closure is pure.

``no-unseeded-worker`` polices the bodies of ``@pure_worker`` functions
directly; it cannot see that a worker calls a helper two modules away
that reads ``os.environ`` or appends to a module-level list. This rule
walks the resolved call graph from every worker root and checks the
*closure*:

* no function reachable from a worker root may write module-level
  state (a write in a forked pool process mutates the child's copy —
  silently diverging from the serial run's shared module);
* no reachable callee may read the wall clock or the process-global
  RNG (the roots themselves are covered by ``no-unseeded-worker``; this
  rule extends the same ban transitively);
* no reachable function may read ``os.environ`` or touch the obs
  singletons (``PERF``, ``NULL_OBS``) — host-side state that differs
  between the sim process and pool children.

Findings name the call path back to the worker root so "why is this
function in the worker domain?" is answered in the message itself.
"""

from repro.lint.domains import build_domains
from repro.lint.rule import ProjectRule, register

_IMPURITY_VERBS = {
    "wall-clock": "reads the wall clock via",
    "rng": "draws from process-global randomness via",
    "env": "reads the host environment via",
    "obs-singleton": "touches the obs singleton",
}


@register
class WorkerTransitivePurity(ProjectRule):

    id = "worker-transitive-purity"
    summary = ("everything reachable from a @pure_worker root must be "
               "free of module-state writes, RNG, wall clock, and env")
    rationale = (
        "@pure_worker functions fan out to forked pool processes, and the\n"
        "determinism contract says the result bytes are identical at any\n"
        "worker count. A worker is only pure if its transitive callees\n"
        "are: a helper that mutates a module-level dict mutates the\n"
        "child's copy in pooled runs but the shared module in serial\n"
        "runs, and a callee that reads the clock, the global RNG, or\n"
        "os.environ folds host state into 'pure' results. The per-file\n"
        "no-unseeded-worker rule checks worker bodies; this rule extends\n"
        "the same ban over the resolved project call graph."
    )
    example = (
        "_CACHE = {}\n"
        "\n"
        "def lookup(level):\n"
        "    if level not in _CACHE:\n"
        "        _CACHE[level] = build(level)   # write reachable from a\n"
        "    return _CACHE[level]               # worker root -> finding\n"
        "\n"
        "@pure_worker\n"
        "def compress(chunk):\n"
        "    return lookup(chunk.level).compress(chunk.data)\n"
    )

    def check_project(self, graph):
        domains = build_domains(graph)
        for module, qualname in domains.worker_members():
            summary = graph.by_module[module]
            info = summary["functions"][qualname]
            rel_path = summary["rel_path"]
            path = domains.worker_path(module, qualname) or qualname
            is_root = (module, qualname) in domains.worker_roots

            for target_module, name, lineno in info["writes"]:
                where = ("%s.%s" % (target_module, name)
                         if target_module else name)
                yield self.project_finding(
                    graph, rel_path, lineno,
                    "%r writes module-level state %r but is reachable "
                    "from a @pure_worker root (%s); pooled runs mutate "
                    "the fork's copy and diverge from serial runs"
                    % (qualname, where, path))

            for kind, detail, lineno in info["impurities"]:
                if is_root and kind in ("wall-clock", "rng"):
                    # The root's own clock/RNG use is no-unseeded-worker's
                    # finding; do not report it twice.
                    continue
                yield self.project_finding(
                    graph, rel_path, lineno,
                    "%r %s %r but is reachable from a @pure_worker root "
                    "(%s); worker results must be a function of the "
                    "arguments alone"
                    % (qualname, _IMPURITY_VERBS[kind], detail, path))
