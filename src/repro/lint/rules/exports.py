"""stable-export: serialized output must be order-stable.

The golden-trace tests assert byte-identical JSONL across same-seed
runs; that only holds when every ``json.dump(s)`` passes
``sort_keys=True`` and every dict/set iteration feeding an export is
explicitly sorted. Python dicts preserve insertion order, but insertion
order is a property of the run, not of the data — "it happened to be
sorted when I wrote it" is exactly the kind of invariant that rots.

Two checks, both scoped to ``src/repro``:

* every ``json.dump``/``json.dumps`` call must carry a literal
  ``sort_keys=True``;
* inside an *export function* — one that calls ``json.dump(s)``
  directly, or calls a module-local function that does (resolved to a
  fixpoint over the module's call graph) — any ``for`` loop or
  comprehension iterating ``<expr>.items()/.keys()/.values()`` or a
  ``set(...)`` must wrap the iterable in ``sorted(...)``.
"""

import ast

from repro.lint.astutil import functions, is_const_true, keyword_arg, own_nodes
from repro.lint.rule import Rule, register

DICT_ITERATORS = frozenset({"items", "keys", "values"})


def _is_json_dump(node, ctx):
    """Whether ``node`` is a call of json.dump/json.dumps."""
    func = node.func
    json_aliases = ctx.imports.module_aliases("json")
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id in json_aliases and func.attr in ("dump", "dumps")
    if isinstance(func, ast.Name):
        original = ctx.imports.from_imports("json").get(func.id)
        return original in ("dump", "dumps")
    return False


def _unsorted_iterable(node):
    """If ``node`` is an unsorted dict-view/set iterable, describe it."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in DICT_ITERATORS \
                and not node.args and not node.keywords:
            return ".%s()" % func.attr
        if isinstance(func, ast.Name) and func.id == "set":
            return "set(...)"
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return "a set literal"
    return None


@register
class StableExport(Rule):

    id = "stable-export"
    summary = ("json.dump(s) needs sort_keys=True; dict/set iteration "
               "feeding exports must be sorted")
    rationale = (
        "Exports (trace JSONL, metrics JSONL, reports) are diffed\n"
        "byte-for-byte in CI and between runs: an unsorted json.dumps\n"
        "or a hash-ordered iteration feeding an export makes identical\n"
        "runs produce different bytes. Every serialization boundary\n"
        "sorts: sort_keys=True on dumps, sorted() on the iterations\n"
        "that feed them."
    )
    example = (
        "def export(metrics, out):\n"
        "    out.write(json.dumps(metrics))   # missing sort_keys=True\n"
    )

    def applies_to(self, ctx):
        return ctx.in_src

    def check(self, ctx):
        # Pass 1: every json.dump(s) call needs a literal sort_keys=True.
        dump_calls = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_json_dump(node, ctx):
                dump_calls.append(node)
                sort_keys = keyword_arg(node, "sort_keys")
                if sort_keys is None or not is_const_true(sort_keys):
                    yield self.finding(
                        ctx, node,
                        "json.dump(s) without sort_keys=True: key order "
                        "would depend on insertion history, not data",
                    )
        if not dump_calls:
            return

        # Pass 2: resolve the module's export functions to a fixpoint.
        dump_ids = {id(call) for call in dump_calls}
        funcs = functions(ctx.tree)
        calls_json = set()
        callees = {}
        for func in funcs:
            names = set()
            for node in own_nodes(func):
                if isinstance(node, ast.Call):
                    if id(node) in dump_ids:
                        calls_json.add(func.name)
                    elif isinstance(node.func, ast.Name):
                        names.add(node.func.id)
                    elif isinstance(node.func, ast.Attribute):
                        # self._dumps(...) style module-local helpers
                        names.add(node.func.attr)
            callees[func.name] = names
        export_funcs = set(calls_json)
        changed = True
        while changed:
            changed = False
            for name, called in callees.items():
                if name not in export_funcs and called & export_funcs:
                    export_funcs.add(name)
                    changed = True

        # Pass 3: unsorted dict/set iteration inside export functions.
        for func in funcs:
            if func.name not in export_funcs:
                continue
            for node in own_nodes(func):
                iterables = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iterables.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iterables.extend(gen.iter for gen in node.generators)
                for iterable in iterables:
                    described = _unsorted_iterable(iterable)
                    if described is not None:
                        yield self.finding(
                            ctx, iterable,
                            "iteration over %s feeds an export from "
                            "'%s' without sorted(...): order would be "
                            "insertion history, not data"
                            % (described, func.name),
                        )
