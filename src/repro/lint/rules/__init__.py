"""Built-in rules; importing this package registers every rule."""

from repro.lint.rules import (
    excepts,
    exports,
    hotpath,
    randomness,
    registry_sync,
    simclock,
    timeouts,
    wallclock,
    workers,
)

__all__ = [
    "excepts",
    "exports",
    "hotpath",
    "randomness",
    "registry_sync",
    "simclock",
    "timeouts",
    "wallclock",
    "workers",
]
