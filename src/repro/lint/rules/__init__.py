"""Built-in rules; importing this package registers every rule."""

from repro.lint.rules import (
    excepts,
    exports,
    hotpath,
    iteration,
    purity,
    randomness,
    registry_sync,
    registry_usage,
    sharedstate,
    simclock,
    timeouts,
    wallclock,
    workers,
)

__all__ = [
    "excepts",
    "exports",
    "hotpath",
    "iteration",
    "purity",
    "randomness",
    "registry_sync",
    "registry_usage",
    "sharedstate",
    "simclock",
    "timeouts",
    "wallclock",
    "workers",
]
