"""wall-clock-purity: the data path never reads the host clock.

Same seed must mean byte-identical traces, which dies the moment any
``src/repro`` module reads wall-clock time — simulated time comes from
:class:`repro.sim.clock.SimClock` and nothing else. The only sanctioned
home for wall time is :mod:`repro.perf` (host-side stage timers whose
numbers are explicitly excluded from deterministic exports); tests and
benchmarks are out of scope entirely.

Flagged: any *reference* to ``time.time/monotonic/monotonic_ns/
perf_counter[_ns]/process_time[_ns]/time_ns/sleep``, ``datetime.now/
utcnow/today`` (and ``date.today``) — references, not just calls, so
``monotonic = time.monotonic_ns`` cannot smuggle a clock in. From-form
imports of those names are flagged at the import.
"""

import ast

from repro.lint.rule import Rule, register

WALL_CLOCK_ATTRS = frozenset({
    "time", "time_ns",
    "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns",
    "sleep",
})

DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: src/repro files allowed to read the host clock.
ALLOWED_FILES = frozenset({
    "src/repro/perf.py",
})


@register
class WallClockPurity(Rule):

    id = "wall-clock-purity"
    summary = ("no wall-clock reads in src/repro outside perf.py; "
               "sim time comes from SimClock")
    rationale = (
        "Same seed must mean byte-identical traces and metrics, so the\n"
        "host's clock can never influence the data path: any timestamp\n"
        "that reaches a trace, an export, or a control decision must\n"
        "come from the simulated SimClock. Wall-clock reads are allowed\n"
        "only in repro/perf.py (host-side profiling, explicitly outside\n"
        "the determinism contract)."
    )
    example = (
        "import time\n"
        "\n"
        "def flush(segio):\n"
        "    started = time.monotonic()   # wall clock on the data path\n"
        "    ...                          # fix: clock.now (sim time)\n"
    )

    def applies_to(self, ctx):
        return ctx.in_src and ctx.rel_path not in ALLOWED_FILES

    def check(self, ctx):
        time_aliases = ctx.imports.module_aliases("time")
        datetime_aliases = ctx.imports.module_aliases("datetime")
        datetime_classes = set(ctx.imports.from_imports("datetime"))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in WALL_CLOCK_ATTRS:
                        yield self.finding(
                            ctx, node,
                            "wall-clock import 'from time import %s'; use the "
                            "sim clock (or move the timing into repro.perf)"
                            % alias.name,
                        )
            elif isinstance(node, ast.Attribute):
                base = node.value
                if isinstance(base, ast.Name):
                    if base.id in time_aliases \
                            and node.attr in WALL_CLOCK_ATTRS:
                        yield self.finding(
                            ctx, node,
                            "wall-clock read 'time.%s'; simulated components "
                            "take their time from SimClock.now" % node.attr,
                        )
                    elif (base.id in datetime_classes
                            or base.id in datetime_aliases) \
                            and node.attr in DATETIME_ATTRS:
                        yield self.finding(
                            ctx, node,
                            "wall-clock read '%s.%s'; nothing host-time-"
                            "dependent may enter sim state or exports"
                            % (base.id, node.attr),
                        )
                elif isinstance(base, ast.Attribute) \
                        and isinstance(base.value, ast.Name) \
                        and base.value.id in datetime_aliases \
                        and node.attr in DATETIME_ATTRS:
                    # datetime.datetime.now / datetime.date.today
                    yield self.finding(
                        ctx, node,
                        "wall-clock read 'datetime.%s.%s'"
                        % (base.attr, node.attr),
                    )
