"""seeded-randomness: every random draw comes from an explicit seed.

The simulation's contract is "same seed, same run": traces, fault
schedules, and benchmark numbers are only debuggable because they
replay exactly. That breaks the moment code draws from the
process-global ``random`` module functions, builds a ``random.Random()``
/ ``RandomStream()`` / numpy ``default_rng()`` with no seed.

This is the AST-resolved successor of the regex scan that used to live
in ``tests/test_determinism_audit.py``: ``stream.random()`` (a method
on a seeded ``RandomStream``) is legal because the receiver is resolved
against the module's imports, not pattern-matched — and mentions inside
strings, comments, or error messages no longer false-positive.

The runtime half of the audit is ``repro.sim.rand.STRICT_SEEDING``,
which the root conftest arms for the whole suite.
"""

import ast

from repro.lint.astutil import receiver_last_name
from repro.lint.rule import Rule, register

#: Module-level draw functions on the global (OS-seeded) RNG.
GLOBAL_DRAWS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "randbytes", "uniform", "gauss", "normalvariate",
    "expovariate", "getrandbits", "betavariate", "triangular", "seed",
})


@register
class SeededRandomness(Rule):

    id = "seeded-randomness"
    summary = ("no module-level random.* draws or seedless Random()/"
               "RandomStream()/default_rng()")
    rationale = (
        "Every random draw in the simulator must trace back to the run\n"
        "seed: the process-global RNG (random.random() and friends) and\n"
        "seedless generator constructions produce values that differ\n"
        "between runs of the same seed, which silently breaks the\n"
        "byte-identity contract. Derive streams from the run seed\n"
        "(repro.sim.rand.RandomStream) instead."
    )
    example = (
        "import random\n"
        "\n"
        "def jitter(base):\n"
        "    return base * random.random()   # process-global RNG\n"
        "    # fix: base * stream.uniform()  (seeded RandomStream)\n"
    )

    def check(self, ctx):
        random_aliases = ctx.imports.module_aliases("random")
        from_random = ctx.imports.from_imports("random")
        numpy_random_aliases = ctx.imports.module_aliases("numpy.random")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in GLOBAL_DRAWS:
                        yield self.finding(
                            ctx, node,
                            "'from random import %s' binds the process-"
                            "global unseeded RNG; draw from a seeded "
                            "RandomStream instead" % alias.name,
                        )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            seedless = not node.args and not node.keywords
            if isinstance(func, ast.Attribute):
                recv = receiver_last_name(node)
                if recv in random_aliases:
                    if func.attr in GLOBAL_DRAWS:
                        yield self.finding(
                            ctx, node,
                            "module-level draw 'random.%s(...)' uses the "
                            "process-global unseeded RNG" % func.attr,
                        )
                    elif func.attr == "Random" and seedless:
                        yield self.finding(
                            ctx, node,
                            "'random.Random()' with no seed draws its state "
                            "from the OS; pass an explicit seed",
                        )
                elif func.attr == "default_rng" and seedless and (
                        recv in numpy_random_aliases or recv == "random"):
                    yield self.finding(
                        ctx, node,
                        "'default_rng()' with no seed is OS-seeded; pass an "
                        "explicit seed",
                    )
                elif func.attr == "RandomStream" and seedless:
                    yield self.finding(
                        ctx, node,
                        "'RandomStream()' with no seed leans on the default; "
                        "pass an explicit seed (STRICT_SEEDING raises here "
                        "at runtime)",
                    )
            elif isinstance(func, ast.Name):
                original = from_random.get(func.id)
                if original == "Random" and seedless:
                    yield self.finding(
                        ctx, node,
                        "'%s()' (random.Random) with no seed draws its state "
                        "from the OS; pass an explicit seed" % func.id,
                    )
                elif func.id == "RandomStream" and seedless:
                    yield self.finding(
                        ctx, node,
                        "'RandomStream()' with no seed leans on the default; "
                        "pass an explicit seed (STRICT_SEEDING raises here "
                        "at runtime)",
                    )
                elif func.id == "default_rng" and seedless:
                    yield self.finding(
                        ctx, node,
                        "'default_rng()' with no seed is OS-seeded; pass an "
                        "explicit seed",
                    )
