"""Execution-domain classification over the project graph.

The determinism contract is enforced differently depending on *where*
code runs, not just what it does:

* ``worker`` — reachable from a ``@pure_worker`` fan-out root. Runs in
  forked pool processes, so any module-level state it writes diverges
  silently between serial and pooled runs.
* ``sim-callback`` — scheduled onto the simulated clock via
  ``call_at``/``call_in``. Ordering is the event queue's, so shared
  state written here interleaves with the main line.
* ``cluster-handler`` — ``handle_*`` message handlers in
  ``repro.cluster``. Every in-process node shares the interpreter, so a
  module-level write here is cross-node shared state.
* ``hot`` — the layout/erasure/compression inner loops (advisory
  perf domain, reused by the hot-path rule).
* ``main`` — everything else (the single-threaded simulation line).

Closures are computed by BFS over resolved call edges, with the call
path back to the domain root retained so findings can say *why* a
function is in the worker domain ("reachable via compress_cblocks ->
_compressor").
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.graph import ProjectGraph

#: Modules whose functions sit on the per-I/O hot path.
HOT_SUBSYSTEMS = ("repro.layout", "repro.erasure", "repro.compression")

WORKER = "worker"
SIM_CALLBACK = "sim-callback"
CLUSTER_HANDLER = "cluster-handler"
HOT = "hot"
MAIN = "main"

FunctionKey = Tuple[str, str]  # (module, qualname)


class DomainMap:
    """Domain membership plus root paths for every src function."""

    def __init__(self, graph: ProjectGraph):
        self.graph = graph
        #: (module, qualname) -> set of domain names (never includes
        #: ``main``; absence of all others means main).
        self.domains: Dict[FunctionKey, Set[str]] = {}
        #: (module, qualname) -> human-readable call path from the
        #: domain root, for the worker domain ("root -> a -> b").
        self.worker_paths: Dict[FunctionKey, List[str]] = {}
        #: Worker roots: the ``@pure_worker``-decorated functions.
        self.worker_roots: Set[FunctionKey] = set()
        self._build()

    # -- construction ---------------------------------------------------

    def _build(self) -> None:
        worker_roots = []
        callback_roots = []
        handler_roots = []
        for module, qualname, info in self.graph.iter_functions():
            key = (module, qualname)
            if any(dec.split(".")[-1] == "pure_worker"
                   for dec in info["decorators"]):
                worker_roots.append(key)
                self.worker_roots.add(key)
            if module.startswith("repro.cluster") \
                    and qualname.split(".")[-1].startswith("handle_"):
                handler_roots.append(key)
            if any(module == sub or module.startswith(sub + ".")
                   for sub in HOT_SUBSYSTEMS):
                self._add(key, HOT)
            for ref, _lineno in info["callback_refs"]:
                resolved = self.graph.resolve_call(module, qualname, ref)
                if resolved is not None:
                    callback_roots.append(resolved)

        self._close_over(worker_roots, WORKER, track_paths=True)
        self._close_over(callback_roots, SIM_CALLBACK)
        self._close_over(handler_roots, CLUSTER_HANDLER)

    def _add(self, key: FunctionKey, domain: str) -> None:
        self.domains.setdefault(key, set()).add(domain)

    def _close_over(self, roots: List[FunctionKey], domain: str,
                    track_paths: bool = False) -> None:
        """BFS the call graph from ``roots``, tagging every reachable
        function with ``domain``."""
        queue = deque()
        for root in sorted(set(roots)):
            if domain in self.domains.get(root, ()):
                continue
            self._add(root, domain)
            if track_paths:
                self.worker_paths[root] = [root[1]]
            queue.append(root)
        while queue:
            module, qualname = queue.popleft()
            info = self._function_info(module, qualname)
            if info is None:
                continue
            for chain, _lineno in info["calls"]:
                resolved = self.graph.resolve_call(module, qualname, chain)
                if resolved is None:
                    continue
                if domain in self.domains.get(resolved, ()):
                    continue
                self._add(resolved, domain)
                if track_paths:
                    parent = self.worker_paths.get((module, qualname), [])
                    self.worker_paths[resolved] = parent + [resolved[1]]
                queue.append(resolved)

    def _function_info(self, module: str, qualname: str):
        summary = self.graph.by_module.get(module)
        if summary is None:
            return None
        return summary["functions"].get(qualname)

    # -- queries --------------------------------------------------------

    def domains_of(self, module: str, qualname: str) -> Set[str]:
        """The function's domains; ``{"main"}`` when untagged."""
        tagged = self.domains.get((module, qualname))
        if not tagged:
            return {MAIN}
        return set(tagged)

    def in_domain(self, module: str, qualname: str, domain: str) -> bool:
        if domain == MAIN:
            return not self.domains.get((module, qualname))
        return domain in self.domains.get((module, qualname), ())

    def worker_path(self, module: str, qualname: str) -> Optional[str]:
        """"root -> ... -> func" for worker-domain members, else None."""
        path = self.worker_paths.get((module, qualname))
        if path is None:
            return None
        return " -> ".join(path)

    def worker_members(self) -> List[FunctionKey]:
        return sorted(key for key, domains in self.domains.items()
                      if WORKER in domains)


def build_domains(graph: ProjectGraph) -> DomainMap:
    """The one-call entry point rules use."""
    return DomainMap(graph)
