"""The whole-program symbol/import/call graph behind the project rules.

Per-file AST rules cannot see that a ``@pure_worker`` function calls a
helper in another module that mutates a module-level dict — the
decorated function is only pure if its *transitive callees* are. This
module builds the project-wide view those rules need:

* one :func:`extract_summary` per file — imports (absolute and
  relative, resolved to dotted module names), module-level constants
  (with enough structure to fold string registries), every function
  with its decorators, call sites, module-state writes, impurity
  markers (wall clock, global RNG, environment, obs singletons),
  set-iteration sites, and instrumentation-name call shapes;
* a :class:`ProjectGraph` that indexes summaries by dotted module name
  and resolves names across files — through plain imports,
  from-imports, package ``__init__`` re-exports, and ``self.``/``cls.``
  method references.

Summaries are plain JSON-serializable dicts on purpose: the incremental
cache (:mod:`repro.lint.cache`) persists them keyed by file hash, so a
warm whole-program pass skips parse-and-walk entirely for unchanged
files. Resolution is deliberately name-based and best-effort — an
unresolvable call (a callable parameter, a method on an arbitrary
object) adds no edge. That keeps the graph sound for its purpose:
every edge it *does* draw is real, so findings never rest on invented
reachability.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.lint.astutil import ImportMap, attr_chain
from repro.lint.cache import load_cache, save_cache, source_hash
from repro.lint.rules.randomness import GLOBAL_DRAWS
from repro.lint.rules.wallclock import DATETIME_ATTRS, WALL_CLOCK_ATTRS

#: Bump when the summary shape changes; invalidates every cache entry.
GRAPH_FORMAT = 1

#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "remove", "discard", "insert", "appendleft",
})

#: Constant kinds that are module-level *mutable* state when bound at
#: module scope (the shared-state and purity rules key off these).
MUTABLE_KINDS = frozenset({"set", "dict", "list", "bytearray", "instance"})

#: Constant kinds whose iteration order is the hash order of the run.
SET_KINDS = frozenset({"set", "frozenset"})

#: Obs singletons: (module, name) pairs whose use inside a worker-domain
#: function leaks host-side shared state into "pure" results.
OBS_SINGLETONS = frozenset({
    ("repro.perf", "PERF"),
    ("repro.obs.trace", "NULL_OBS"),
    ("repro.obs", "NULL_OBS"),
})

#: Instrumentation call shapes (mirrors rules/registry_sync.py).
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram", "series"})
_METRIC_RECEIVERS = frozenset({"metrics", "registry"})
_PARALLEL_RECEIVERS = frozenset({"parallel", "executor"})

_PRINTF_SPEC = re.compile(r"%[-+ #0-9.]*[srdifxXo%]")


def module_name_for(rel_path: str) -> Optional[str]:
    """Dotted module for a repo-relative path; None outside ``src/``."""
    parts = rel_path.split("/")
    if parts[:1] != ["src"] or not rel_path.endswith(".py"):
        return None
    mod_parts = parts[1:]
    mod_parts[-1] = mod_parts[-1][: -len(".py")]
    if mod_parts[-1] == "__init__":
        mod_parts = mod_parts[:-1]
    return ".".join(mod_parts)


def _package_parts(module: str, rel_path: str) -> List[str]:
    """The package a module's relative imports resolve against."""
    parts = module.split(".")
    if rel_path.endswith("/__init__.py"):
        return parts
    return parts[:-1]


def _resolve_relative(module: str, rel_path: str, node: ast.ImportFrom
                      ) -> Optional[str]:
    """Absolute dotted module for a (possibly relative) from-import."""
    if node.level == 0:
        return node.module
    base = _package_parts(module, rel_path)
    if node.level - 1 > len(base):
        return None
    if node.level > 1:
        base = base[: len(base) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


# -- module-level constant folding helpers ------------------------------


def _string_elements(node: ast.AST) -> Optional[List[List[Any]]]:
    """``[[value, lineno], ...]`` for a literal container of strings."""
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        elements = []
        for element in node.elts:
            if isinstance(element, ast.Constant) \
                    and isinstance(element.value, str):
                elements.append([element.value, element.lineno])
            else:
                return None
        return elements
    return None


def _const_info(value: ast.AST) -> Dict[str, Any]:
    """Classify one module-level assignment's value expression.

    ``kind`` drives mutability and set-detection; ``parts`` (when
    present) is a foldable description of a string collection —
    ``{"elems": [[value, lineno], ...]}`` pieces and ``{"ref": name}``
    links to sibling constants, concatenated in order.
    """
    if isinstance(value, ast.Constant):
        if isinstance(value.value, str):
            return {"kind": "str", "value": value.value}
        return {"kind": "const"}
    if isinstance(value, (ast.Set, ast.SetComp)):
        info: Dict[str, Any] = {"kind": "set"}
        elements = _string_elements(value)
        if elements is not None:
            info["parts"] = [{"elems": elements}]
        return info
    if isinstance(value, ast.Dict) or isinstance(value, ast.DictComp):
        return {"kind": "dict"}
    if isinstance(value, (ast.List, ast.ListComp)):
        return {"kind": "list"}
    if isinstance(value, ast.Tuple):
        elements = _string_elements(value)
        info = {"kind": "tuple"}
        if elements is not None:
            info["parts"] = [{"elems": elements}]
        return info
    if isinstance(value, ast.Name):
        return {"kind": "alias", "parts": [{"ref": value.id}]}
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
        left = _const_info(value.left)
        right = _const_info(value.right)
        if left.get("parts") and right.get("parts"):
            return {"kind": "tuple",
                    "parts": left["parts"] + right["parts"]}
        return {"kind": "const"}
    if isinstance(value, ast.Call):
        name = None
        if isinstance(value.func, ast.Name):
            name = value.func.id
        if name in ("set", "bytearray"):
            return {"kind": name if name != "set" else "set"}
        if name in ("dict", "list", "defaultdict", "OrderedDict",
                    "Counter", "deque"):
            return {"kind": "dict" if name in ("dict", "defaultdict",
                                               "OrderedDict", "Counter")
                    else "list"}
        if name == "frozenset":
            info = {"kind": "frozenset"}
            if len(value.args) == 1:
                elements = _string_elements(value.args[0])
                if elements is not None:
                    info["parts"] = [{"elems": elements}]
            return info
        if name == "tuple" and len(value.args) == 1:
            elements = _string_elements(value.args[0])
            info = {"kind": "tuple"}
            if elements is not None:
                info["parts"] = [{"elems": elements}]
            return info
        # Any other call produces an object we treat as mutable module
        # state when bound at module scope (e.g. ``PERF = PerfCounters()``).
        return {"kind": "instance"}
    return {"kind": "const"}


# -- instrumentation-name pattern folding -------------------------------


def _fold_name_expr(node: ast.AST) -> Optional[List[Any]]:
    """Fold a name expression into pattern parts.

    Parts are ``{"lit": str}``, ``{"ref": dotted-name}`` (resolved
    project-wide at rule time), or ``None`` (an unresolvable hole).
    Returns None when the expression is not string-shaped at all.
    """
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return [{"lit": node.value}]
        return None
    if isinstance(node, ast.Name):
        return [{"ref": node.id}]
    if isinstance(node, ast.Attribute):
        chain = attr_chain(node)
        if chain and chain[0] not in ("self", "cls"):
            return [{"ref": ".".join(chain)}]
        return [None]
    if isinstance(node, ast.JoinedStr):
        parts: List[Any] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant) \
                    and isinstance(piece.value, str):
                parts.append({"lit": piece.value})
            elif isinstance(piece, ast.FormattedValue):
                folded = _fold_name_expr(piece.value)
                if folded is not None and len(folded) == 1 \
                        and piece.format_spec is None:
                    parts.extend(folded)
                else:
                    parts.append(None)
            else:
                parts.append(None)
        return parts
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _fold_name_expr(node.left)
        right = _fold_name_expr(node.right)
        if left is not None and right is not None:
            return left + right
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        if not (isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)):
            return None
        template = node.left.value
        values: List[ast.AST]
        if isinstance(node.right, ast.Tuple):
            values = list(node.right.elts)
        else:
            values = [node.right]
        parts = []
        cursor = 0
        value_index = 0
        for match in _PRINTF_SPEC.finditer(template):
            if match.group(0) == "%%":
                continue
            if match.start() > cursor:
                parts.append({"lit": template[cursor:match.start()]})
            if value_index < len(values):
                folded = _fold_name_expr(values[value_index])
                if folded is not None and len(folded) == 1:
                    parts.extend(folded)
                else:
                    parts.append(None)
            else:
                parts.append(None)
            value_index += 1
            cursor = match.end()
        if cursor < len(template):
            parts.append({"lit": template[cursor:]})
        return parts
    return None


def _receiver_last_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _name_site_kind(node: ast.Call) -> Optional[str]:
    """Which registry a call shape resolves against, if any."""
    if not isinstance(node.func, ast.Attribute):
        return None
    method = node.func.attr
    if method == "begin":
        return "span"
    if method == "event":
        return "event"
    if method == "hit":
        return "crashpoint"
    if method == "map" and _receiver_last_name(node) in _PARALLEL_RECEIVERS:
        return "stage"
    if method in _METRIC_METHODS \
            and _receiver_last_name(node) in _METRIC_RECEIVERS:
        return "metric"
    return None


# -- per-function extraction --------------------------------------------


def _binding_names(target: ast.AST, names: set) -> None:
    """Names a store target actually *binds* (``x[k] = v`` binds none)."""
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _binding_names(element, names)
    elif isinstance(target, ast.Starred):
        _binding_names(target.value, names)
    # Subscript/Attribute targets mutate an existing object, they do
    # not create a local binding — that is exactly what the write
    # detector must keep seeing.


def _local_names(func: ast.AST) -> set:
    """Names bound locally in ``func`` (params, assignments, targets)."""
    names = set()
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                _binding_names(target, names)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            _binding_names(node.target, names)
        elif isinstance(node, ast.comprehension):
            _binding_names(node.target, names)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    _binding_names(item.optional_vars, names)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)) and node is not func:
            names.add(node.name)
    # global declarations override the local binding rule.
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            names.difference_update(node.names)
    return names


def _own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Nodes of ``func``'s body, excluding nested def/class/lambda bodies."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _decorator_names(func: ast.AST) -> List[str]:
    names = []
    for decorator in func.decorator_list:
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        chain = attr_chain(target)
        if chain:
            names.append(".".join(chain))
        elif isinstance(target, ast.Name):
            names.append(target.id)
    return names


def _iteration_candidates(func: ast.AST) -> Iterable[Tuple[ast.AST, int]]:
    """Expressions whose iteration order is observable, with linenos."""
    for node in _own_nodes(func):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node.lineno
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter, node.lineno
        elif isinstance(node, ast.Call):
            name = node.func.id if isinstance(node.func, ast.Name) else None
            if name in ("list", "tuple", "enumerate") and len(node.args) >= 1:
                yield node.args[0], node.lineno
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "join" and len(node.args) == 1:
                yield node.args[0], node.lineno


def _classify_iteration(expr: ast.AST) -> Optional[Tuple[str, str]]:
    """("inline"|"name", description-or-dotted-name) for a candidate."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "inline", "a set literal"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("set", "frozenset"):
            return "inline", "%s(...)" % expr.func.id
        if expr.func.id in ("vars", "globals"):
            return "inline", "%s()" % expr.func.id
        return None
    if isinstance(expr, ast.Name):
        return "name", expr.id
    if isinstance(expr, ast.Attribute):
        chain = attr_chain(expr)
        if chain and chain[0] not in ("self", "cls"):
            return "name", ".".join(chain)
    return None


def _extract_function(func: ast.AST, qualname: str, imports: ImportMap,
                      module_bindings: Dict[str, Dict[str, Any]]
                      ) -> Dict[str, Any]:
    locals_ = _local_names(func)
    global_decls = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)

    calls: List[List[Any]] = []
    callback_refs: List[List[Any]] = []
    writes: List[List[Any]] = []
    impurities: List[List[Any]] = []
    set_iterations: List[List[Any]] = []
    name_sites: List[Dict[str, Any]] = []

    def is_module_mutable(name: str) -> bool:
        info = module_bindings.get(name)
        return info is not None and info["kind"] in MUTABLE_KINDS

    def record_store_target(target: ast.AST, lineno: int) -> None:
        # X = / X[k] = / X.attr = / mod.X = ... reaching module state.
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                record_store_target(element, lineno)
            return
        if isinstance(target, ast.Name):
            if target.id in global_decls:
                writes.append([None, target.id, lineno])
            return
        base = target
        while isinstance(base, ast.Subscript):
            base = base.value
        chain = attr_chain(base) if isinstance(base, (ast.Attribute,
                                                      ast.Name)) else None
        if not chain or chain[0] in ("self", "cls") or chain[0] in locals_:
            return
        head = chain[0]
        if len(chain) == 1:
            # ``X[k] = v`` on a module-level binding.
            if isinstance(target, ast.Subscript) and (
                    is_module_mutable(head) or head in global_decls):
                writes.append([None, head, lineno])
            return
        if head in imports.modules:
            # ``mod.NAME = ...`` / ``mod.NAME[k] = ...``
            writes.append([imports.modules[head], chain[1], lineno])
        elif is_module_mutable(head):
            # ``OBJ.attr = ...`` on a module-level instance/container.
            writes.append([None, head, lineno])

    time_aliases = imports.module_aliases("time")
    datetime_aliases = imports.module_aliases("datetime")
    datetime_classes = set(imports.from_imports("datetime"))
    random_aliases = imports.module_aliases("random")
    numpy_random_aliases = imports.module_aliases("numpy.random")
    os_aliases = imports.module_aliases("os")
    from_time_wall = {
        local for local, original in imports.from_imports("time").items()
        if original in WALL_CLOCK_ATTRS
    }
    from_random_draws = {
        local for local, original in imports.from_imports("random").items()
        if original in GLOBAL_DRAWS
    }
    obs_singletons = {
        local for local, (source, original) in imports.names.items()
        if (source, original) in OBS_SINGLETONS
    }

    for node in _own_nodes(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record_store_target(target, node.lineno)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            record_store_target(node.target, node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                record_store_target(target, node.lineno)
        elif isinstance(node, ast.Call):
            chain = None
            if isinstance(node.func, ast.Name):
                chain = [node.func.id]
            elif isinstance(node.func, ast.Attribute):
                chain = attr_chain(node.func)
            if chain:
                calls.append([".".join(chain), node.lineno])
                # Mutator methods on module-level containers.
                if len(chain) == 2 and chain[1] in MUTATOR_METHODS \
                        and chain[0] not in locals_ \
                        and is_module_mutable(chain[0]):
                    writes.append([None, chain[0], node.lineno])
                elif len(chain) == 3 and chain[2] in MUTATOR_METHODS \
                        and chain[0] in imports.modules:
                    writes.append([imports.modules[chain[0]], chain[1],
                                   node.lineno])
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ("call_at", "call_in") \
                    and len(node.args) >= 2:
                ref = node.args[1]
                ref_chain = attr_chain(ref) if isinstance(
                    ref, (ast.Attribute, ast.Name)) else None
                if ref_chain:
                    callback_refs.append([".".join(ref_chain), node.lineno])
            site_kind = _name_site_kind(node)
            if site_kind and node.args:
                parts = _fold_name_expr(node.args[0])
                if parts is not None:
                    name_sites.append({"kind": site_kind, "parts": parts,
                                       "lineno": node.lineno})
        elif isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                if base.id in time_aliases \
                        and node.attr in WALL_CLOCK_ATTRS:
                    impurities.append(["wall-clock",
                                       "time.%s" % node.attr, node.lineno])
                elif base.id in random_aliases \
                        and node.attr in GLOBAL_DRAWS:
                    impurities.append(["rng", "random.%s" % node.attr,
                                       node.lineno])
                elif base.id in numpy_random_aliases:
                    impurities.append(["rng", "numpy.random.%s" % node.attr,
                                       node.lineno])
                elif (base.id in datetime_aliases
                        or base.id in datetime_classes) \
                        and node.attr in DATETIME_ATTRS:
                    impurities.append(["wall-clock",
                                       "%s.%s" % (base.id, node.attr),
                                       node.lineno])
                elif base.id in os_aliases \
                        and node.attr in ("environ", "getenv", "urandom"):
                    kind = "rng" if node.attr == "urandom" else "env"
                    impurities.append([kind, "os.%s" % node.attr,
                                       node.lineno])
        elif isinstance(node, ast.Name):
            if node.id in from_time_wall:
                impurities.append(["wall-clock", node.id, node.lineno])
            elif node.id in from_random_draws:
                impurities.append(["rng", node.id, node.lineno])
            elif node.id in obs_singletons and node.id not in locals_:
                impurities.append(["obs-singleton", node.id, node.lineno])

    for expr, lineno in _iteration_candidates(func):
        classified = _classify_iteration(expr)
        if classified is None:
            continue
        kind, detail = classified
        if kind == "name":
            head = detail.split(".", 1)[0]
            if head in locals_:
                continue
        set_iterations.append([kind, detail, lineno])

    return {
        "qualname": qualname,
        "lineno": func.lineno,
        "decorators": _decorator_names(func),
        "calls": calls,
        "callback_refs": callback_refs,
        "writes": writes,
        "impurities": impurities,
        "set_iterations": set_iterations,
        "name_sites": name_sites,
    }


# -- per-module extraction ----------------------------------------------


def _module_statements(tree: ast.Module) -> Iterable[ast.stmt]:
    """Top-level statements, descending into module-level If/Try arms."""
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.If, ast.Try)):
            for body in (getattr(node, "body", []),
                         getattr(node, "orelse", []),
                         getattr(node, "finalbody", [])):
                stack.extend(body)
            for handler in getattr(node, "handlers", []):
                stack.extend(handler.body)


def extract_summary(rel_path: str, source: str,
                    tree: ast.Module) -> Dict[str, Any]:
    """One JSON-serializable summary of a file for the project graph."""
    module = module_name_for(rel_path)
    string_literals = sorted({
        node.value for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
        and 0 < len(node.value) <= 120
    })
    summary: Dict[str, Any] = {
        "rel_path": rel_path,
        "module": module,
        "string_literals": string_literals,
        "imports": {},
        "from_imports": {},
        "constants": {},
        "functions": {},
        "classes": {},
    }
    if module is None:
        return summary

    imports = ImportMap(tree)
    summary["imports"] = dict(imports.modules)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            resolved = _resolve_relative(module, rel_path, node)
            if resolved is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                if alias.name == "*":
                    continue
                summary["from_imports"][local] = [resolved, alias.name]

    for stmt in _module_statements(tree):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info = _const_info(stmt.value)
                    info["lineno"] = stmt.lineno
                    summary["constants"][target.id] = info
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                and isinstance(stmt.target, ast.Name):
            info = _const_info(stmt.value)
            info["lineno"] = stmt.lineno
            summary["constants"][stmt.target.id] = info

    # Merge relative-import resolution back into the import map
    # (ImportMap skips level>0 imports; summaries must not).
    merged_imports = imports
    for local, pair in summary["from_imports"].items():
        merged_imports.names[local] = (pair[0], pair[1])

    def visit_scope(body: Iterable[ast.stmt], prefix: str,
                    class_name: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + node.name if prefix else node.name
                summary["functions"][qualname] = _extract_function(
                    node, qualname, merged_imports, summary["constants"])
                if class_name is not None:
                    summary["classes"].setdefault(class_name, []).append(
                        node.name)
                visit_scope(node.body, qualname + ".", None)
            elif isinstance(node, ast.ClassDef):
                summary["classes"].setdefault(node.name, [])
                visit_scope(node.body, node.name + ".", node.name)
            elif isinstance(node, (ast.If, ast.Try)):
                for sub in (getattr(node, "body", []),
                            getattr(node, "orelse", []),
                            getattr(node, "finalbody", [])):
                    visit_scope(sub, prefix, class_name)
                for handler in getattr(node, "handlers", []):
                    visit_scope(handler.body, prefix, class_name)

    visit_scope(tree.body, "", None)
    return summary


# -- the graph ----------------------------------------------------------


class ProjectGraph:
    """Indexed module summaries plus cross-file name resolution."""

    def __init__(self, summaries: Dict[str, Dict[str, Any]],
                 sources: Optional[Dict[str, str]] = None):
        #: rel_path -> summary (src and non-src files alike).
        self.summaries = summaries
        #: dotted module -> summary, src files only.
        self.by_module = {
            summary["module"]: summary
            for summary in summaries.values()
            if summary.get("module")
        }
        self._lines = {
            rel_path: source.splitlines()
            for rel_path, source in (sources or {}).items()
        }

    def snippet(self, rel_path: str, lineno: int) -> str:
        lines = self._lines.get(rel_path, [])
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""

    def src_summaries(self) -> List[Dict[str, Any]]:
        return [self.by_module[module] for module in sorted(self.by_module)]

    def iter_functions(self) -> Iterable[Tuple[str, str, Dict[str, Any]]]:
        """(module, qualname, info) over every src function, sorted."""
        for module in sorted(self.by_module):
            functions = self.by_module[module]["functions"]
            for qualname in sorted(functions):
                yield module, qualname, functions[qualname]

    # -- symbol resolution ----------------------------------------------

    def resolve_symbol(self, module: str, name: str, depth: int = 0
                       ) -> Optional[Tuple[str, str, str]]:
        """Resolve ``name`` in ``module`` to ("function"|"class"|
        "constant", defining_module, symbol) — following re-exports."""
        if depth > 12:
            return None
        summary = self.by_module.get(module)
        if summary is None:
            return None
        if name in summary["functions"]:
            return "function", module, name
        if name in summary["classes"]:
            return "class", module, name
        if name in summary["constants"]:
            return "constant", module, name
        pair = summary["from_imports"].get(name)
        if pair is not None:
            target_module, original = pair
            resolved = self.resolve_symbol(target_module, original,
                                           depth + 1)
            if resolved is not None:
                return resolved
            # ``from repro.a import b`` where b is a submodule.
            submodule = "%s.%s" % (target_module, original)
            if submodule in self.by_module:
                return "module", submodule, ""
        return None

    def resolve_call(self, module: str, caller_qualname: str,
                     chain: str) -> Optional[Tuple[str, str]]:
        """Best-effort (module, qualname) for a recorded call chain."""
        summary = self.by_module.get(module)
        if summary is None:
            return None
        parts = chain.split(".")
        head = parts[0]

        if head in ("self", "cls") and len(parts) == 2:
            if "." in caller_qualname:
                class_name = caller_qualname.split(".", 1)[0]
                candidate = "%s.%s" % (class_name, parts[1])
                if candidate in summary["functions"]:
                    return module, candidate
            return None

        if len(parts) == 1:
            resolved = self.resolve_symbol(module, head)
            if resolved is None:
                return None
            kind, target_module, symbol = resolved
            if kind == "function":
                return target_module, symbol
            if kind == "class":
                return self._class_init(target_module, symbol)
            return None

        # ``a.b[...]``: a may be a class in this module, an imported
        # module alias, or a from-imported symbol.
        if head in summary["classes"] and len(parts) == 2:
            candidate = "%s.%s" % (head, parts[1])
            if candidate in summary["functions"]:
                return module, candidate
        target_module = summary["imports"].get(head)
        if target_module is None:
            pair = summary["from_imports"].get(head)
            if pair is not None:
                resolved = self.resolve_symbol(module, head)
                if resolved is not None:
                    kind, res_module, symbol = resolved
                    if kind == "class" and len(parts) == 2:
                        res_summary = self.by_module.get(res_module)
                        if res_summary is not None:
                            candidate = "%s.%s" % (symbol, parts[1])
                            if candidate in res_summary["functions"]:
                                return res_module, candidate
                    if kind == "module":
                        target_module = res_module
        if target_module is None:
            return None
        # Walk the remaining parts: longest module prefix, then symbol.
        remaining = parts[1:]
        while len(remaining) > 1:
            extended = "%s.%s" % (target_module, remaining[0])
            if extended in self.by_module:
                target_module = extended
                remaining = remaining[1:]
            else:
                break
        if len(remaining) == 1:
            resolved = self.resolve_symbol(target_module, remaining[0])
            if resolved is not None:
                kind, res_module, symbol = resolved
                if kind == "function":
                    return res_module, symbol
                if kind == "class":
                    return self._class_init(res_module, symbol)
        elif len(remaining) == 2:
            resolved = self.resolve_symbol(target_module, remaining[0])
            if resolved is not None and resolved[0] == "class":
                res_summary = self.by_module.get(resolved[1])
                if res_summary is not None:
                    candidate = "%s.%s" % (resolved[2], remaining[1])
                    if candidate in res_summary["functions"]:
                        return resolved[1], candidate
        return None

    def _class_init(self, module: str, class_name: str
                    ) -> Optional[Tuple[str, str]]:
        summary = self.by_module.get(module)
        if summary is None:
            return None
        candidate = "%s.__init__" % class_name
        if candidate in summary["functions"]:
            return module, candidate
        return None

    def resolve_constant(self, module: str, dotted: str
                         ) -> Optional[Tuple[str, str, Dict[str, Any]]]:
        """Resolve a dotted reference to a module-level constant."""
        parts = dotted.split(".")
        summary = self.by_module.get(module)
        if summary is None:
            return None
        if len(parts) == 1:
            resolved = self.resolve_symbol(module, parts[0])
            if resolved is not None and resolved[0] == "constant":
                kind, res_module, symbol = resolved
                info = self.by_module[res_module]["constants"][symbol]
                return res_module, symbol, info
            return None
        target_module = summary["imports"].get(parts[0])
        if target_module is None:
            return None
        remaining = parts[1:]
        while len(remaining) > 1:
            extended = "%s.%s" % (target_module, remaining[0])
            if extended in self.by_module:
                target_module = extended
                remaining = remaining[1:]
            else:
                return None
        resolved = self.resolve_symbol(target_module, remaining[0])
        if resolved is not None and resolved[0] == "constant":
            kind, res_module, symbol = resolved
            info = self.by_module[res_module]["constants"][symbol]
            return res_module, symbol, info
        return None

    def fold_string_collection(self, module: str, name: str,
                               depth: int = 0) -> Optional[List[List[Any]]]:
        """``[[value, lineno], ...]`` for a foldable string collection
        constant, following ``{"ref": ...}`` links project-wide."""
        if depth > 6:
            return None
        summary = self.by_module.get(module)
        if summary is None:
            return None
        info = summary["constants"].get(name)
        if info is None:
            resolved = self.resolve_symbol(module, name)
            if resolved is None or resolved[0] != "constant":
                return None
            return self.fold_string_collection(resolved[1], resolved[2],
                                               depth + 1)
        parts = info.get("parts")
        if parts is None:
            return None
        elements: List[List[Any]] = []
        for part in parts:
            if "elems" in part:
                elements.extend(part["elems"])
            elif "ref" in part:
                nested = self.fold_string_collection(module, part["ref"],
                                                     depth + 1)
                if nested is None:
                    return None
                elements.extend(nested)
            else:
                return None
        return elements


# -- builders -----------------------------------------------------------


def build_graph_from_sources(sources: Dict[str, str],
                             trees: Optional[Dict[str, ast.Module]] = None,
                             cache_path: Optional[str] = None
                             ) -> ProjectGraph:
    """Build a graph from ``rel_path -> source`` (trees optional).

    With a cache, unchanged files load their summary straight from disk
    — no parse, no walk. Parse failures contribute an empty summary (a
    broken file already fails lint via ``parse-error``).
    """
    cached = load_cache(cache_path, GRAPH_FORMAT)
    summaries: Dict[str, Dict[str, Any]] = {}
    new_entries: Dict[str, Any] = {}
    for rel_path in sorted(sources):
        source = sources[rel_path]
        digest = source_hash(source)
        entry = cached.get(rel_path)
        if entry is not None and entry.get("hash") == digest:
            summaries[rel_path] = entry["summary"]
            new_entries[rel_path] = entry
            continue
        tree = (trees or {}).get(rel_path)
        if tree is None:
            try:
                tree = ast.parse(source, filename=rel_path)
            except SyntaxError:
                tree = ast.Module(body=[], type_ignores=[])
        summary = extract_summary(rel_path, source, tree)
        summaries[rel_path] = summary
        new_entries[rel_path] = {"hash": digest, "summary": summary}
    if cache_path is not None:
        save_cache(cache_path, new_entries, GRAPH_FORMAT)
    return ProjectGraph(summaries, sources=sources)


def build_graph(paths, root=None, cache_path: Optional[str] = None
                ) -> ProjectGraph:
    """Build a graph for ``paths`` (files or directories) under ``root``."""
    from repro.lint.engine import find_root, iter_python_files

    root = root or find_root()
    sources: Dict[str, str] = {}
    for path in iter_python_files(paths, root=root):
        rel = os.path.relpath(os.path.abspath(path), root).replace(
            os.sep, "/")
        with open(path, encoding="utf-8") as handle:
            sources[rel] = handle.read()
    return build_graph_from_sources(sources, cache_path=cache_path)
