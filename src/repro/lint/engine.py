"""The lint engine: file discovery, parsing, and the rule-driving loop.

One :class:`FileContext` is built per file (source, AST, pragmas,
repo-relative path) and handed to every applicable rule. Findings come
back sorted, pragma suppression applied, ready for the baseline filter
and the reporters.

Directory walks skip ``__pycache__``, hidden directories, and any
directory named ``fixtures`` — the lint test suite keeps deliberately
broken snippets under ``tests/lint/fixtures/`` and lints them by naming
them explicitly, which always wins over the walk-time skip.
"""

import ast
import os

from repro.lint import pragma as pragma_mod
from repro.lint.astutil import ImportMap
from repro.lint.rule import ERROR, Finding, all_rules

SKIP_DIR_NAMES = {"__pycache__", "fixtures", "build", "dist"}


class FileContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, path, rel_path, source, tree):
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.pragmas, self.malformed_pragmas = pragma_mod.parse_pragmas(
            self.lines
        )
        self._imports = None

    @property
    def imports(self):
        if self._imports is None:
            self._imports = ImportMap(self.tree)
        return self._imports

    # -- path predicates the rules scope themselves with ----------------

    @property
    def parts(self):
        return tuple(self.rel_path.split("/"))

    @property
    def in_src(self):
        """Under the shipped package (src/repro/...)."""
        return self.parts[:2] == ("src", "repro")

    @property
    def in_tests(self):
        return self.parts[:1] == ("tests",)

    @property
    def in_benchmarks(self):
        return self.parts[:1] == ("benchmarks",)

    def in_subsystem(self, *names):
        """Under src/repro/<any of names>/ (or the module file itself)."""
        if not self.in_src or len(self.parts) < 3:
            return False
        return self.parts[2] in names or any(
            self.parts[2] == name + ".py" for name in names
        )

    def snippet(self, line):
        """The stripped source line (1-based), for reports and baselines."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _rel_path(path, root):
    rel = os.path.relpath(os.path.abspath(path), root)
    return rel.replace(os.sep, "/")


def find_root(start=None):
    """The repo root: nearest ancestor with a pyproject.toml (else cwd)."""
    probe = os.path.abspath(start or os.getcwd())
    while True:
        if os.path.exists(os.path.join(probe, "pyproject.toml")):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            return os.path.abspath(start or os.getcwd())
        probe = parent


def iter_python_files(paths, root=None):
    """Expand ``paths`` (files or directories) into sorted .py files.

    Explicitly named files are always included — even inside a
    ``fixtures`` directory; walks skip :data:`SKIP_DIR_NAMES` and
    hidden directories.
    """
    root = root or find_root()
    seen = set()
    ordered = []

    def add(path):
        absolute = os.path.abspath(path)
        if absolute not in seen:
            seen.add(absolute)
            ordered.append(absolute)

    for path in paths:
        if os.path.isfile(path):
            add(path)
            continue
        collected = []
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames
                if name not in SKIP_DIR_NAMES and not name.startswith(".")
            )
            for filename in filenames:
                if filename.endswith(".py"):
                    collected.append(os.path.join(dirpath, filename))
        for file_path in sorted(collected, key=lambda p: _rel_path(p, root)):
            add(file_path)
    return ordered


class LintResult:
    """The outcome of one lint run."""

    def __init__(self, findings, suppressed_count, checked_files,
                 grandfathered=(), stale_baseline=()):
        #: Findings surviving pragmas and the baseline, sorted.
        self.findings = findings
        self.suppressed_count = suppressed_count
        self.checked_files = checked_files
        self.grandfathered = list(grandfathered)
        self.stale_baseline = list(stale_baseline)

    @property
    def errors(self):
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def advice(self):
        return [f for f in self.findings if f.severity != ERROR]

    @property
    def ok(self):
        """Clean: no error-severity findings (advice never gates)."""
        return not self.errors

    def exit_code(self):
        return 0 if self.ok else 1


def load_context(path, root):
    """Build a :class:`FileContext`; returns ``(ctx, parse_error)``.

    Exactly one of the pair is None: a file that fails to parse yields
    a single ``parse-error`` finding — syntactically broken source
    can't be vouched for.
    """
    rel = _rel_path(path, root)
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return None, Finding(
            path=rel,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule="parse-error",
            message="file does not parse: %s" % exc.msg,
            severity=ERROR,
        )
    return FileContext(path, rel, source, tree), None


def check_context(ctx, rules):
    """Raw findings for one context: per-file rules + pragma hygiene.

    Project rules are skipped here (they run once over the graph);
    malformed pragmas and pragmas naming unknown rule ids are findings
    regardless of which rules were selected — a pragma that could never
    suppress anything is drift, not a suppression.
    """
    raw = []
    for rule in rules:
        if not rule.project and rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    raw.extend(pragma_mod.malformed_findings(ctx, ctx.malformed_pragmas))
    raw.extend(pragma_mod.unknown_rule_findings(ctx, known_pragma_ids()))
    return raw


def known_pragma_ids():
    """Every rule id a pragma may legitimately name."""
    from repro.lint.rule import rule_ids

    return frozenset(rule_ids()) | {"parse-error", "bad-pragma",
                                    "unknown-pragma-rule"}


def lint_file(path, root=None, rules=None):
    """Lint one file with the per-file rules; (findings, suppressed)."""
    root = root or find_root()
    rules = rules if rules is not None else all_rules()
    ctx, parse_error = load_context(path, root)
    if parse_error is not None:
        return [parse_error], 0
    findings = []
    suppressed = 0
    for finding in check_context(ctx, rules):
        if pragma_mod.suppressed(ctx.pragmas, finding):
            suppressed += 1
        else:
            findings.append(finding)
    return findings, suppressed


def run_lint(paths, root=None, rules=None, baseline=None, cache_path=None):
    """Lint ``paths`` with ``rules`` (default: all) against ``baseline``.

    ``baseline`` is a loaded baseline dict (see :mod:`repro.lint.baseline`)
    or None for no grandfathering. When any selected rule is a
    :class:`~repro.lint.rule.ProjectRule`, the whole-program graph is
    built over every linted file (``cache_path`` points at the
    incremental summary cache; None builds cold) and the project rules
    run once over it. Pragma suppression applies uniformly: a project
    finding is suppressed by a pragma at its reported line, same as a
    per-file finding. Returns a :class:`LintResult`.
    """
    from repro.lint.baseline import empty_baseline, split_by_baseline, \
        stale_entries

    root = root or find_root()
    rules = rules if rules is not None else all_rules()
    baseline = baseline if baseline is not None else empty_baseline()
    project_rules = [rule for rule in rules if rule.project]
    files = iter_python_files(paths, root=root)

    contexts = {}
    raw = []
    for path in files:
        ctx, parse_error = load_context(path, root)
        if parse_error is not None:
            raw.append(parse_error)
            continue
        contexts[ctx.rel_path] = ctx
        raw.extend(check_context(ctx, rules))

    if project_rules:
        from repro.lint.graph import build_graph_from_sources

        graph = build_graph_from_sources(
            {rel: ctx.source for rel, ctx in contexts.items()},
            trees={rel: ctx.tree for rel, ctx in contexts.items()},
            cache_path=cache_path,
        )
        for rule in project_rules:
            raw.extend(rule.check_project(graph))

    findings = []
    suppressed = 0
    for finding in raw:
        ctx = contexts.get(finding.path)
        if ctx is not None and pragma_mod.suppressed(ctx.pragmas, finding):
            suppressed += 1
        else:
            findings.append(finding)
    findings.sort()
    new, grandfathered = split_by_baseline(findings, baseline)
    return LintResult(
        new,
        suppressed,
        len(files),
        grandfathered=grandfathered,
        stale_baseline=stale_entries(findings, baseline),
    )
