"""Small AST helpers shared by the concrete rules."""

import ast


class ImportMap:
    """Resolve what a name means at module level, import-wise.

    Tracks ``import x``, ``import x as y`` and ``from x import a as b``
    across a whole module (scope-insensitive on purpose: the rules here
    police module hygiene, and shadowing an import to dodge the linter
    would be its own finding in review).
    """

    def __init__(self, tree):
        #: local alias -> imported module name ("random", "numpy.random")
        self.modules = {}
        #: local alias -> (module, original name) for from-imports
        self.names = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    self.modules[local] = (
                        alias.name if alias.asname else alias.name.split(".", 1)[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = (node.module, alias.name)

    def module_aliases(self, module):
        """Local names bound to ``module`` via plain imports."""
        return {
            local for local, target in self.modules.items() if target == module
        }

    def from_imports(self, module):
        """{local_name: original_name} imported from ``module``."""
        return {
            local: original
            for local, (source, original) in self.names.items()
            if source == module or source.startswith(module + ".")
        }


def call_name(node):
    """The called name for ``Name(...)`` calls, else None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


def attr_chain(node):
    """``a.b.c`` -> ["a", "b", "c"]; None if not a pure name chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def receiver_last_name(node):
    """For ``<recv>.method(...)`` calls: the last name of the receiver.

    ``obs.metrics.counter(...)`` -> "metrics"; ``cp.hit(...)`` -> "cp";
    ``self.crashpoints.hit(...)`` -> "crashpoints". None when the
    receiver is not an attribute/name chain.
    """
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def first_str_arg(node):
    """The literal first argument of a call, if it is a string."""
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


def keyword_arg(node, name):
    """The ast node for keyword ``name`` of a call, or None."""
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def is_const_true(node):
    return isinstance(node, ast.Constant) and node.value is True


def functions(tree):
    """Every (Async)FunctionDef in ``tree``, in source order."""
    return [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def own_nodes(func):
    """Every node in ``func``'s body, excluding nested def/lambda bodies."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def is_generator(func):
    """Whether ``func`` contains a yield of its own (not in a nested def)."""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in own_nodes(func)
    )
