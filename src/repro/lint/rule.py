"""Rule base class, the Finding record, and the rule registry.

A rule is a stateless object with an ``id``, a ``severity`` and a
``check(ctx)`` generator. Severities:

* ``error`` — a violated invariant; fails the run unless pragma'd or
  baselined.
* ``advice`` — a heads-up (e.g. a probable hot-path copy); reported but
  never affects the exit code.

Rules register themselves via the :func:`register` decorator at import
time; :func:`all_rules` hands the engine one instance of each, sorted
by id so every run visits rules in the same order.
"""

from dataclasses import dataclass, field


ERROR = "error"
ADVICE = "advice"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, ordered for stable reports."""

    path: str          # repo-relative, posix separators
    line: int
    col: int
    rule: str
    message: str
    severity: str = ERROR
    snippet: str = field(default="", compare=False)

    def key(self):
        """Baseline identity: survives pure line-number drift."""
        return (self.rule, self.path, self.snippet)

    def location(self):
        return "%s:%d" % (self.path, self.line)

    def to_dict(self):
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
        }


class Rule:
    """Base class for AST lint rules.

    Subclasses set ``id`` (kebab-case), ``summary`` (one line for
    ``--list-rules``), ``severity``, and implement :meth:`check`.
    :meth:`applies_to` gates whole files cheaply before any AST walk.
    ``rationale`` and ``example`` feed ``--explain <rule-id>``: the
    rationale says why the invariant exists, the example is a minimal
    violating snippet (mirroring the rule's fixture pack).
    """

    id = None
    summary = ""
    severity = ERROR
    #: Whole-program rule? Project rules run once over the graph, not
    #: per file (see :class:`ProjectRule`).
    project = False
    #: Multi-line prose for ``--explain``: why this invariant matters.
    rationale = ""
    #: A minimal violating snippet for ``--explain``.
    example = ""

    def applies_to(self, ctx):
        """Whether this rule should look at ``ctx`` at all."""
        return True

    def check(self, ctx):
        """Yield :class:`Finding`s for ``ctx`` (a ``FileContext``)."""
        raise NotImplementedError

    # -- helpers shared by every concrete rule --------------------------

    def finding(self, ctx, node, message, severity=None):
        """Build a Finding anchored at ``node`` (any ast node)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=ctx.rel_path,
            line=line,
            col=col,
            rule=self.id,
            message=message,
            severity=severity if severity is not None else self.severity,
            snippet=ctx.snippet(line),
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Project rules see the :class:`~repro.lint.graph.ProjectGraph`
    instead of one file at a time: they run once per lint invocation,
    after every file context is built, and may report findings in any
    file. Pragma suppression still applies at the reported line.
    """

    project = True

    def check(self, ctx):  # pragma: no cover - project rules never run here
        return iter(())

    def check_project(self, graph):
        """Yield :class:`Finding`s for the whole project graph."""
        raise NotImplementedError

    def project_finding(self, graph, rel_path, lineno, message,
                        col=0, severity=None):
        """Build a Finding anchored in any file the graph covers."""
        return Finding(
            path=rel_path,
            line=lineno,
            col=col,
            rule=self.id,
            message=message,
            severity=severity if severity is not None else self.severity,
            snippet=graph.snippet(rel_path, lineno),
        )


_REGISTRY = {}


def register(rule_cls):
    """Class decorator: add ``rule_cls`` to the global registry."""
    if not rule_cls.id:
        raise ValueError("rule %r has no id" % (rule_cls,))
    if rule_cls.id in _REGISTRY:
        raise ValueError("duplicate rule id %r" % (rule_cls.id,))
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules():
    """One fresh instance of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id):
    """Instantiate one rule by id (KeyError if unknown)."""
    return _REGISTRY[rule_id]()


def rule_ids():
    return sorted(_REGISTRY)
