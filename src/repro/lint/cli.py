"""``python -m repro.lint`` — the command-line front end.

Usage::

    python -m repro.lint src tests              # human output, exit 0/1
    python -m repro.lint src --format json      # stable JSON report
    python -m repro.lint --list-rules           # the rule catalogue
    python -m repro.lint --explain worker-transitive-purity
    python -m repro.lint src --rules wall-clock-purity,no-bare-except
    python -m repro.lint src --write-baseline   # freeze current findings

The baseline defaults to ``lint-baseline.json`` at the repo root when
that file exists; pass ``--baseline PATH`` to point elsewhere or
``--no-baseline`` to ignore it. The whole-program pass keeps an
incremental summary cache at ``<root>/.lint-cache.json`` (``--cache
PATH`` to relocate, ``--no-cache`` to build cold). Exit codes: 0
clean, 1 error findings, 2 usage errors. Advice-severity findings
never affect the exit code.
"""

import argparse
import os
import sys

from repro.lint.baseline import empty_baseline, load_baseline, \
    write_baseline
from repro.lint.engine import find_root, run_lint
from repro.lint.report import render_explain, render_human, render_json, \
    render_rule_list
from repro.lint.rule import all_rules, rule_ids


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST invariant linter for the sim-deterministic data path",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (json is byte-stable for identical trees)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="ID[,ID...]",
        help="run only these rule ids (default: all registered rules)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: <root>/lint-baseline.json if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="freeze current error findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE_ID",
        help="print one rule's rationale and a violating example, then exit",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="incremental analysis cache file "
             "(default: <root>/.lint-cache.json)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="build the whole-program graph cold (no cache read/write)",
    )
    return parser


def select_rules(spec, parser):
    if spec is None:
        return all_rules()
    from repro.lint.rule import get_rule

    selected = []
    for rule_id in spec.split(","):
        rule_id = rule_id.strip()
        if not rule_id:
            continue
        try:
            selected.append(get_rule(rule_id))
        except KeyError:
            parser.error(
                "unknown rule id %r (known: %s)"
                % (rule_id, ", ".join(rule_ids()))
            )
    return selected


def main(argv=None, stdout=None):
    stdout = stdout if stdout is not None else sys.stdout
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        stdout.write(render_rule_list(all_rules()))
        return 0

    if options.explain is not None:
        from repro.lint.rule import get_rule

        try:
            rule = get_rule(options.explain)
        except KeyError:
            parser.error(
                "unknown rule id %r (known: %s)"
                % (options.explain, ", ".join(rule_ids()))
            )
        stdout.write(render_explain(rule))
        return 0

    paths = options.paths or ["src", "tests"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error("no such path: %s" % ", ".join(missing))

    root = find_root(paths[0])
    rules = select_rules(options.rules, parser)
    cache_path = None
    if not options.no_cache:
        cache_path = options.cache or os.path.join(root, ".lint-cache.json")

    baseline_path = options.baseline
    if baseline_path is None and not options.no_baseline:
        default = os.path.join(root, "lint-baseline.json")
        if os.path.exists(default):
            baseline_path = default
    baseline = None
    if baseline_path is not None and not options.no_baseline \
            and not options.write_baseline:
        baseline = load_baseline(baseline_path)

    if options.write_baseline:
        # Run the full pipeline (file AND project rules, post-pragma)
        # with no grandfathering, then freeze what survives.
        result = run_lint(paths, root=root, rules=rules,
                          baseline=empty_baseline(), cache_path=cache_path)
        target = baseline_path or os.path.join(root, "lint-baseline.json")
        count = write_baseline(target, result.findings)
        stdout.write("baseline: %d finding(s) written to %s\n" % (count, target))
        return 0

    result = run_lint(paths, root=root, rules=rules, baseline=baseline,
                      cache_path=cache_path)
    if options.format == "json":
        stdout.write(render_json(result))
    else:
        stdout.write(render_human(result))
    return result.exit_code()
