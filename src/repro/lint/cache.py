"""The incremental analysis cache for the whole-program pass.

Building the project graph means parsing and walking every module under
``src/repro`` — cheap enough once, too slow to repeat on every lint
invocation in the fast lane. The cache stores one JSON-serializable
:mod:`~repro.lint.graph` module summary per file, keyed by the SHA-256
of the file's bytes, so a warm run replaces parse-and-walk with
hash-and-load for every unchanged file. Editing a file invalidates
exactly that file's entry; bumping :data:`~repro.lint.graph.
GRAPH_FORMAT` invalidates everything (the summary shape changed, so
stale summaries must never be trusted).

The cache file itself (default ``<root>/.lint-cache.json``) is a local
artifact, not a committed one — it is in ``.gitignore``, and a missing
or corrupt cache silently degrades to a cold build.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional


def source_hash(source: str) -> str:
    """The cache key for one file: SHA-256 of its text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def load_cache(path: Optional[str], expected_format: int) -> Dict[str, Any]:
    """Load the cache at ``path``; wrong-format or broken files are empty.

    Returns the ``files`` mapping: ``rel_path -> {"hash": ..., "summary":
    ...}``.
    """
    if path is None or not os.path.exists(path):
        return {}
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("format") != expected_format:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def save_cache(path: Optional[str], files: Dict[str, Any],
               format_version: int) -> bool:
    """Write ``files`` (rel_path -> entry) at ``path``; False on failure.

    The dump is sorted and newline-terminated so identical trees produce
    byte-identical cache files (the cache is as deterministic as the
    reports).
    """
    if path is None:
        return False
    document = {"format": format_version, "files": files}
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, sort_keys=True, indent=1)
            handle.write("\n")
    except OSError:
        return False
    return True
