"""Per-line suppression pragmas.

A finding is suppressed by a pragma comment **with a reason**::

    value = time.monotonic_ns()  # lint: allow[wall-clock-purity] perf accounting only

The pragma may sit on the offending line or, when the line is too long
already, alone on the line directly above::

    # lint: allow[stable-export] snapshot() pre-sorts every section
    for name, value in snapshot["counters"].items():

Several rules can share one pragma: ``allow[rule-a,rule-b] reason``.
A pragma without a reason string does **not** suppress anything — the
reason is the audit trail — and instead surfaces as a ``bad-pragma``
finding so it cannot silently rot.
"""

import re

from repro.lint.rule import ERROR, Finding

PRAGMA = re.compile(
    r"#\s*lint:\s*allow\[(?P<rules>[a-z0-9\-_,\s]+)\]\s*(?P<reason>.*)$"
)


def parse_pragmas(lines):
    """Map line number -> {rule_id: reason} for ``lines`` of source.

    Returns ``(pragmas, malformed)`` where ``malformed`` is a list of
    (lineno, text) pairs for reason-less pragmas.
    """
    pragmas = {}
    malformed = []
    for lineno, line in enumerate(lines, start=1):
        match = PRAGMA.search(line)
        if match is None:
            continue
        reason = match.group("reason").strip()
        if not reason:
            malformed.append((lineno, line.strip()))
            continue
        allowed = {
            rule_id.strip(): reason
            for rule_id in match.group("rules").split(",")
            if rule_id.strip()
        }
        entry = pragmas.setdefault(lineno, {})
        entry.update(allowed)
        # A comment-only pragma line also covers the next line of code.
        stripped = line.strip()
        if stripped.startswith("#"):
            pragmas.setdefault(lineno + 1, {}).update(allowed)
    return pragmas, malformed


def suppressed(pragmas, finding):
    """Whether ``finding`` is covered by a pragma on its line."""
    entry = pragmas.get(finding.line)
    return entry is not None and finding.rule in entry


def unknown_rule_findings(ctx, known_ids):
    """Pragmas naming rule ids that do not exist are findings.

    A pragma with a typo'd id (``allow[wall-clock-pruity]``) suppresses
    nothing today and — worse — *looks* like an audit trail. Validation
    runs over pragma declaration sites (not the propagated per-line
    map, which would double-report comment-only pragmas) against the
    full rule registry, regardless of which rules this run selected.
    """
    findings = []
    for lineno, line in enumerate(ctx.lines, start=1):
        match = PRAGMA.search(line)
        if match is None or not match.group("reason").strip():
            continue  # reason-less pragmas are bad-pragma findings
        for rule_id in match.group("rules").split(","):
            rule_id = rule_id.strip()
            if rule_id and rule_id not in known_ids:
                findings.append(Finding(
                    path=ctx.rel_path,
                    line=lineno,
                    col=0,
                    rule="unknown-pragma-rule",
                    message="pragma names unknown rule id %r; it can "
                            "never suppress anything (see --list-rules "
                            "for the catalogue)" % rule_id,
                    severity=ERROR,
                    snippet=line.strip(),
                ))
    return findings


def malformed_findings(ctx, malformed):
    """Turn reason-less pragmas into findings of their own."""
    return [
        Finding(
            path=ctx.rel_path,
            line=lineno,
            col=0,
            rule="bad-pragma",
            message="pragma has no reason string; write "
                    "'# lint: allow[<rule-id>] why this is intentional'",
            severity=ERROR,
            snippet=text,
        )
        for lineno, text in malformed
    ]
