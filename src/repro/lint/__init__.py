"""puritylint: AST-based invariant linting for the sim-deterministic path.

The reproduction's credibility rests on invariants no unit test can
exhaustively police: the data path must never read wall-clock time or
unseeded randomness (same seed must mean byte-identical traces),
exports must be order-stable, and span/metric/crashpoint names must
stay in sync with their registries. ``repro.lint`` enforces them
mechanically:

* a :class:`~repro.lint.rule.Rule` registry of repo-specific AST checks
  (``python -m repro.lint --list-rules``);
* per-line suppression pragmas — ``# lint: allow[<rule-id>] reason`` —
  that require a human-readable reason string (and a rule id that
  actually exists);
* a committed JSON baseline for grandfathered findings (kept empty;
  see ``lint-baseline.json`` at the repo root);
* deterministic human and ``--format json`` reports (the same tree
  always produces byte-identical output).

Since puritylint v2 the per-file rules are joined by *whole-program*
rules (:class:`~repro.lint.rule.ProjectRule`): a project symbol/import/
call graph (:mod:`repro.lint.graph`) classifies functions into
execution domains (:mod:`repro.lint.domains`) and powers the
interprocedural checks — worker-purity propagation, the cross-domain
shared-state detector, nondeterministic set iteration, and full
name-registry reconciliation. An incremental file-hash cache
(:mod:`repro.lint.cache`, ``.lint-cache.json``) keeps the
whole-program pass fast on warm runs.

Run it as ``python -m repro.lint src tests`` (exit 0 means clean), or
drive it from tests via :func:`run_lint` — which is exactly what the
determinism audit and the repo self-lint test do.
``python -m repro.lint --explain <rule-id>`` prints any rule's
rationale and a minimal violating example.
"""

from repro.lint.engine import LintResult, iter_python_files, run_lint
from repro.lint.rule import (Finding, ProjectRule, Rule, all_rules,
                             get_rule)

# Importing the rules package registers every built-in rule.
from repro.lint import rules as _rules  # noqa: F401  (import-for-effect)

__all__ = [
    "Finding",
    "LintResult",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "run_lint",
]
