"""puritylint: AST-based invariant linting for the sim-deterministic path.

The reproduction's credibility rests on invariants no unit test can
exhaustively police: the data path must never read wall-clock time or
unseeded randomness (same seed must mean byte-identical traces),
exports must be order-stable, and span/metric/crashpoint names must
stay in sync with their registries. ``repro.lint`` enforces them
mechanically:

* a :class:`~repro.lint.rule.Rule` registry of repo-specific AST checks
  (``python -m repro.lint --list-rules``);
* per-line suppression pragmas — ``# lint: allow[rule-id] reason`` —
  that require a human-readable reason string;
* a committed JSON baseline for grandfathered findings (kept empty;
  see ``lint-baseline.json`` at the repo root);
* deterministic human and ``--format json`` reports (the same tree
  always produces byte-identical output).

Run it as ``python -m repro.lint src tests`` (exit 0 means clean), or
drive it from tests via :func:`run_lint` — which is exactly what the
determinism audit and the repo self-lint test do.
"""

from repro.lint.engine import LintResult, iter_python_files, run_lint
from repro.lint.rule import Finding, Rule, all_rules, get_rule

# Importing the rules package registers every built-in rule.
from repro.lint import rules as _rules  # noqa: F401  (import-for-effect)

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "run_lint",
]
