"""Size and time unit constants used throughout the reproduction.

All sizes are in bytes and all simulated times are in seconds (floats).
The constants mirror the geometry the paper reports: 512 B sectors,
cblocks up to 32 KiB, 1 MiB write units, 8 MiB allocation units.
"""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

#: Minimum unit of deduplication and compression (Section 4.6).
SECTOR = 512

#: Maximum cblock payload; cblocks are sized to match application writes
#: up to this bound (Section 4.6).
MAX_CBLOCK = 32 * KIB

#: Write unit: each SSD in a segment is written atomically in these
#: (Section 4.2).
WRITE_UNIT = 1 * MIB

#: Allocation unit: minimum allocation granularity per SSD (Section 4.2).
ALLOCATION_UNIT = 8 * MIB

MICROSECOND = 1e-6
MILLISECOND = 1e-3


def sectors(nbytes):
    """Number of 512 B sectors needed to hold ``nbytes`` (rounded up)."""
    return (nbytes + SECTOR - 1) // SECTOR


def align_up(value, alignment):
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive, got %r" % alignment)
    return ((value + alignment - 1) // alignment) * alignment


def align_down(value, alignment):
    """Round ``value`` down to the previous multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError("alignment must be positive, got %r" % alignment)
    return (value // alignment) * alignment


def format_bytes(nbytes):
    """Render a byte count as a human-readable string (binary units)."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or suffix == "TiB":
            if suffix == "B":
                return "%d %s" % (int(value), suffix)
            return "%.2f %s" % (value, suffix)
        value /= 1024
    raise AssertionError("unreachable")
