"""Runtime sanitizer mode: checks static analysis cannot prove.

``REPRO_SANITIZE=1`` arms TSan-style instrumentation at the two places
the determinism contract depends on runtime discipline that no AST rule
can verify:

* **Buffer lifecycle** (:class:`BufferSentry`, wired into
  :class:`repro.parallel.pools.BufferPool`): released buffers are
  poison-filled (``0xA5``); a recycled buffer whose poison was
  disturbed means someone wrote through a stale reference
  (use-after-release), a buffer released twice or handed out twice is
  caught by identity, all raised as :class:`SanitizeError` at the
  moment of detection.
* **Fork-pool boundary** (:func:`run_chunk_checked`, wired into the
  executor's serial path): in pooled runs, chunks and results cross a
  pickle boundary, so workers *cannot* mutate inputs or alias them
  into results. The serial path has no such physics — a worker that
  mutates its chunk or returns an input object works at ``workers=0``
  and silently diverges at ``workers=2``. Sanitize mode gives the
  serial path the pool's semantics: inputs are identity-snapshotted
  before the call and verified after, and mutable result elements may
  not *be* input objects.

The checks cost real work (poison fills, per-item id scans), so they
are opt-in via the environment and read once per object construction —
the hot path stays branchless when sanitizing is off.
:mod:`repro.sanitize.hashseed` adds the third leg: a subprocess
double-run under two ``PYTHONHASHSEED`` values asserting byte-identical
traces.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List

#: The fill byte for released buffers. Chosen non-zero (fresh buffers
#: are zeroed) and asymmetric (0xA5 = 0b10100101) so neither "all
#: zeros" nor "all ones" bugs masquerade as intact poison.
POISON = 0xA5

#: Result element types a worker may legitimately share with its input
#: (immutable, so aliasing cannot diverge serial vs pooled).
_IMMUTABLE = (bytes, str, int, float, bool, complex, frozenset,
              type(None))


def enabled() -> bool:
    """Whether sanitizer mode is armed (``REPRO_SANITIZE`` non-empty,
    non-zero). Read at object construction, not per operation."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


class SanitizeError(AssertionError):
    """A runtime determinism-contract violation caught by the sanitizer.

    Subclasses AssertionError so test suites and the chaos harness
    treat a sanitizer hit exactly like a failed invariant assertion.
    """


class BufferSentry:
    """Lifecycle tracker for one :class:`~repro.parallel.pools.
    BufferPool`.

    Tracks live and released buffers by identity (strong references are
    kept to released buffers so CPython cannot recycle an id and fake a
    double-release) and poison-fills on release. All methods raise
    :class:`SanitizeError` on violation and are no-ops on the happy
    path.
    """

    def __init__(self, name: str = "pool"):
        self.name = name
        self._live: Dict[int, bytearray] = {}
        self._released: Dict[int, bytearray] = {}

    def on_fresh(self, buffer: bytearray) -> None:
        """A newly allocated buffer is now live."""
        self._live[id(buffer)] = buffer

    def on_recycle(self, buffer: bytearray) -> None:
        """A buffer is coming off the free list; its poison must be
        intact (else someone wrote through a stale reference), and it
        must not already be live (double-acquire)."""
        key = id(buffer)
        if key in self._live:
            raise SanitizeError(
                "sanitize[%s]: double-acquire — buffer id=%#x handed "
                "out while already live" % (self.name, key))
        if any(byte != POISON for byte in buffer):
            raise SanitizeError(
                "sanitize[%s]: use-after-release — recycled buffer "
                "id=%#x (len=%d) was written through a stale reference "
                "after release (poison disturbed)"
                % (self.name, key, len(buffer)))
        self._released.pop(key, None)
        self._live[key] = buffer

    def on_release(self, buffer: bytearray) -> None:
        """A buffer is being returned; releasing twice is an error.
        The buffer is poison-filled so any later write through a stale
        reference is detectable at the next recycle."""
        key = id(buffer)
        if key in self._released:
            raise SanitizeError(
                "sanitize[%s]: double-release — buffer id=%#x (len=%d) "
                "released twice" % (self.name, key, len(buffer)))
        self._live.pop(key, None)
        self._released[key] = buffer
        buffer[:] = bytes([POISON]) * len(buffer)


def run_chunk_checked(func: Callable[[List[Any]], List[Any]],
                      chunk: List[Any]) -> List[Any]:
    """Run one worker chunk with the pool's sharing semantics enforced.

    Pooled execution pickles ``chunk`` out and the result back, so the
    worker *cannot* mutate the caller's chunk or return objects that
    alias it. The serial path shares memory; this wrapper re-imposes
    the boundary: the chunk's length and item identities must be
    unchanged by the call, and no mutable result element may be an
    input object.
    """
    input_ids = [id(item) for item in chunk]
    result = func(chunk)
    after_ids = [id(item) for item in chunk]
    if after_ids != input_ids:
        raise SanitizeError(
            "sanitize[fork-boundary]: worker %r mutated its input chunk "
            "(item identities changed); pooled runs ship a pickled copy "
            "and would diverge" % getattr(func, "__name__", func))
    if isinstance(result, list):
        input_id_set = set(input_ids)
        for index, element in enumerate(result):
            if id(element) in input_id_set \
                    and not isinstance(element, _IMMUTABLE):
                raise SanitizeError(
                    "sanitize[fork-boundary]: worker %r returned input "
                    "object (result[%d]) by reference; pooled runs "
                    "return a pickled copy, so later mutation would "
                    "diverge serial vs pooled"
                    % (getattr(func, "__name__", func), index))
    return result


__all__ = [
    "POISON",
    "BufferSentry",
    "SanitizeError",
    "enabled",
    "run_chunk_checked",
]
