"""PYTHONHASHSEED-perturbed double-run: the hash-order litmus test.

Python's one sanctioned source of run-to-run nondeterminism is string
hash randomization: iterate a set (or pre-3.7 dict) and the order — and
anything downstream of it — moves with ``PYTHONHASHSEED``. The static
``nondeterministic-iteration`` rule catches the iterations it can see;
this harness proves the end-to-end property the rules exist to protect:
**the same seeded run produces byte-identical traces and metrics under
two different hash seeds**.

The run under test executes in a fresh subprocess per hash seed
(``PYTHONHASHSEED`` only takes effect at interpreter start), prints its
deterministic exports to stdout, and the harness compares the raw
bytes. Any difference is a :class:`~repro.sanitize.SanitizeError`
carrying the first diverging line.
"""

from __future__ import annotations

import os
import subprocess
import sys
from typing import Sequence, Tuple

from repro.sanitize import SanitizeError

#: Wall-clock ceiling for one subprocess run (host-side harness knob,
#: outside the simulated-time contract).
HASHSEED_RUN_TIMEOUT = 300

#: The default pair of hash seeds. Any two distinct values would do;
#: 0 additionally disables randomization entirely, so the pair covers
#: "off" vs "on with a fixed seed".
DEFAULT_HASH_SEEDS = ("0", "1")

#: Template for the default run-under-test: a seeded chaos schedule
#: with tracing on, exporting trace + metrics JSONL to stdout.
CHAOS_SCRIPT = """\
from repro.faults.chaos import ChaosHarness
from repro.obs.export import metrics_text, trace_text

harness = ChaosHarness(seed=%(seed)d, total_ops=%(ops)d, tracing=True)
report = harness.run()
assert report.violations == [], report.violations
print(trace_text(harness.obs), end="")
print(metrics_text(harness.obs), end="")
"""


def _subprocess_env(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    # The child must resolve ``repro`` exactly like this process does.
    env["PYTHONPATH"] = os.pathsep.join(
        entry for entry in sys.path if entry)
    return env


def run_once(script: str, hash_seed: str,
             timeout: float = HASHSEED_RUN_TIMEOUT) -> bytes:
    """Run ``script`` under one hash seed; returns its stdout bytes."""
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        env=_subprocess_env(hash_seed),
        timeout=timeout,
    )
    if proc.returncode != 0:
        raise SanitizeError(
            "sanitize[hashseed]: run under PYTHONHASHSEED=%s failed "
            "(exit %d):\n%s"
            % (hash_seed, proc.returncode,
               proc.stderr.decode("utf-8", "replace")))
    return proc.stdout


def first_divergence(a: bytes, b: bytes) -> str:
    """A human-readable pointer at the first differing line."""
    lines_a = a.splitlines()
    lines_b = b.splitlines()
    for index, (line_a, line_b) in enumerate(zip(lines_a, lines_b)):
        if line_a != line_b:
            return ("line %d differs:\n  a: %s\n  b: %s"
                    % (index + 1,
                       line_a.decode("utf-8", "replace"),
                       line_b.decode("utf-8", "replace")))
    return ("outputs are %d vs %d lines (one is a prefix of the other)"
            % (len(lines_a), len(lines_b)))


def double_run(script: str,
               hash_seeds: Sequence[str] = DEFAULT_HASH_SEEDS,
               timeout: float = HASHSEED_RUN_TIMEOUT) -> bytes:
    """Run ``script`` once per hash seed; outputs must be byte-identical.

    Returns the (common) stdout bytes on success; raises
    :class:`SanitizeError` naming the offending seed pair and the first
    diverging line otherwise.
    """
    reference = None
    reference_seed = None
    for hash_seed in hash_seeds:
        output = run_once(script, hash_seed, timeout=timeout)
        if reference is None:
            reference = output
            reference_seed = hash_seed
        elif output != reference:
            raise SanitizeError(
                "sanitize[hashseed]: output depends on the hash seed "
                "(PYTHONHASHSEED=%s vs %s): %s"
                % (reference_seed, hash_seed,
                   first_divergence(reference, output)))
    return reference if reference is not None else b""


def chaos_script(seed: int = 11, ops: int = 60) -> str:
    """The default run-under-test script (seeded chaos, tracing on)."""
    return CHAOS_SCRIPT % {"seed": int(seed), "ops": int(ops)}


def assert_chaos_hashseed_stable(
        seed: int = 11, ops: int = 60,
        hash_seeds: Sequence[str] = DEFAULT_HASH_SEEDS,
) -> Tuple[bytes, int]:
    """Prove a chaos schedule's exports ignore the hash seed.

    Returns ``(output_bytes, runs)`` for reporting.
    """
    output = double_run(chaos_script(seed, ops), hash_seeds=hash_seeds)
    if not output:
        raise SanitizeError(
            "sanitize[hashseed]: the run under test produced no output "
            "— nothing was actually compared")
    return output, len(list(hash_seeds))
