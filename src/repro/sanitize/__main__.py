"""``python -m repro.sanitize`` — drive the sanitizer harnesses.

Usage::

    python -m repro.sanitize hashseed                 # default schedule
    python -m repro.sanitize hashseed --seed 7 --ops 120
    python -m repro.sanitize hashseed --hash-seeds 0,42

Exit 0 means the double-run produced byte-identical output; a
:class:`~repro.sanitize.SanitizeError` prints and exits 1.
"""

import argparse
import sys

from repro.sanitize import SanitizeError
from repro.sanitize.hashseed import (DEFAULT_HASH_SEEDS,
                                     assert_chaos_hashseed_stable)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="runtime determinism sanitizer harnesses",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    hashseed = sub.add_parser(
        "hashseed",
        help="double-run a seeded chaos schedule under two "
             "PYTHONHASHSEED values and compare trace bytes",
    )
    hashseed.add_argument("--seed", type=int, default=11,
                          help="chaos schedule seed (default 11)")
    hashseed.add_argument("--ops", type=int, default=60,
                          help="operations per run (default 60)")
    hashseed.add_argument(
        "--hash-seeds", default=",".join(DEFAULT_HASH_SEEDS),
        metavar="S1,S2[,...]",
        help="PYTHONHASHSEED values to compare (default %s)"
             % ",".join(DEFAULT_HASH_SEEDS))
    return parser


def main(argv=None):
    options = build_parser().parse_args(argv)
    if options.command == "hashseed":
        hash_seeds = [seed.strip()
                      for seed in options.hash_seeds.split(",")
                      if seed.strip()]
        try:
            output, runs = assert_chaos_hashseed_stable(
                seed=options.seed, ops=options.ops,
                hash_seeds=hash_seeds)
        except SanitizeError as exc:
            print(exc, file=sys.stderr)
            return 1
        print("hashseed: %d runs (PYTHONHASHSEED=%s) -> byte-identical "
              "output (%d bytes, seed=%d, ops=%d)"
              % (runs, ",".join(hash_seeds), len(output),
                 options.seed, options.ops))
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
