"""Reproduction of *Purity: Building Fast, Highly-Available Enterprise
Flash Storage from Commodity Components* (SIGMOD 2015).

The public API lives at the top level:

>>> from repro import PurityArray, ArrayConfig
>>> array = PurityArray.create(ArrayConfig.small())
>>> array.create_volume("db", 2 * 1024 * 1024)
>>> array.write("db", 0, b"\\x00" * 4096)  # doctest: +SKIP

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core.array import PurityArray
from repro.core.config import ArrayConfig
from repro.core.ha import DualControllerArray
from repro.core.replication import AsyncReplicator
from repro.errors import PurityError

__version__ = "0.1.0"

__all__ = [
    "PurityArray",
    "ArrayConfig",
    "DualControllerArray",
    "AsyncReplicator",
    "PurityError",
    "__version__",
]
