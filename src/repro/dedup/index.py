"""The in-memory deduplication hash index.

The index maps sampled 64-bit sector hashes to the physical location of
the sector (a stored cblock plus a sector offset within it). It holds
two tiers, matching the paper's inline heuristics: a bounded *recent*
tier of newly written data, and a *frequent* tier that hashes graduate
into after repeated hits. Inline dedup consults both; the background
garbage-collection pass (Section 4.7) catches what the bounded tiers
miss.
"""

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class DedupLocation:
    """A sector's physical home: a cblock in a segment, plus a skew.

    ``segment_id``/``payload_offset``/``stored_length`` identify the
    cblock blob; ``sector_index`` is the sector's position within the
    cblock's *logical* (decompressed) bytes.
    """

    segment_id: int
    payload_offset: int
    stored_length: int
    sector_index: int

    def shifted(self, delta):
        """The same cblock, ``delta`` sectors away."""
        return DedupLocation(
            self.segment_id,
            self.payload_offset,
            self.stored_length,
            self.sector_index + delta,
        )


class DedupIndex:
    """Two-tier bounded hash index: recent + frequent."""

    def __init__(self, recent_capacity=65536, frequent_capacity=65536,
                 promote_hits=2):
        self.recent_capacity = recent_capacity
        self.frequent_capacity = frequent_capacity
        self.promote_hits = promote_hits
        self._recent = OrderedDict()  # hash -> DedupLocation
        self._frequent = OrderedDict()  # hash -> DedupLocation
        self._hit_counts = {}
        self.lookups = 0
        self.hits = 0
        self.records = 0

    def __len__(self):
        return len(self._recent) + len(self._frequent)

    def record(self, sector_hash_value, location):
        """Remember a sampled hash for recently written data."""
        self.records += 1
        self._recent[sector_hash_value] = location
        self._recent.move_to_end(sector_hash_value)
        while len(self._recent) > self.recent_capacity:
            self._recent.popitem(last=False)

    def lookup(self, sector_hash_value):
        """Location for a hash, or None; promotes hot hashes."""
        self.lookups += 1
        location = self._frequent.get(sector_hash_value)
        if location is not None:
            self._frequent.move_to_end(sector_hash_value)
            self.hits += 1
            return location
        location = self._recent.get(sector_hash_value)
        if location is None:
            return None
        self.hits += 1
        count = self._hit_counts.get(sector_hash_value, 0) + 1
        self._hit_counts[sector_hash_value] = count
        if count >= self.promote_hits:
            # Frequently deduplicated data stays findable even after it
            # ages out of the recent tier.
            del self._recent[sector_hash_value]
            del self._hit_counts[sector_hash_value]
            self._frequent[sector_hash_value] = location
            while len(self._frequent) > self.frequent_capacity:
                self._frequent.popitem(last=False)
        return location

    def invalidate_segment(self, segment_id):
        """Drop entries pointing into a garbage-collected segment."""
        for tier in (self._recent, self._frequent):
            stale = [
                key for key, location in tier.items()
                if location.segment_id == segment_id
            ]
            for key in stale:
                del tier[key]
                self._hit_counts.pop(key, None)

    def rewrite_segment(self, old_segment_id, relocate):
        """Update entries after GC moved a segment's cblocks.

        ``relocate(location) -> DedupLocation or None`` maps old
        locations to new ones; None drops the entry.
        """
        for tier in (self._recent, self._frequent):
            for key in list(tier):
                location = tier[key]
                if location.segment_id != old_segment_id:
                    continue
                replacement = relocate(location)
                if replacement is None:
                    del tier[key]
                    self._hit_counts.pop(key, None)
                else:
                    tier[key] = replacement

    @property
    def hit_rate(self):
        """Fraction of lookups that found a candidate."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups
