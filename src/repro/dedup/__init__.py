"""Deduplication (paper Section 4.7).

Purity deduplicates at 512 B granularity but records only every eighth
block's hash, using hashes no larger than 64 bits; all blocks are
*looked up*, and a hash hit is confirmed by a byte-level comparison, so
short hashes cost only an extra block compare and never correctness. A
confirmed duplicate becomes an *anchor* from which the run is extended
in both directions, detecting most duplicate sequences of at least
8 blocks (4 KiB) regardless of alignment.
"""

from repro.dedup.hashing import (
    HASH_BITS,
    sampled_sector_hashes,
    sector_hash,
    sector_hashes,
)
from repro.dedup.index import DedupIndex, DedupLocation
from repro.dedup.inline import DedupMatch, InlineDeduper

__all__ = [
    "HASH_BITS",
    "sampled_sector_hashes",
    "sector_hash",
    "sector_hashes",
    "DedupIndex",
    "DedupLocation",
    "DedupMatch",
    "InlineDeduper",
]
