"""Inline deduplication: lookup, verify, anchor-extend.

For an incoming write, every sector hash is looked up (only sampled
hashes were recorded). A hit is *verified* by comparing the actual
bytes — collisions cost one block compare, never correctness. A
verified sector becomes an anchor: the match is extended forward and
backward sector by sector, so duplicate runs of at least
``min_run_sectors`` (8 by default = 4 KiB) are detected regardless of
how they align with the sampling grid.

Hot-path shape: when the caller supplies a ``fetch_run`` callback (the
data path does), extension compares whole candidate runs with a single
memoryview fetch and one vectorized mismatch scan, instead of one
``fetch_sector`` round trip per sector. The per-sector path remains as
the fallback for callers that only provide ``fetch_sector``, and the
results are identical: both stop the run at the first differing sector
or the cblock boundary.
"""

import time
from dataclasses import dataclass

import numpy as np

from repro.dedup.hashing import sector_hash
from repro.perf import PERF
from repro.units import SECTOR


@dataclass(frozen=True)
class DedupMatch:
    """One deduplicated run within an incoming write.

    ``sector_start``/``sector_count`` address the incoming data;
    ``location`` is the physical home of the run's first sector.
    """

    sector_start: int
    sector_count: int
    location: object

    @property
    def byte_start(self):
        return self.sector_start * SECTOR

    @property
    def byte_length(self):
        return self.sector_count * SECTOR


def _common_sector_prefix(candidate, incoming):
    """Number of leading sectors on which two equal-length views agree."""
    if candidate == incoming:
        return len(candidate) // SECTOR
    a = np.frombuffer(candidate, dtype=np.uint8)
    b = np.frombuffer(incoming, dtype=np.uint8)
    first_mismatch = int(np.argmax(a != b))
    return first_mismatch // SECTOR


def _common_sector_suffix(candidate, incoming):
    """Number of trailing sectors on which two equal-length views agree."""
    if candidate == incoming:
        return len(candidate) // SECTOR
    a = np.frombuffer(candidate, dtype=np.uint8)
    b = np.frombuffer(incoming, dtype=np.uint8)
    mismatches = np.nonzero(a != b)[0]
    last_mismatch = int(mismatches[-1])
    return (len(candidate) - 1 - last_mismatch) // SECTOR


class InlineDeduper:
    """Finds duplicate runs in incoming writes against the dedup index."""

    def __init__(self, index, fetch_sector, min_run_sectors=8, fetch_run=None):
        """``fetch_sector(location) -> bytes or None`` reads the 512 B
        sector a :class:`DedupLocation` points at (None when the
        location is no longer readable, e.g. its cblock was collected).

        ``fetch_run(location, sector_count) -> memoryview or None``
        optionally reads up to ``sector_count`` consecutive sectors
        starting at ``location`` (clamped to the cblock) so run
        extension can compare in bulk.
        """
        if min_run_sectors < 1:
            raise ValueError("min_run_sectors must be positive")
        self.index = index
        self.fetch_sector = fetch_sector
        self.fetch_run = fetch_run
        self.min_run_sectors = min_run_sectors
        self.verify_comparisons = 0
        self.false_hash_hits = 0
        self.matches_found = 0

    def _sector(self, data, index):
        return data[index * SECTOR : (index + 1) * SECTOR]

    def _verify(self, location, expected):
        self.verify_comparisons += 1
        with PERF.timer("dedup-verify"):
            actual = self.fetch_sector(location)
            return actual is not None and actual == expected

    def find_matches(self, data):
        """Duplicate runs in ``data``; non-overlapping, sorted, verified.

        Sectors are hashed lazily: the cursor jumps over the interior of
        every emitted match, so an exact-duplicate cblock costs roughly
        one digest instead of one per sector. The match set is identical
        to eager hashing — the cursor only ever consults the hash at its
        own position.
        """
        view = memoryview(data)
        if len(view) % SECTOR:
            raise ValueError(
                "data length %d is not a sector multiple" % len(view)
            )
        total = len(view) // SECTOR
        hashes = [None] * total
        hash_ns = 0
        # lint: allow[wall-clock-purity] host-side perf accounting (charged to PERF); never enters sim state
        monotonic_ns = time.monotonic_ns
        matches = []
        claimed_until = 0  # first sector not covered by an emitted match
        cursor = 0
        while cursor < total:
            value = hashes[cursor]
            if value is None:
                start_ns = monotonic_ns()
                value = sector_hash(view[cursor * SECTOR : (cursor + 1) * SECTOR])
                hash_ns += monotonic_ns() - start_ns
                hashes[cursor] = value
            location = self.index.lookup(value)
            if location is None:
                cursor += 1
                continue
            if not self._verify(location, self._sector(view, cursor)):
                self.false_hash_hits += 1
                cursor += 1
                continue
            run_start, run_location = self._extend_backward(
                view, cursor, location, limit=cursor - claimed_until
            )
            run_end = self._extend_forward(view, cursor, location, total)
            run_length = run_end - run_start
            if run_length >= self.min_run_sectors:
                matches.append(
                    DedupMatch(
                        sector_start=run_start,
                        sector_count=run_length,
                        location=run_location,
                    )
                )
                self.matches_found += 1
                claimed_until = run_end
                cursor = run_end
            else:
                cursor += 1
        PERF.add_time("hash", hash_ns)
        return matches

    def _extend_forward(self, data, anchor, location, total):
        """Grow the run past the anchor; returns one past the last match."""
        if self.fetch_run is not None:
            return self._extend_forward_batched(data, anchor, location, total)
        end = anchor + 1
        while end < total:
            candidate = location.shifted(end - anchor)
            if not self._verify(candidate, self._sector(data, end)):
                break
            end += 1
        return end

    def _extend_forward_batched(self, data, anchor, location, total):
        want = total - (anchor + 1)
        if want <= 0:
            return anchor + 1
        with PERF.timer("dedup-verify"):
            run = self.fetch_run(location.shifted(1), want)
            if run is None:
                return anchor + 1
            got = len(run) // SECTOR
            incoming = data[(anchor + 1) * SECTOR : (anchor + 1 + got) * SECTOR]
            agreed = _common_sector_prefix(run, incoming)
        self.verify_comparisons += max(1, min(agreed + 1, got))
        return anchor + 1 + agreed

    def _extend_backward(self, data, anchor, location, limit):
        """Grow the run before the anchor; returns (run start, location).

        ``limit`` caps how far back we may go without overlapping the
        previous emitted match.
        """
        if self.fetch_run is not None:
            return self._extend_backward_batched(data, anchor, location, limit)
        start = anchor
        steps = 0
        while steps < limit and start > 0 and location.sector_index - (anchor - start) - 1 >= 0:
            candidate = location.shifted(start - 1 - anchor)
            if not self._verify(candidate, self._sector(data, start - 1)):
                break
            start -= 1
            steps += 1
        return start, location.shifted(start - anchor)

    def _extend_backward_batched(self, data, anchor, location, limit):
        want = min(limit, anchor, location.sector_index)
        if want <= 0:
            return anchor, location
        with PERF.timer("dedup-verify"):
            run = self.fetch_run(location.shifted(-want), want)
            agreed = 0
            if run is not None and len(run) == want * SECTOR:
                incoming = data[(anchor - want) * SECTOR : anchor * SECTOR]
                agreed = _common_sector_suffix(run, incoming)
        self.verify_comparisons += max(1, min(agreed + 1, want))
        start = anchor - agreed
        return start, location.shifted(start - anchor)
