"""Inline deduplication: lookup, verify, anchor-extend.

For an incoming write, every sector hash is looked up (only sampled
hashes were recorded). A hit is *verified* by comparing the actual
bytes — collisions cost one block compare, never correctness. A
verified sector becomes an anchor: the match is extended forward and
backward sector by sector, so duplicate runs of at least
``min_run_sectors`` (8 by default = 4 KiB) are detected regardless of
how they align with the sampling grid.
"""

from dataclasses import dataclass

from repro.dedup.hashing import sector_hashes
from repro.units import SECTOR


@dataclass(frozen=True)
class DedupMatch:
    """One deduplicated run within an incoming write.

    ``sector_start``/``sector_count`` address the incoming data;
    ``location`` is the physical home of the run's first sector.
    """

    sector_start: int
    sector_count: int
    location: object

    @property
    def byte_start(self):
        return self.sector_start * SECTOR

    @property
    def byte_length(self):
        return self.sector_count * SECTOR


class InlineDeduper:
    """Finds duplicate runs in incoming writes against the dedup index."""

    def __init__(self, index, fetch_sector, min_run_sectors=8):
        """``fetch_sector(location) -> bytes or None`` reads the 512 B
        sector a :class:`DedupLocation` points at (None when the
        location is no longer readable, e.g. its cblock was collected).
        """
        if min_run_sectors < 1:
            raise ValueError("min_run_sectors must be positive")
        self.index = index
        self.fetch_sector = fetch_sector
        self.min_run_sectors = min_run_sectors
        self.verify_comparisons = 0
        self.false_hash_hits = 0
        self.matches_found = 0

    def _sector(self, data, index):
        return data[index * SECTOR : (index + 1) * SECTOR]

    def _verify(self, location, expected):
        self.verify_comparisons += 1
        actual = self.fetch_sector(location)
        return actual is not None and actual == expected

    def find_matches(self, data):
        """Duplicate runs in ``data``; non-overlapping, sorted, verified."""
        hashes = sector_hashes(data)
        total = len(hashes)
        matches = []
        claimed_until = 0  # first sector not covered by an emitted match
        cursor = 0
        while cursor < total:
            location = self.index.lookup(hashes[cursor])
            if location is None:
                cursor += 1
                continue
            if not self._verify(location, self._sector(data, cursor)):
                self.false_hash_hits += 1
                cursor += 1
                continue
            run_start, run_location = self._extend_backward(
                data, cursor, location, limit=cursor - claimed_until
            )
            run_end = self._extend_forward(data, cursor, location, total)
            run_length = run_end - run_start
            if run_length >= self.min_run_sectors:
                matches.append(
                    DedupMatch(
                        sector_start=run_start,
                        sector_count=run_length,
                        location=run_location,
                    )
                )
                self.matches_found += 1
                claimed_until = run_end
                cursor = run_end
            else:
                cursor += 1
        return matches

    def _extend_forward(self, data, anchor, location, total):
        """Grow the run past the anchor; returns one past the last match."""
        end = anchor + 1
        while end < total:
            candidate = location.shifted(end - anchor)
            if not self._verify(candidate, self._sector(data, end)):
                break
            end += 1
        return end

    def _extend_backward(self, data, anchor, location, limit):
        """Grow the run before the anchor; returns (run start, location).

        ``limit`` caps how far back we may go without overlapping the
        previous emitted match.
        """
        start = anchor
        steps = 0
        while steps < limit and start > 0 and location.sector_index - (anchor - start) - 1 >= 0:
            candidate = location.shifted(start - 1 - anchor)
            if not self._verify(candidate, self._sector(data, start - 1)):
                break
            start -= 1
            steps += 1
        return start, location.shifted(start - anchor)
