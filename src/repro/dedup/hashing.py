"""Sector hashing for deduplication.

Hashes are 64 bits (the paper uses "hashes no larger than 64 bits") —
small enough to keep the index compact, collision-prone enough
(~10^-6 or worse at scale) that every hit must be confirmed by a
byte-level comparison before a duplicate mapping is recorded.

Both entry points slice through a :class:`memoryview`, so hashing never
copies sector bytes out of the incoming write. The sampling rate (which
sectors get *recorded*, not which get looked up) lives in
``ArrayConfig.dedup_sample_every``; callers pass it explicitly.
"""

import hashlib

from repro.units import SECTOR

#: Bits kept from each sector digest.
HASH_BITS = 64


def sector_hash(sector_bytes):
    """64-bit hash of one 512 B sector (accepts any bytes-like)."""
    digest = hashlib.blake2b(sector_bytes, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def sector_hashes(data):
    """Hashes of each 512 B sector of ``data`` (length must divide evenly).

    ``data`` may be bytes, bytearray, or memoryview; sectors are hashed
    through zero-copy memoryview slices.
    """
    view = memoryview(data)
    if len(view) % SECTOR:
        raise ValueError("data length %d is not a sector multiple" % len(view))
    blake2b = hashlib.blake2b
    from_bytes = int.from_bytes
    return [
        from_bytes(blake2b(view[offset : offset + SECTOR], digest_size=8).digest(), "big")
        for offset in range(0, len(view), SECTOR)
    ]


def sampled_sector_hashes(data, sample_every):
    """(sector_index, hash) pairs for every ``sample_every``-th sector.

    This is the recording-side counterpart of :func:`sector_hashes`:
    only the sampled sectors are digested at all, so recording costs
    1/``sample_every`` of a full hash pass.
    """
    if sample_every < 1:
        raise ValueError("sample_every must be positive")
    view = memoryview(data)
    if len(view) % SECTOR:
        raise ValueError("data length %d is not a sector multiple" % len(view))
    blake2b = hashlib.blake2b
    from_bytes = int.from_bytes
    step = SECTOR * sample_every
    return [
        (
            offset // SECTOR,
            from_bytes(
                blake2b(view[offset : offset + SECTOR], digest_size=8).digest(),
                "big",
            ),
        )
        for offset in range(0, len(view), step)
    ]
