"""Sector hashing for deduplication.

Hashes are 64 bits (the paper uses "hashes no larger than 64 bits") —
small enough to keep the index compact, collision-prone enough
(~10^-6 or worse at scale) that every hit must be confirmed by a
byte-level comparison before a duplicate mapping is recorded.
"""

import hashlib

from repro.units import SECTOR

#: Bits kept from each sector digest.
HASH_BITS = 64

#: Only every Nth sector's hash is *recorded* (all are looked up).
SAMPLE_EVERY = 8


def sector_hash(sector_bytes):
    """64-bit hash of one 512 B sector."""
    digest = hashlib.blake2b(sector_bytes, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def sector_hashes(data):
    """Hashes of each 512 B sector of ``data`` (length must divide evenly)."""
    if len(data) % SECTOR:
        raise ValueError("data length %d is not a sector multiple" % len(data))
    return [
        sector_hash(data[offset : offset + SECTOR])
        for offset in range(0, len(data), SECTOR)
    ]
