"""Baseline comparison: the perf-regression gate behind ``--check``.

``bench-baseline.json`` commits one value per metric (plus its
tolerance). A ``--check`` run re-measures, then fails when:

* any metric's paper *shape* breaks (direction/band violated), or
* a metric drifts from its baseline value by more than its tolerance
  band, or
* a bench or metric present in the baseline disappears entirely.

Tolerances are per-metric: deterministic metrics default to a tight
band (same seed should reproduce them almost exactly; the slack only
absorbs intentional cross-platform float noise), wall-clock-derived
metrics to a wide one (machine speed is not a regression). A metric
record may pin its own ``tolerance_pct`` to override either default.

New metrics that are not yet in the baseline are reported but never
fatal — you add them by re-running ``--write-baseline``.
"""

import json

#: Default relative tolerance bands, in percent.
DETERMINISTIC_TOLERANCE_PCT = 10.0
WALL_CLOCK_TOLERANCE_PCT = 60.0

BASELINE_FILENAME = "bench-baseline.json"


def baseline_from_documents(documents):
    """Flatten group documents into the committed baseline form."""
    metrics = {}
    for group in sorted(documents):
        for bench in documents[group]["benches"]:
            for metric in bench["metrics"]:
                key = "%s.%s" % (bench["bench"], metric["metric"])
                entry = {
                    "value": metric["value"],
                    "unit": metric["unit"],
                    "deterministic": metric["deterministic"],
                }
                if metric.get("tolerance_pct") is not None:
                    entry["tolerance_pct"] = metric["tolerance_pct"]
                metrics[key] = entry
    return {
        "schema_version": documents[sorted(documents)[0]]["schema_version"],
        "metrics": metrics,
    }


def write_baseline(baseline, path):
    with open(path, "w") as handle:
        handle.write(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path):
    with open(path) as handle:
        return json.load(handle)


def tolerance_for(entry):
    """The relative tolerance band (in percent) for a baseline entry."""
    if entry.get("tolerance_pct") is not None:
        return float(entry["tolerance_pct"])
    if entry.get("deterministic", True):
        return DETERMINISTIC_TOLERANCE_PCT
    return WALL_CLOCK_TOLERANCE_PCT


class Deviation:
    """One comparison failure (or informational note)."""

    __slots__ = ("kind", "key", "message", "fatal")

    def __init__(self, kind, key, message, fatal=True):
        self.kind = kind
        self.key = key
        self.message = message
        self.fatal = fatal

    def __repr__(self):
        return "Deviation(%s, %s)" % (self.kind, self.key)

    def render(self):
        marker = "FAIL" if self.fatal else "note"
        return "%s [%s] %s: %s" % (marker, self.kind, self.key, self.message)


def compare(documents, baseline, max_regression_pct=None):
    """All deviations between fresh documents and a committed baseline.

    ``max_regression_pct``, when given, overrides every per-metric
    tolerance with one global cap (the CI gate's ``-N%`` knob).
    """
    deviations = []
    fresh = {}
    ran_benches = set()
    for group in sorted(documents):
        for bench in documents[group]["benches"]:
            ran_benches.add(bench["bench"])
            for metric in bench["metrics"]:
                key = "%s.%s" % (bench["bench"], metric["metric"])
                fresh[key] = metric
                if not metric["passed"]:
                    deviations.append(Deviation(
                        "shape", key,
                        "measured %s %s violates the paper shape %s"
                        % (metric["value"], metric["unit"],
                           json.dumps(metric.get("shape"), sort_keys=True)),
                    ))
    base_metrics = baseline.get("metrics", {})
    for key in sorted(base_metrics):
        entry = base_metrics[key]
        metric = fresh.get(key)
        if metric is None:
            # Only fatal when the bench itself ran: a subset run
            # (--quick, --group) legitimately skips whole benches.
            if key.split(".", 1)[0] in ran_benches:
                deviations.append(Deviation(
                    "missing", key, "metric present in baseline but not "
                    "produced by this run"))
            continue
        tolerance = tolerance_for(entry)
        if max_regression_pct is not None:
            tolerance = min(tolerance, float(max_regression_pct))
        base_value = entry["value"]
        value = metric["value"]
        if base_value == 0:
            drift_ok = value == 0
            drift_pct = 0.0 if drift_ok else float("inf")
        else:
            drift_pct = abs(value - base_value) / abs(base_value) * 100.0
            drift_ok = drift_pct <= tolerance
        if not drift_ok:
            deviations.append(Deviation(
                "regression", key,
                "measured %s vs baseline %s (%.1f%% drift, tolerance "
                "%.0f%%)" % (value, base_value, drift_pct, tolerance),
            ))
    for key in sorted(fresh):
        if key not in base_metrics:
            deviations.append(Deviation(
                "new", key, "metric not in baseline yet (re-run "
                "--write-baseline to adopt it)", fatal=False))
    return deviations


def fatal_deviations(deviations):
    return [deviation for deviation in deviations if deviation.fatal]
