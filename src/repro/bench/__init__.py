"""Deterministic benchmark orchestrator (``python -m repro.bench``).

The reproduction's standing validation harness: every
``benchmarks/bench_*.py`` script registers a metric collector with
:func:`register`; the orchestrator discovers them, runs them under the
pinned seeds from :mod:`repro.bench.seeds`, and emits schema-versioned
``BENCH_*.json`` artifacts at the repo root — one record per metric
with its value, unit, the paper's expected shape, and a computed
pass/fail. ``--check`` turns the same run into a perf-regression gate
against the committed ``bench-baseline.json``; ``--docs`` regenerates
the paper-vs-measured tables in EXPERIMENTS.md from the committed data.

Module map: :mod:`~repro.bench.registry` (decorator + discovery),
:mod:`~repro.bench.schema` (records, shapes, validation),
:mod:`~repro.bench.runner` (execution + artifact writing),
:mod:`~repro.bench.baseline` (tolerance-band comparison),
:mod:`~repro.bench.docs` (EXPERIMENTS.md markers),
:mod:`~repro.bench.cli` (argument handling).
"""

from repro.bench.registry import REGISTRY, discover, register
from repro.bench.schema import (
    Metric,
    shape_band,
    shape_equal,
    shape_max,
    shape_min,
)
from repro.bench.seeds import ROOT_SEED, bench_seed

__all__ = [
    "REGISTRY",
    "ROOT_SEED",
    "Metric",
    "bench_seed",
    "discover",
    "register",
    "shape_band",
    "shape_equal",
    "shape_max",
    "shape_min",
]
