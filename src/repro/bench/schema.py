"""Schema-versioned benchmark records: metrics, shapes, validation.

Every orchestrated benchmark returns a list of :class:`Metric` rows;
the runner wraps them into a per-group document written to the repo
root (``BENCH_paper_shapes.json`` and friends). One record per metric,
carrying the measured value, its unit, the paper's expected *shape*
(direction / factor / band), and a computed pass/fail — so a JSON file
is self-describing: a reader needs no other context to see whether the
reproduction still holds the paper's claims.

Shapes are deliberately coarse. The reproduction target is never a
point value (the substrate is a miniature simulation) but a direction
("flash wins latency by at least 3x"), a band ("RDBMS reduction lands
in 2-9x"), or an exact invariant ("zero application-visible errors").

``validate_document`` is a dependency-free structural validator used
both by the test suite and by ``--check`` before trusting a baseline.
"""

SCHEMA_VERSION = 1

#: Groups map one-to-one onto the repo-root artifact files.
GROUPS = ("paper_shapes", "hotpath", "chaos", "parallel", "cluster",
          "service")

SHAPE_KINDS = ("min", "max", "band", "equal")


def shape_min(expect, paper=None):
    """Pass when ``value >= expect`` (e.g. a speedup factor floor)."""
    shape = {"kind": "min", "expect": expect}
    if paper is not None:
        shape["paper"] = paper
    return shape


def shape_max(expect, paper=None):
    """Pass when ``value <= expect`` (e.g. a bounded amplification)."""
    shape = {"kind": "max", "expect": expect}
    if paper is not None:
        shape["paper"] = paper
    return shape


def shape_band(lo, hi, paper=None):
    """Pass when ``lo <= value <= hi`` (a class-of-magnitude check)."""
    shape = {"kind": "band", "lo": lo, "hi": hi}
    if paper is not None:
        shape["paper"] = paper
    return shape


def shape_equal(expect, paper=None):
    """Pass when ``value == expect`` (exact invariants and booleans)."""
    shape = {"kind": "equal", "expect": expect}
    if paper is not None:
        shape["paper"] = paper
    return shape


def evaluate_shape(shape, value):
    """Whether ``value`` satisfies ``shape``; None shape always passes."""
    if shape is None:
        return True
    kind = shape["kind"]
    if kind == "min":
        return value >= shape["expect"]
    if kind == "max":
        return value <= shape["expect"]
    if kind == "band":
        return shape["lo"] <= value <= shape["hi"]
    if kind == "equal":
        return value == shape["expect"]
    raise ValueError("unknown shape kind: %r" % (kind,))


def describe_shape(shape):
    """Compact human rendering of a shape, for tables and reports."""
    if shape is None:
        return "(informational)"
    kind = shape["kind"]
    if kind == "min":
        return ">= %s" % _compact(shape["expect"])
    if kind == "max":
        return "<= %s" % _compact(shape["expect"])
    if kind == "band":
        return "%s..%s" % (_compact(shape["lo"]), _compact(shape["hi"]))
    if kind == "equal":
        return "== %s" % _compact(shape["expect"])
    return "?"


def _compact(value):
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def round_value(value):
    """Deterministic rounding for emitted values.

    Floats are cut to 6 significant digits so files stay tidy and
    baseline diffs readable; ints and bools pass through untouched
    (bools become 0/1 so every value is a JSON number).
    """
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, float):
        rounded = float("%.6g" % value)
        return int(rounded) if rounded.is_integer() else rounded
    return value


class Metric:
    """One measured quantity plus the paper shape it must satisfy."""

    __slots__ = ("name", "value", "unit", "shape", "deterministic",
                 "tolerance_pct")

    def __init__(self, name, value, unit, shape=None, deterministic=True,
                 tolerance_pct=None):
        self.name = name
        self.value = round_value(value)
        self.unit = unit
        self.shape = shape
        self.deterministic = deterministic
        self.tolerance_pct = tolerance_pct

    @property
    def passed(self):
        return evaluate_shape(self.shape, self.value)

    def record(self):
        record = {
            "metric": self.name,
            "value": self.value,
            "unit": self.unit,
            "deterministic": self.deterministic,
            "passed": self.passed,
        }
        if self.shape is not None:
            record["shape"] = self.shape
        if self.tolerance_pct is not None:
            record["tolerance_pct"] = self.tolerance_pct
        return record


def bench_record(spec, metrics, stages=None, obs_stages=None):
    """The per-bench JSON object inside a group document."""
    record = {
        "bench": spec.name,
        "title": spec.title,
        "source": spec.source,
        "seeds": spec.seeds,
        "metrics": [metric.record() for metric in metrics],
        "passed": all(metric.passed for metric in metrics),
    }
    if stages:
        record["stages"] = stages
    if obs_stages:
        record["obs_stages"] = obs_stages
    return record


def group_document(group, bench_records, root_seed):
    """The whole-file JSON document for one benchmark group."""
    ordered = sorted(bench_records, key=lambda record: record["bench"])
    return {
        "schema_version": SCHEMA_VERSION,
        "group": group,
        "root_seed": root_seed,
        "benches": ordered,
        "passed": all(record["passed"] for record in ordered),
    }


class SchemaError(ValueError):
    """A document does not conform to the benchmark schema."""


def _require(condition, message):
    if not condition:
        raise SchemaError(message)


def validate_metric(record, where):
    _require(isinstance(record, dict), "%s: metric must be an object" % where)
    for field in ("metric", "value", "unit", "deterministic", "passed"):
        _require(field in record, "%s: missing field %r" % (where, field))
    _require(isinstance(record["metric"], str) and record["metric"],
             "%s: metric name must be a non-empty string" % where)
    _require(isinstance(record["value"], (int, float))
             and not isinstance(record["value"], bool),
             "%s: value must be a JSON number" % where)
    _require(isinstance(record["unit"], str),
             "%s: unit must be a string" % where)
    _require(isinstance(record["deterministic"], bool),
             "%s: deterministic must be a bool" % where)
    _require(isinstance(record["passed"], bool),
             "%s: passed must be a bool" % where)
    shape = record.get("shape")
    if shape is not None:
        _require(isinstance(shape, dict) and shape.get("kind") in SHAPE_KINDS,
                 "%s: shape.kind must be one of %s" % (where, (SHAPE_KINDS,)))
        if shape["kind"] == "band":
            _require("lo" in shape and "hi" in shape,
                     "%s: band shape needs lo and hi" % where)
        else:
            _require("expect" in shape,
                     "%s: %s shape needs expect" % (where, shape["kind"]))
        _require(record["passed"] == evaluate_shape(shape, record["value"]),
                 "%s: stored passed flag disagrees with shape" % where)


def validate_document(document):
    """Structural validation of one BENCH_*.json document.

    Raises :class:`SchemaError` with a path-qualified message on the
    first violation; returns the document unchanged when valid.
    """
    _require(isinstance(document, dict), "document must be an object")
    _require(document.get("schema_version") == SCHEMA_VERSION,
             "schema_version must be %d" % SCHEMA_VERSION)
    _require(document.get("group") in GROUPS,
             "group must be one of %s" % (GROUPS,))
    _require(isinstance(document.get("root_seed"), int),
             "root_seed must be an int")
    benches = document.get("benches")
    _require(isinstance(benches, list) and benches,
             "benches must be a non-empty list")
    seen = set()
    previous = None
    for index, bench in enumerate(benches):
        where = "benches[%d]" % index
        _require(isinstance(bench, dict), "%s: must be an object" % where)
        for field in ("bench", "title", "source", "seeds", "metrics",
                      "passed"):
            _require(field in bench, "%s: missing field %r" % (where, field))
        name = bench["bench"]
        _require(isinstance(name, str) and name,
                 "%s: bench name must be a non-empty string" % where)
        _require(name not in seen, "%s: duplicate bench %r" % (where, name))
        seen.add(name)
        _require(previous is None or previous < name,
                 "%s: benches must be sorted by name" % where)
        previous = name
        _require(isinstance(bench["seeds"], dict),
                 "%s: seeds must be an object" % where)
        metrics = bench["metrics"]
        _require(isinstance(metrics, list) and metrics,
                 "%s: metrics must be a non-empty list" % where)
        metric_names = set()
        for metric_index, metric in enumerate(metrics):
            metric_where = "%s.metrics[%d]" % (where, metric_index)
            validate_metric(metric, metric_where)
            _require(metric["metric"] not in metric_names,
                     "%s: duplicate metric %r" % (metric_where,
                                                  metric["metric"]))
            metric_names.add(metric["metric"])
        _require(bench["passed"] == all(m["passed"] for m in metrics),
                 "%s: stored passed flag disagrees with metrics" % where)
    _require(document["passed"] == all(b["passed"] for b in benches),
             "document passed flag disagrees with benches")
    return document
