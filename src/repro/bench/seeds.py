"""Single source of truth for benchmark seeds.

Before the orchestrator existed, each ``benchmarks/bench_*.py`` pinned
its own ad-hoc literals; a whole-suite run was only reproducible if
every script happened to stay untouched. All seeds now live in this one
table, keyed ``<bench>.<role>``, and scripts draw them through
:func:`bench_seed` — so the orchestrator can record exactly which seeds
produced a ``BENCH_*.json`` file and a whole-suite run is reproducible
end to end from :data:`ROOT_SEED` plus this table alone.

The values are the historical per-script pins (changing them would
shift every measured number and invalidate EXPERIMENTS.md); what moved
is *where* they live, not what they are. New benchmarks should claim
the next unused value rather than inventing a private constant.
"""

#: The paper's publication year; the orchestrator stamps it into every
#: emitted document so a reader can tie artifacts to this table.
ROOT_SEED = 2015

#: ``<bench>.<role>`` -> seed. Roles name the stream's purpose inside
#: the script (workload data, measurement arrivals, device jitter ...).
SEEDS = {
    # Table 1: simulated Purity vs disk array under the same workload.
    "table1.purity": 31,
    "table1.disk": 32,
    # Figure 1: SSD substrate behaviours. Queue-depth curve seeds are
    # derived per depth: device gets the depth, arrivals get base+depth.
    "fig1.qd_arrival_base": 1000,
    "fig1.calm_device": 1,
    "fig1.busy_device": 2,
    "fig1.stall_arrivals": 5,
    "fig1.sequential_device": 3,
    "fig1.random_device": 4,
    "fig1.random_offsets": 9,
    # Figure 2: HA envelope.
    "fig2.failover_array": 0,
    "fig2.failover_data": 1,
    "fig2.forwarding_array": 3,
    "fig2.forwarding_data": 4,
    "fig2.pulled_array": 5,
    "fig2.pulled_data": 6,
    # Figure 3: segio layout.
    "fig3.data": 12,
    # Figure 4: commit path.
    "fig4.commit_data": 21,
    "fig4.wal_data": 22,
    "fig4.frontier_data": 23,
    # Figure 5: recovery scans. Fill-level runs derive seed = base+fill.
    "fig5.fill_base": 0,
    "fig5.correctness_fill": 77,
    "fig5.probes": 1234,
    # Figure 6: medium resolution.
    "fig6.lineage_data": 61,
    # Data reduction sweeps.
    "data_reduction.class_base": 100,
    "data_reduction.oltp": 7,
    "data_reduction.docstore": 8,
    "data_reduction.vdi": 9,
    "data_reduction.inline_ablation": 71,
    "data_reduction.sampling_ablation": 55,
    # Load-latency curve: per-rate arrays derive from the rate itself.
    "load_latency.rate_offset_array": 0,
    "load_latency.rate_offset_driver": 1,
    "load_latency.rate_offset_trace": 2,
    # Tail latency / read-around-writes.
    "tail_latency.workload": 17,
    "tail_latency.sla_workload": 23,
    # Throughput through failures.
    "failure_throughput.array": 41,
    "failure_throughput.rebuild_array": 42,
    "failure_throughput.reads_healthy": 1,
    "failure_throughput.reads_one_failed": 2,
    "failure_throughput.reads_two_failed": 3,
    # Metadata compression.
    "metadata.address_rows": 3,
    "metadata.scan_rows": 9,
    # RAID ablation.
    "raid.stripe_data": 3,
    "raid.degraded_data": 4,
    # Worn flash.
    "worn_flash.scrubbed": 51,
    "worn_flash.control": 52,
    # Chaos schedules: the survival sweep plus named single schedules.
    "chaos.sweep": (0, 3, 7, 9, 11),
    "chaos.throughput": 21,
    "chaos.traced": 9,
    "chaos.stall_storm": 33,
    "chaos.rebuild_throttle": 34,
    # Hot-path kernels (the paper's year, historically).
    "hotpath.kernels": 2015,
    # Parallel pipeline: one seeded workload drives both worker counts.
    "parallel.workload": 19,
    # Cluster layer: one op tape drives every cluster size; rebalance
    # and chaos get their own schedules (6 is a surveyed kill seed).
    "cluster.scaleout": 29,
    "cluster.rebalance": 47,
    "cluster.chaos": 6,
    # Service plane: noisy-neighbor isolation, 10k-volume
    # consolidation, and the cluster-backed front-end run.
    "service.noisy": 53,
    "service.consolidation": 54,
    "service.cluster": 56,
}


def bench_seed(key):
    """The pinned seed for ``<bench>.<role>``; KeyError names the key."""
    try:
        return SEEDS[key]
    except KeyError:
        raise KeyError(
            "no pinned benchmark seed for %r; add it to "
            "repro.bench.seeds.SEEDS" % (key,)
        ) from None
