"""``python -m repro.bench``: the unified benchmark orchestrator.

One entry point for the whole suite:

* ``--all`` (or ``--group``/``--only``/``--quick`` subsets) runs the
  registered benches under their pinned seeds and writes the
  schema-versioned ``BENCH_*.json`` artifacts to the repo root;
* ``--check`` additionally compares the fresh results against the
  committed ``bench-baseline.json`` and exits nonzero on paper-shape
  breaks or out-of-tolerance regressions — the CI perf gate;
* ``--write-baseline`` adopts the fresh results as the new baseline;
* ``--docs`` regenerates the marked tables in EXPERIMENTS.md from the
  *committed* JSON; ``--check-docs`` fails if doc and data drifted;
* ``--list`` shows the registry without running anything.
"""

import argparse
import sys

from repro.bench import baseline as baseline_mod
from repro.bench import docs as docs_mod
from repro.bench.registry import REGISTRY, discover
from repro.bench.runner import (
    load_committed_documents,
    run_specs,
    summary_lines,
    write_documents,
)
from repro.bench.schema import validate_document

EXPERIMENTS_FILENAME = "EXPERIMENTS.md"


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=__doc__.split("\n\n")[0],
    )
    select = parser.add_argument_group("bench selection")
    select.add_argument("--all", action="store_true",
                        help="run every registered bench")
    select.add_argument("--group", action="append",
                        choices=("paper_shapes", "hotpath", "chaos",
                                 "parallel", "cluster", "service"),
                        help="run one group (repeatable)")
    select.add_argument("--only", action="append", metavar="NAME",
                        help="run the named bench (repeatable)")
    select.add_argument("--quick", action="store_true",
                        help="trim to the quick subset (the CI gate)")
    parser.add_argument("--list", action="store_true",
                        help="list registered benches and exit")
    parser.add_argument("--out-dir", default=".", metavar="DIR",
                        help="where BENCH_*.json land (default: repo root)")
    parser.add_argument("--timings", action="store_true",
                        help="include wall-clock stage timings in the JSON "
                             "(breaks byte-for-byte determinism)")
    gate = parser.add_argument_group("regression gate")
    gate.add_argument("--check", action="store_true",
                      help="compare fresh results against the baseline; "
                           "exit 1 on shape breaks or regressions")
    gate.add_argument("--baseline", default=baseline_mod.BASELINE_FILENAME,
                      metavar="PATH", help="baseline file for --check / "
                                           "--write-baseline")
    gate.add_argument("--max-regression", type=float, default=None,
                      metavar="PCT", help="cap every tolerance band at PCT "
                                          "percent for this check")
    gate.add_argument("--write-baseline", action="store_true",
                      help="adopt the fresh results as the new baseline")
    doc = parser.add_argument_group("documentation")
    doc.add_argument("--docs", action="store_true",
                     help="regenerate EXPERIMENTS.md tables from the "
                          "committed BENCH_*.json")
    doc.add_argument("--check-docs", action="store_true",
                     help="fail if EXPERIMENTS.md drifted from the "
                          "committed BENCH_*.json")
    doc.add_argument("--experiments", default=EXPERIMENTS_FILENAME,
                     metavar="PATH", help="path of the experiments doc")
    return parser


def select_specs(options, registry):
    names = set(options.only) if options.only else None
    if names is not None:
        unknown = names - set(registry.names())
        if unknown:
            raise SystemExit("unknown bench name(s): %s (try --list)"
                             % ", ".join(sorted(unknown)))
    wants_run = (options.all or options.group or names is not None
                 or options.quick or options.check
                 or options.write_baseline)
    if not wants_run:
        return []
    return registry.specs(group=options.group, quick_only=options.quick,
                          names=names)


def main(argv=None):
    options = build_parser().parse_args(argv)
    doc_only = (options.docs or options.check_docs) and not (
        options.all or options.group or options.only or options.quick
        or options.check or options.write_baseline or options.list)
    registry = REGISTRY if doc_only else discover()

    if options.list:
        for name in registry.names():
            spec = registry.get(name)
            print("%-34s group=%-12s %s%s" % (
                spec.name, spec.group, spec.title,
                "  [quick]" if spec.quick else ""))
        return 0

    exit_code = 0
    specs = select_specs(options, registry)
    documents = {}
    if specs:
        def progress(spec):
            print("running %s ..." % spec.name, flush=True)

        documents = run_specs(specs, include_timings=options.timings,
                              progress=progress)
        for document in documents.values():
            validate_document(document)
        paths = write_documents(documents, options.out_dir)
        for line in summary_lines(documents):
            print(line)
        for path in paths:
            print("wrote %s" % path)

    if options.write_baseline:
        baseline = baseline_mod.baseline_from_documents(documents)
        path = baseline_mod.write_baseline(baseline, options.baseline)
        print("wrote %s (%d metrics)" % (path, len(baseline["metrics"])))

    if options.check:
        baseline = baseline_mod.load_baseline(options.baseline)
        deviations = baseline_mod.compare(
            documents, baseline, max_regression_pct=options.max_regression)
        for deviation in deviations:
            print(deviation.render())
        fatal = baseline_mod.fatal_deviations(deviations)
        if fatal:
            print("--check: %d failure(s) against %s"
                  % (len(fatal), options.baseline))
            exit_code = 1
        else:
            print("--check: ok (%d metrics within tolerance)"
                  % len(baseline.get("metrics", {})))

    if options.docs or options.check_docs:
        committed = load_committed_documents(options.out_dir)
        if not committed:
            raise SystemExit("no committed BENCH_*.json found under %r"
                             % options.out_dir)
        for document in committed.values():
            validate_document(document)
        if options.docs:
            changed = docs_mod.regenerate_file(options.experiments, committed)
            print("%s: %s" % (options.experiments,
                              "regenerated" if changed else "already current"))
        if options.check_docs:
            drifted = docs_mod.check_file(options.experiments, committed)
            if drifted:
                print("%s drifted from committed data in: %s"
                      % (options.experiments, ", ".join(drifted)))
                print("re-run: python -m repro.bench --docs")
                exit_code = 1
            else:
                print("%s matches the committed data" % options.experiments)

    return exit_code


if __name__ == "__main__":
    sys.exit(main())
