"""Regenerate EXPERIMENTS.md tables from committed BENCH_*.json.

EXPERIMENTS.md stays a hand-written narrative, but every
paper-vs-measured *table* inside it is generated: the doc brackets each
one with ``<!-- bench:<name> -->`` / ``<!-- /bench:<name> -->`` markers
and ``python -m repro.bench --docs`` rewrites the bracketed bodies from
the committed JSON artifacts. ``--check-docs`` re-renders in memory and
fails when the committed doc and the committed data have drifted apart
— the CI guard that keeps the prose honest.
"""

import re

from repro.bench.schema import describe_shape

MARKER_PATTERN = re.compile(
    r"(<!-- bench:(?P<name>[a-z0-9_.]+) -->\n)(?P<body>.*?)"
    r"(\n?<!-- /bench:(?P=name) -->)",
    re.DOTALL,
)


class DocsError(ValueError):
    """A marker references a bench absent from the committed data."""


def bench_index(documents):
    """bench name -> bench record, across every group document."""
    index = {}
    for group in sorted(documents):
        for bench in documents[group]["benches"]:
            index[bench["bench"]] = bench
    return index


def _format_value(metric):
    value = metric["value"]
    if isinstance(value, float):
        text = "%.6g" % value
    else:
        text = str(value)
    unit = metric["unit"]
    return "%s %s" % (text, unit) if unit else text


def _format_shape(metric):
    shape = metric.get("shape")
    described = describe_shape(shape)
    paper = (shape or {}).get("paper")
    return "%s (paper: %s)" % (described, paper) if paper else described


def render_bench_table(bench):
    """One bench's metrics as a GitHub-flavored markdown table."""
    lines = [
        "| Metric | Measured | Expected shape | Pass |",
        "|---|---|---|---|",
    ]
    for metric in bench["metrics"]:
        lines.append("| %s | %s | %s | %s |" % (
            metric["metric"].replace("_", " "),
            _format_value(metric),
            _format_shape(metric),
            "yes" if metric["passed"] else "**NO**",
        ))
    return "\n".join(lines)


def regenerate_text(text, documents):
    """The document with every marker body re-rendered from the data."""
    index = bench_index(documents)
    missing = []

    def replace(match):
        name = match.group("name")
        bench = index.get(name)
        if bench is None:
            missing.append(name)
            return match.group(0)
        return "%s%s%s" % (match.group(1), render_bench_table(bench),
                           match.group(4))

    regenerated = MARKER_PATTERN.sub(replace, text)
    if missing:
        raise DocsError(
            "EXPERIMENTS.md references benches with no committed data: %s"
            % ", ".join(sorted(set(missing))))
    return regenerated


def marker_names(text):
    """Every bench name bracketed by markers, in document order."""
    return [match.group("name") for match in MARKER_PATTERN.finditer(text)]


def regenerate_file(path, documents):
    """Rewrite ``path`` in place; returns True when anything changed."""
    with open(path) as handle:
        text = handle.read()
    regenerated = regenerate_text(text, documents)
    if regenerated != text:
        with open(path, "w") as handle:
            handle.write(regenerated)
        return True
    return False


def check_file(path, documents):
    """Names of markers whose bodies drifted from the committed data."""
    with open(path) as handle:
        text = handle.read()
    regenerated = regenerate_text(text, documents)
    if regenerated == text:
        return []
    drifted = []
    for match, fresh in zip(MARKER_PATTERN.finditer(text),
                            MARKER_PATTERN.finditer(regenerated)):
        if match.group(0) != fresh.group(0):
            drifted.append(match.group("name"))
    return drifted or ["(structural drift)"]
