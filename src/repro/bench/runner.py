"""The deterministic benchmark runner.

Runs registered benches one at a time, brackets each with a
:mod:`repro.perf` counter reset so the per-bench stage table is clean,
and assembles the schema-versioned group documents the CLI writes to
the repo root. Wall-clock stage timings are *excluded* from the emitted
JSON by default (mirroring :mod:`repro.obs.export`): two same-seed runs
must produce byte-identical deterministic documents, and host wall time
is the one thing a replay cannot reproduce. ``include_timings=True``
adds the wall columns back for interactive profiling.

Benches that trace an array can hand their span records to
:func:`obs_stage_rows`, which rolls them into the same per-stage
*simulated*-latency table ``python -m repro.obs.report`` prints — those
numbers are sim-clock-derived and fully deterministic, so they ride
along in the JSON unconditionally.
"""

import json
import os

from repro.bench.schema import (
    SCHEMA_VERSION,
    bench_record,
    group_document,
)
from repro.bench.seeds import ROOT_SEED
from repro.perf import perf_report, reset_perf_counters
from repro.sim.distributions import percentile

#: group -> repo-root artifact filename.
GROUP_FILES = {
    "paper_shapes": "BENCH_paper_shapes.json",
    "hotpath": "BENCH_hotpath.json",
    "chaos": "BENCH_chaos.json",
    "parallel": "BENCH_parallel.json",
    "cluster": "BENCH_cluster.json",
    "service": "BENCH_service.json",
}


def obs_stage_rows(records):
    """Span-name rollup of a trace: deterministic sim-latency stats.

    The structured twin of ``repro.obs.report.per_stage_table`` —
    same grouping, but returning JSON-ready rows instead of text.
    """
    groups = {}
    for record in records:
        if record["type"] != "span":
            continue
        groups.setdefault(record["name"], []).append(record)
    rows = {}
    for name in sorted(groups):
        spans = groups[name]
        latencies = [span["attrs"]["lat"] for span in spans
                     if "lat" in span["attrs"]]
        row = {"spans": len(spans)}
        if latencies:
            row["total_ms"] = round(sum(latencies) * 1e3, 6)
            row["p50_us"] = round(percentile(latencies, 0.5) * 1e6, 3)
            row["p99_us"] = round(percentile(latencies, 0.99) * 1e6, 3)
        rows[name] = row
    return rows


class CollectedBench:
    """The outcome of one bench run, pre-serialization."""

    __slots__ = ("spec", "metrics", "stages", "obs_stages")

    def __init__(self, spec, metrics, stages, obs_stages):
        self.spec = spec
        self.metrics = metrics
        self.stages = stages
        self.obs_stages = obs_stages

    @property
    def passed(self):
        return all(metric.passed for metric in self.metrics)

    def record(self):
        return bench_record(self.spec, self.metrics, stages=self.stages,
                            obs_stages=self.obs_stages)


def run_bench(spec, include_timings=False):
    """Run one bench under clean perf counters; returns CollectedBench.

    The collector may return a bare metric list, or a
    ``(metrics, obs_records)`` pair when it traced an array and wants
    the per-stage sim-latency table attached.
    """
    reset_perf_counters()
    result = spec.collect()
    obs_stages = None
    if isinstance(result, tuple):
        metrics, obs_records = result
        obs_stages = obs_stage_rows(obs_records) or None
    else:
        metrics = result
    if not metrics:
        raise ValueError("bench %r returned no metrics" % spec.name)
    report = perf_report()
    stages = {}
    for stage in sorted(report["stages"]):
        row = report["stages"][stage]
        entry = {"calls": row["calls"]}
        if include_timings:
            entry["total_ms"] = round(row["total_ms"], 3)
            entry["mean_us"] = round(row["mean_us"], 3)
        stages[stage] = entry
    return CollectedBench(spec, metrics, stages or None, obs_stages)


def run_specs(specs, include_timings=False, progress=None):
    """Run many specs; returns group -> document mapping."""
    by_group = {}
    for spec in specs:
        if progress is not None:
            progress(spec)
        collected = run_bench(spec, include_timings=include_timings)
        by_group.setdefault(spec.group, []).append(collected.record())
    return {
        group: group_document(group, records, ROOT_SEED)
        for group, records in sorted(by_group.items())
    }


def document_text(document):
    """Canonical serialized form: sorted keys, 2-space indent, final \\n."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_documents(documents, out_dir):
    """Write each group document to its repo-root artifact file."""
    paths = []
    os.makedirs(out_dir, exist_ok=True)
    for group in sorted(documents):
        path = os.path.join(out_dir, GROUP_FILES[group])
        with open(path, "w") as handle:
            handle.write(document_text(documents[group]))
        paths.append(path)
    return paths


def load_document(path):
    """Read one BENCH_*.json back (no validation; see schema module)."""
    with open(path) as handle:
        return json.load(handle)


def load_committed_documents(root):
    """group -> document for every artifact present under ``root``."""
    documents = {}
    for group, filename in sorted(GROUP_FILES.items()):
        path = os.path.join(root, filename)
        if os.path.exists(path):
            documents[group] = load_document(path)
    return documents


def summary_lines(documents):
    """Human one-liners for the CLI: per bench pass/fail and counts."""
    lines = []
    for group in sorted(documents):
        document = documents[group]
        lines.append("group %s (schema v%d): %d benches"
                     % (group, SCHEMA_VERSION, len(document["benches"])))
        for bench in document["benches"]:
            metrics = bench["metrics"]
            failed = [m["metric"] for m in metrics if not m["passed"]]
            status = "ok" if not failed else "FAIL(%s)" % ",".join(failed)
            lines.append("  %-34s %2d metrics  %s"
                         % (bench["bench"], len(metrics), status))
    return lines
