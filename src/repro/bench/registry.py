"""Benchmark registration and discovery.

A benchmark script opts into the orchestrator with one decorator::

    from repro.bench import register

    @register("fig5_frontier_recovery", group="paper_shapes",
              title="Figure 5: frontier-set recovery", quick=True)
    def collect():
        ...measure...
        return [Metric(...), Metric(...)]

The decorated callable runs the measurement (drawing every seed from
:mod:`repro.bench.seeds`) and returns the metric rows; the script stays
runnable standalone under pytest because its test functions share the
same measurement helpers. :func:`discover` imports every
``benchmarks/bench_*.py`` module so the registrations execute; the
global :data:`REGISTRY` then holds the full suite.
"""

import importlib
import os

from repro.bench.seeds import SEEDS


class BenchSpec:
    """One registered benchmark: identity, grouping, and its collector."""

    __slots__ = ("name", "group", "title", "func", "source", "quick")

    def __init__(self, name, group, title, func, source, quick):
        self.name = name
        self.group = group
        self.title = title
        self.func = func
        self.source = source
        self.quick = quick

    @property
    def seeds(self):
        """The pinned seeds this bench draws, from the central table."""
        matches = {}
        for key in sorted(SEEDS):
            bench, _dot, _role = key.partition(".")
            if self.name == bench or self.name.startswith(bench + "_"):
                value = SEEDS[key]
                matches[key] = list(value) if isinstance(value, tuple) \
                    else value
        return matches

    def collect(self):
        """Run the measurement; returns the list of Metric rows."""
        return self.func()


class DuplicateBenchError(ValueError):
    """Two different callables registered under one bench name."""


class Registry:
    """Ordered name -> :class:`BenchSpec` map."""

    def __init__(self):
        self._specs = {}

    def add(self, spec):
        existing = self._specs.get(spec.name)
        if existing is not None and existing.source != spec.source:
            raise DuplicateBenchError(
                "bench %r registered by both %s and %s"
                % (spec.name, existing.source, spec.source)
            )
        # Same source re-imported (pytest + orchestrator in one
        # process): the fresh registration wins, silently.
        self._specs[spec.name] = spec
        return spec

    def get(self, name):
        return self._specs[name]

    def names(self):
        return sorted(self._specs)

    def specs(self, group=None, quick_only=False, names=None):
        """Specs filtered by group(s) / quick flag / explicit names.

        ``group`` accepts one group name or a list of them.
        """
        groups = None
        if group is not None:
            groups = {group} if isinstance(group, str) else set(group)
        selected = []
        for name in self.names():
            spec = self._specs[name]
            if groups is not None and spec.group not in groups:
                continue
            if quick_only and not spec.quick:
                continue
            if names is not None and name not in names:
                continue
            selected.append(spec)
        return selected

    def groups(self):
        return sorted({spec.group for spec in self._specs.values()})

    def __len__(self):
        return len(self._specs)

    def __contains__(self, name):
        return name in self._specs


#: The process-wide registry ``@register`` feeds and the CLI consumes.
REGISTRY = Registry()


def register(name, group, title=None, quick=False, registry=None):
    """Decorator registering a metric collector under ``name``.

    ``group`` selects the output artifact (``BENCH_<group>.json``);
    ``quick`` marks the bench as part of the trimmed CI gate subset.
    Passing an explicit ``registry`` keeps test registries isolated
    from the global one.
    """
    from repro.bench.schema import GROUPS

    if group not in GROUPS:
        raise ValueError("unknown bench group %r (expected one of %s)"
                         % (group, (GROUPS,)))
    target = registry if registry is not None else REGISTRY

    def decorator(func):
        module = getattr(func, "__module__", "") or ""
        source = "benchmarks/%s.py" % module.rsplit(".", 1)[-1] \
            if module.startswith("benchmarks.") else module
        spec = BenchSpec(
            name=name,
            group=group,
            title=title or (func.__doc__ or name).strip().splitlines()[0],
            func=func,
            source=source,
            quick=quick,
        )
        target.add(spec)
        func.bench_spec = spec
        return func

    return decorator


def benchmarks_dir():
    """Locate the repo's ``benchmarks/`` package directory."""
    package = importlib.import_module("benchmarks")
    return os.path.dirname(os.path.abspath(package.__file__))


def discover(registry=None):
    """Import every ``benchmarks/bench_*.py`` so registrations run.

    Returns the populated registry (the global one by default).
    """
    directory = benchmarks_dir()
    for filename in sorted(os.listdir(directory)):
        if filename.startswith("bench_") and filename.endswith(".py"):
            importlib.import_module("benchmarks.%s" % filename[:-3])
    return registry if registry is not None else REGISTRY
