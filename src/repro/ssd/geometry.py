"""SSD geometry: dies, erase blocks, and pages (paper Figure 1).

An SSD is a set of flash dies that operate in parallel; each die is a
column of erase blocks, each erase block a run of pages. Pages are the
minimum read/write unit and erase blocks the minimum erase unit. The
geometry maps byte offsets to (die, erase block, page) so the device
model can serialize operations that contend on the same die.
"""

from dataclasses import dataclass

from repro.units import KIB, MIB


@dataclass(frozen=True)
class SSDGeometry:
    """Physical layout parameters of a simulated SSD.

    Defaults follow Section 2.1: pages of 512–4096 bytes (we use 4 KiB),
    erase blocks of 2–16 MiB (we use 2 MiB), and enough independent dies
    that the drive needs a read queue depth around 32 for peak
    throughput.
    """

    capacity_bytes: int = 256 * MIB
    page_size: int = 4 * KIB
    erase_block_size: int = 2 * MIB
    num_dies: int = 32

    def __post_init__(self):
        if self.page_size <= 0 or self.erase_block_size <= 0:
            raise ValueError("page and erase block sizes must be positive")
        if self.erase_block_size % self.page_size:
            raise ValueError("erase block size must be a multiple of page size")
        if self.capacity_bytes % self.erase_block_size:
            raise ValueError("capacity must be a whole number of erase blocks")
        if self.num_dies <= 0:
            raise ValueError("num_dies must be positive")

    @property
    def pages_per_erase_block(self):
        """Pages in one erase block."""
        return self.erase_block_size // self.page_size

    @property
    def num_erase_blocks(self):
        """Total erase blocks on the device."""
        return self.capacity_bytes // self.erase_block_size

    def check_range(self, offset, nbytes):
        """Validate that [offset, offset+nbytes) lies on the device."""
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length")
        if offset + nbytes > self.capacity_bytes:
            raise ValueError(
                "range [%d, %d) exceeds capacity %d"
                % (offset, offset + nbytes, self.capacity_bytes)
            )

    def erase_block_of(self, offset):
        """Index of the erase block containing ``offset``."""
        return offset // self.erase_block_size

    def die_of(self, offset):
        """Die servicing ``offset``; erase blocks round-robin over dies."""
        return self.erase_block_of(offset) % self.num_dies

    def page_of(self, offset):
        """Device-wide page index containing ``offset``."""
        return offset // self.page_size

    def pages_spanned(self, offset, nbytes):
        """Number of pages touched by the byte range."""
        if nbytes == 0:
            return 0
        first = self.page_of(offset)
        last = self.page_of(offset + nbytes - 1)
        return last - first + 1

    def erase_blocks_spanned(self, offset, nbytes):
        """Erase-block indexes touched by the byte range."""
        if nbytes == 0:
            return []
        first = self.erase_block_of(offset)
        last = self.erase_block_of(offset + nbytes - 1)
        return list(range(first, last + 1))
