"""The shelf "NVRAM" device.

Section 4.1: when Purity launched, true NVRAM was unavailable, so the
shelves carry an extremely high-performance SLC flash part with bounded
latency and a large P/E budget; the paper calls it NVRAM throughout and
so do we. It lives on the shelf (not in a controller) so controllers
stay stateless, and it is dual-ported via the interposers so the
surviving controller can read it after a failover.

The model is an append-only record log with low, bounded append latency
and explicit trim; the commit path (Figure 4) appends fact batches here
and acknowledges the client, while the segment writer later moves the
facts into segios and trims.
"""

from dataclasses import dataclass

from repro.errors import DeviceFailedError, OutOfSpaceError
from repro.units import MIB, MICROSECOND


@dataclass(frozen=True)
class NVRAMTiming:
    """Service-time parameters for the SLC commit device."""

    append_base: float = 15 * MICROSECOND
    append_bandwidth: float = 700 * MIB
    read_base: float = 20 * MICROSECOND


class NVRAMDevice:
    """Append-only low-latency persistent record log."""

    def __init__(self, name, clock, capacity_bytes=8 * MIB, timing=None):
        self.name = name
        self.clock = clock
        self.capacity_bytes = capacity_bytes
        self.timing = timing or NVRAMTiming()
        self.failed = False
        self._records = []  # list of (record_id, payload bytes)
        self._next_record_id = 0
        self._bytes_used = 0
        self._busy_until = 0.0
        self.appends = 0
        self.trims = 0
        #: Torn commits observed over the device's lifetime.
        self.tears = 0
        self._torn_since_repair = False

    def _check_alive(self):
        if self.failed:
            raise DeviceFailedError("NVRAM %s has failed" % self.name)

    @property
    def bytes_used(self):
        """Bytes of live (untrimmed) records."""
        return self._bytes_used

    @property
    def last_record_id(self):
        """Highest record id ever issued (-1 if none)."""
        return self._next_record_id - 1

    @property
    def record_count(self):
        """Number of live records."""
        return len(self._records)

    @property
    def degraded(self):
        """True between a torn commit and the repairing checkpoint.

        The degradation ladder reads this at array construction so a
        controller that boots onto a torn mirror starts in
        ``nvram-degraded`` (write-through) mode.
        """
        return self._torn_since_repair

    def note_tear(self, dropped=0):
        """Record that a torn commit damaged the mirror."""
        self.tears += 1
        self._torn_since_repair = True

    def mark_repaired(self):
        """A checkpoint persisted everything the tear put at risk."""
        self._torn_since_repair = False

    def fail(self):
        """Mark the device failed; contents are lost."""
        self.failed = True
        self._records.clear()
        self._bytes_used = 0

    def append(self, payload):
        """Persist one record; returns (record_id, latency seconds)."""
        self._check_alive()
        nbytes = len(payload)
        if self._bytes_used + nbytes > self.capacity_bytes:
            raise OutOfSpaceError(
                "NVRAM %s full: %d used + %d > %d capacity"
                % (self.name, self._bytes_used, nbytes, self.capacity_bytes)
            )
        now = self.clock.now
        service = self.timing.append_base + nbytes / self.timing.append_bandwidth
        begin = max(now, self._busy_until)
        self._busy_until = begin + service
        record_id = self._next_record_id
        self._next_record_id += 1
        self._records.append((record_id, bytes(payload)))
        self._bytes_used += nbytes
        self.appends += 1
        return record_id, self._busy_until - now

    def scan(self):
        """Return all live records as (record_id, payload), plus latency.

        Used by recovery; the device is small so a full scan is cheap.
        """
        self._check_alive()
        total = self._bytes_used
        latency = self.timing.read_base + total / self.timing.append_bandwidth
        return list(self._records), latency

    def drop_tail(self, from_record_id):
        """Discard records with id >= ``from_record_id`` (fault injection).

        Models a torn commit: a crash while the tail records were being
        appended loses them before they were ever acknowledged. Returns
        the number of records dropped.
        """
        kept = []
        dropped = 0
        for record_id, payload in self._records:
            if record_id >= from_record_id:
                self._bytes_used -= len(payload)
                dropped += 1
            else:
                kept.append((record_id, payload))
        self._records = kept
        return dropped

    def trim(self, upto_record_id):
        """Drop records with id <= ``upto_record_id`` (segment writer done)."""
        self._check_alive()
        kept = []
        freed = 0
        for record_id, payload in self._records:
            if record_id <= upto_record_id:
                freed += len(payload)
            else:
                kept.append((record_id, payload))
        self._records = kept
        self._bytes_used -= freed
        self.trims += 1
        return freed
