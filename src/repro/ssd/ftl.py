"""Flash-translation-layer behaviour model.

Sections 2.1 and 3.3 of the paper describe FTLs as the source of the
performance quirks Purity designs around: random writes trigger internal
garbage collection (write amplification and multi-millisecond stalls),
while large sequential writes keep the FTL on its fast path. This model
tracks the sequentiality of the host write stream and charges write
amplification and stall probability accordingly.

The model is deliberately behavioural, not mechanistic: it produces the
*incentives* the paper documents (sequential writes good, random writes
harmful, stalls visible to concurrent readers) without simulating a
vendor mapping table.
"""

from repro.units import MILLISECOND


class FlashTranslationLayer:
    """Tracks host write sequentiality and derives WA and stall risk.

    ``sequentiality`` is an exponentially weighted score in [0, 1]; 1.0
    means every write continued exactly where the previous one in its
    region ended. Write amplification interpolates between
    ``min_write_amp`` (fully sequential) and ``max_write_amp`` (fully
    random). The probability that an operation incurs an FTL garbage
    collection stall grows with write amplification.
    """

    #: Regions used to detect per-stream sequential writes; Purity's
    #: segments land in different regions but are sequential within one.
    REGION_BYTES = 8 * 1024 * 1024

    def __init__(
        self,
        geometry,
        min_write_amp=1.0,
        max_write_amp=4.0,
        stall_probability_at_max=0.08,
        stall_time=8 * MILLISECOND,
        smoothing=0.05,
    ):
        self.geometry = geometry
        self.min_write_amp = float(min_write_amp)
        self.max_write_amp = float(max_write_amp)
        self.stall_probability_at_max = float(stall_probability_at_max)
        self.stall_time = float(stall_time)
        self.smoothing = float(smoothing)
        self.sequentiality = 1.0
        self._region_cursors = {}
        self.host_bytes_written = 0
        self.flash_bytes_written = 0
        self.gc_stalls = 0

    def note_write(self, offset, nbytes):
        """Record a host write; returns the flash bytes actually programmed.

        Updates the sequentiality score: a write that continues its
        region's cursor counts as sequential, anything else as random.
        """
        region = offset // self.REGION_BYTES
        cursor = self._region_cursors.get(region)
        is_sequential = cursor is None or cursor == offset
        self._region_cursors[region] = offset + nbytes
        if len(self._region_cursors) > 1024:
            # Bound memory: forget the oldest half of the cursor map.
            for key in list(self._region_cursors)[:512]:
                del self._region_cursors[key]
        sample = 1.0 if is_sequential else 0.0
        self.sequentiality += self.smoothing * (sample - self.sequentiality)
        amplification = self.write_amplification()
        flash_bytes = int(nbytes * amplification)
        self.host_bytes_written += nbytes
        self.flash_bytes_written += flash_bytes
        return flash_bytes

    def note_discard(self, offset, nbytes):
        """Record a TRIM; frees the region cursor so reuse is sequential."""
        first = offset // self.REGION_BYTES
        last = (offset + max(nbytes, 1) - 1) // self.REGION_BYTES
        for region in range(first, last + 1):
            self._region_cursors.pop(region, None)

    def write_amplification(self):
        """Current write amplification factor given sequentiality."""
        span = self.max_write_amp - self.min_write_amp
        return self.min_write_amp + span * (1.0 - self.sequentiality)

    def stall_probability(self):
        """Chance that an operation hits an FTL GC stall right now."""
        span = self.max_write_amp - self.min_write_amp
        if span <= 0:
            return 0.0
        fraction = (self.write_amplification() - self.min_write_amp) / span
        return self.stall_probability_at_max * fraction

    def maybe_stall(self, stream):
        """Sample a GC stall; returns stall seconds (0.0 for no stall)."""
        if stream.random() < self.stall_probability():
            self.gc_stalls += 1
            return self.stall_time
        return 0.0
