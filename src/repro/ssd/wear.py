"""Program/erase wear tracking and retention model.

Section 2.1: consumer MLC supports roughly 3000–5000 P/E cycles.
Section 5.1: worn flash does not fail catastrophically — it "simply
begins losing pages", because old cells leak charge faster, and the
rated endurance assumes a year of unpowered retention. Data rewritten
frequently (as Purity's scrubber ensures) stays readable far past the
rated cycle count.

The model captures exactly that: each erase block has a P/E count; a
page read fails with a probability that grows with both the block's
wear and the time since the page was last programmed.
"""


class WearTracker:
    """Per-erase-block wear state for one SSD."""

    #: Retention the P/E rating assumes (Section 5.1: one year, in
    #: simulated seconds).
    RATED_RETENTION_SECONDS = 365.0 * 24 * 3600

    def __init__(self, geometry, rated_pe_cycles=3000):
        self.geometry = geometry
        self.rated_pe_cycles = int(rated_pe_cycles)
        self._pe_counts = {}
        self._program_times = {}
        self.total_erases = 0

    def pe_count(self, erase_block):
        """P/E cycles consumed by one erase block."""
        return self._pe_counts.get(erase_block, 0)

    def max_pe_count(self):
        """Highest P/E count across the device (0 if never erased)."""
        return max(self._pe_counts.values(), default=0)

    def mean_pe_count(self):
        """Mean P/E count across all erase blocks, counting untouched ones."""
        total = sum(self._pe_counts.values())
        return total / self.geometry.num_erase_blocks

    def note_erase(self, erase_block, now):
        """Record an erase of ``erase_block`` at simulated time ``now``."""
        self._pe_counts[erase_block] = self._pe_counts.get(erase_block, 0) + 1
        self._program_times.pop(erase_block, None)
        self.total_erases += 1

    def note_program(self, erase_block, now):
        """Record that data was programmed into ``erase_block`` at ``now``."""
        self._program_times[erase_block] = now

    def wear_fraction(self, erase_block):
        """Wear of a block relative to its rating (can exceed 1.0)."""
        return self.pe_count(erase_block) / self.rated_pe_cycles

    def page_loss_probability(self, erase_block, now):
        """Probability a page read from this block is uncorrectable.

        Zero while the block is inside its rated wear. Past the rating,
        the probability scales with excess wear and with the fraction of
        rated retention that has elapsed since the block was programmed,
        reproducing the paper's observation that frequent rewriting
        (scrubbing) keeps worn flash healthy.
        """
        wear = self.wear_fraction(erase_block)
        if wear <= 1.0:
            return 0.0
        programmed_at = self._program_times.get(erase_block)
        if programmed_at is None:
            return 0.0
        age = max(0.0, now - programmed_at)
        retention_fraction = min(1.0, age / self.RATED_RETENTION_SECONDS)
        excess = wear - 1.0
        return min(0.5, excess * retention_fraction)
