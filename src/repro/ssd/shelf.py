"""Drive shelves (paper Figure 2).

A shelf holds 11–24 MLC SSDs behind SAS interposers plus the NVRAM
devices. The interposers dual-port every device: both controllers can
reach them, so when a controller fails the survivor immediately owns
the drives. In the simulation this simply means both controller objects
hold references to the same shelf.
"""

from repro.ssd.device import SimulatedSSD
from repro.ssd.nvram import NVRAMDevice


class Shelf:
    """A dual-ported enclosure of SSDs and NVRAM devices."""

    MIN_DRIVES = 11
    MAX_DRIVES = 24

    def __init__(self, name, clock, stream, num_drives=11, geometry=None,
                 timing=None, rated_pe_cycles=3000, nvram_capacity=None):
        if not self.MIN_DRIVES <= num_drives <= self.MAX_DRIVES:
            raise ValueError(
                "shelves hold %d-%d drives, got %d"
                % (self.MIN_DRIVES, self.MAX_DRIVES, num_drives)
            )
        self.name = name
        self.clock = clock
        self.drives = []
        for index in range(num_drives):
            drive_name = "%s/ssd%02d" % (name, index)
            drive = SimulatedSSD(
                drive_name,
                clock,
                stream.fork(drive_name),
                geometry=geometry,
                timing=timing,
                rated_pe_cycles=rated_pe_cycles,
            )
            self.drives.append(drive)
        nvram_kwargs = {}
        if nvram_capacity is not None:
            nvram_kwargs["capacity_bytes"] = nvram_capacity
        self.nvram = NVRAMDevice("%s/nvram" % name, clock, **nvram_kwargs)

    @property
    def alive_drives(self):
        """Drives that have not failed."""
        return [drive for drive in self.drives if not drive.failed]

    @property
    def raw_capacity_bytes(self):
        """Sum of raw capacity across alive drives."""
        return sum(drive.capacity_bytes for drive in self.alive_drives)

    def drive_by_name(self, name):
        """Find a drive by its full name; raises KeyError if absent."""
        for drive in self.drives:
            if drive.name == name:
                return drive
        raise KeyError(name)

    def replace_drive(self, index, stream):
        """Swap a (typically failed) drive for a fresh one; returns it.

        Models the four-hour-SLA hardware replacement from Section 5.1.
        """
        old = self.drives[index]
        replacement = SimulatedSSD(
            old.name + "'",
            self.clock,
            stream.fork(old.name + "-replacement"),
            geometry=old.geometry,
            timing=old.timing,
            rated_pe_cycles=old.wear.rated_pe_cycles,
        )
        self.drives[index] = replacement
        return replacement
