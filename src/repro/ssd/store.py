"""Sparse byte store backing the simulated devices.

Stores written extents as (start, bytearray) runs kept sorted by start
offset. Reads assemble data across runs, zero-filling gaps (flash reads
of never-written pages return deterministic data in practice; zeros are
a faithful stand-in). Overlapping writes split or truncate existing
runs, and discard punches holes.

Purity's own write pattern is append-only within 8 MiB allocation
units, so runs stay few and large; the store nevertheless handles
arbitrary overlap so tests and baselines can use it too.
"""

import bisect


class SparseByteStore:
    """A sparse, writable byte address space."""

    def __init__(self):
        self._starts = []  # sorted run start offsets
        self._runs = {}  # start offset -> bytearray

    def __len__(self):
        """Total bytes currently stored (excludes holes)."""
        return sum(len(run) for run in self._runs.values())

    @property
    def run_count(self):
        """Number of distinct stored runs (fragmentation indicator)."""
        return len(self._starts)

    def write(self, offset, data):
        """Write ``data`` at ``offset``, replacing anything beneath it."""
        if offset < 0:
            raise ValueError("negative offset")
        if not data:
            return
        self.discard(offset, len(data))
        # Coalesce with a run that ends exactly where this write begins.
        index = bisect.bisect_right(self._starts, offset) - 1
        if index >= 0:
            prev_start = self._starts[index]
            prev_run = self._runs[prev_start]
            if prev_start + len(prev_run) == offset:
                prev_run.extend(data)
                self._maybe_merge_next(index)
                return
        bisect.insort(self._starts, offset)
        self._runs[offset] = bytearray(data)
        index = self._starts.index(offset)
        self._maybe_merge_next(index)

    def _maybe_merge_next(self, index):
        """Merge run at ``index`` with its successor if they now abut."""
        if index + 1 >= len(self._starts):
            return
        start = self._starts[index]
        run = self._runs[start]
        next_start = self._starts[index + 1]
        if start + len(run) == next_start:
            run.extend(self._runs.pop(next_start))
            del self._starts[index + 1]

    def read(self, offset, nbytes):
        """Read ``nbytes`` at ``offset``; holes read as zero bytes."""
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length")
        if nbytes == 0:
            return b""
        out = bytearray(nbytes)
        end = offset + nbytes
        index = bisect.bisect_right(self._starts, offset) - 1
        if index < 0:
            index = 0
        while index < len(self._starts):
            start = self._starts[index]
            if start >= end:
                break
            run = self._runs[start]
            run_end = start + len(run)
            if run_end <= offset:
                index += 1
                continue
            copy_from = max(start, offset)
            copy_to = min(run_end, end)
            out[copy_from - offset : copy_to - offset] = run[
                copy_from - start : copy_to - start
            ]
            index += 1
        return bytes(out)

    def discard(self, offset, nbytes):
        """Punch a hole over [offset, offset+nbytes)."""
        if offset < 0 or nbytes < 0:
            raise ValueError("negative offset or length")
        if nbytes == 0:
            return
        end = offset + nbytes
        index = bisect.bisect_right(self._starts, offset) - 1
        if index < 0:
            index = 0
        while index < len(self._starts):
            start = self._starts[index]
            if start >= end:
                break
            run = self._runs[start]
            run_end = start + len(run)
            if run_end <= offset:
                index += 1
                continue
            # The run overlaps the hole; remove it and re-add survivors.
            del self._starts[index]
            del self._runs[start]
            if start < offset:
                head = run[: offset - start]
                bisect.insort(self._starts, start)
                self._runs[start] = bytearray(head)
                index = self._starts.index(start) + 1
            if run_end > end:
                tail = run[end - start :]
                bisect.insort(self._starts, end)
                self._runs[end] = bytearray(tail)
                break

    def clear(self):
        """Drop all stored data."""
        self._starts.clear()
        self._runs.clear()

    def extents(self):
        """Yield (start, length) for each stored run, in offset order."""
        for start in self._starts:
            yield start, len(self._runs[start])
