"""Simulated solid-state-disk substrate.

The paper's appliance is built from consumer MLC SATA SSDs whose
behavioural quirks (random-write penalties, erase-induced read stalls,
finite program/erase endurance) drive most of Purity's design. This
package reproduces those behaviours: :class:`SimulatedSSD` stores real
bytes and charges simulated time for every operation, with an
:class:`~repro.ssd.ftl.FlashTranslationLayer` model that punishes random
writes and a :class:`~repro.ssd.wear.WearTracker` that ages erase blocks.
"""

from repro.ssd.geometry import SSDGeometry
from repro.ssd.store import SparseByteStore
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.wear import WearTracker
from repro.ssd.device import SimulatedSSD
from repro.ssd.nvram import NVRAMDevice
from repro.ssd.shelf import Shelf

__all__ = [
    "SSDGeometry",
    "SparseByteStore",
    "FlashTranslationLayer",
    "WearTracker",
    "SimulatedSSD",
    "NVRAMDevice",
    "Shelf",
]
