"""The simulated SSD: real bytes, simulated time.

The device stores actual data (so the storage engine above it is
verified end-to-end) and charges simulated latency for every operation.
The timing model reproduces the behaviours the paper builds around:

* per-die parallelism — concurrent operations to different dies overlap,
  so peak throughput needs a deep queue (Section 2.1);
* program/erase interference — reads landing on a device that is busy
  writing see multi-millisecond stalls, motivating Purity's
  read-around-writes scheduler (Section 4.4);
* random-write penalties via the FTL model (Section 3.3);
* wear-dependent page loss via :class:`~repro.ssd.wear.WearTracker`
  (Section 5.1), surfaced as ``corrupted`` reads the erasure code above
  must repair.
"""

from dataclasses import dataclass, field

from repro.errors import DeviceFailedError
from repro.sim.distributions import LogNormal
from repro.ssd.ftl import FlashTranslationLayer
from repro.ssd.geometry import SSDGeometry
from repro.ssd.store import SparseByteStore
from repro.ssd.wear import WearTracker
from repro.units import MIB, MICROSECOND


@dataclass(frozen=True)
class SSDTiming:
    """Service-time parameters for a consumer MLC SATA SSD.

    Values are representative of 2014-era drives: ~90 µs page reads,
    ~500 MB/s reads and ~350 MB/s writes over a ~550 MB/s SATA link,
    erase ~3 ms, and reads that collide with an in-progress program
    stalling by a couple of milliseconds.
    """

    read_base: float = 90 * MICROSECOND
    read_sigma: float = 0.20
    read_bandwidth: float = 500 * MIB
    program_base: float = 800 * MICROSECOND
    write_bandwidth: float = 350 * MIB
    bus_bandwidth: float = 550 * MIB
    erase_latency: float = 3000 * MICROSECOND
    write_interference_stall: float = 2500 * MICROSECOND

    def read_latency_distribution(self):
        """Distribution of the fixed (non-transfer) part of a page read."""
        return LogNormal(self.read_base, self.read_sigma)


@dataclass
class ReadResult:
    """Outcome of an SSD read: payload, charged latency, corruption flag."""

    data: bytes
    latency: float
    corrupted: bool = False
    stalled: bool = False


@dataclass
class DeviceCounters:
    """Operation counters for telemetry and tests."""

    reads: int = 0
    writes: int = 0
    discards: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    corrupted_reads: int = 0
    stalled_reads: int = 0
    extra: dict = field(default_factory=dict)


class SimulatedSSD:
    """One simulated flash drive."""

    def __init__(
        self,
        name,
        clock,
        stream,
        geometry=None,
        timing=None,
        rated_pe_cycles=3000,
    ):
        self.name = name
        self.clock = clock
        self.stream = stream
        self.geometry = geometry or SSDGeometry()
        self.timing = timing or SSDTiming()
        self.store = SparseByteStore()
        self.ftl = FlashTranslationLayer(self.geometry)
        self.wear = WearTracker(self.geometry, rated_pe_cycles)
        self.counters = DeviceCounters()
        self.failed = False
        #: Optional fault-injection hook (see :mod:`repro.faults`):
        #: consulted inside read/write/discard so injected faults land
        #: in the device timeline, not around it.
        self.fault_model = None
        #: Observability handle (see :mod:`repro.obs`); wired by the
        #: array so harnesses can sample queue depth into a series.
        self.obs = None
        self._read_latency = self.timing.read_latency_distribution()
        self._die_busy_until = {}  # per-die: programs/erases (FIFO)
        self._die_reads_until = {}  # per-die: priority reads (FIFO)
        self._die_windows = {}  # per-die (begin, end) program windows
        self._writing_windows = []  # device-wide program windows
        self._bus_busy_until = 0.0

    @property
    def capacity_bytes(self):
        """Raw device capacity."""
        return self.geometry.capacity_bytes

    def fail(self):
        """Mark the drive failed; all subsequent operations raise."""
        self.failed = True
        self.store.clear()

    def _check_alive(self):
        if self.failed:
            raise DeviceFailedError("SSD %s has failed" % self.name)

    def busy_writing(self, now=None):
        """True if a segment write is in flight (Section 4.4 scheduler cue).

        Staggered flushes create disjoint program windows; the device is
        busy only while a window is open.
        """
        if now is None:
            now = self.clock.now
        self._writing_windows = [
            (start, end) for start, end in self._writing_windows if end > now
        ]
        return any(start <= now < end for start, end in self._writing_windows)

    def estimated_read_wait(self, offset, now=None):
        """Predicted queueing/stall delay for a read at ``offset``.

        The hedged-read policy consults this before issuing a direct
        read, so it must be *pure*: same-seed traces with hedging on
        and off have to stay byte-identical when no hedge fires. It
        therefore recomputes the busy-window overlap without the cache
        pruning :meth:`busy_writing` performs, never touches the RNG
        stream, and asks the fault model for a stall *preview* rather
        than firing :meth:`on_read` side effects.
        """
        if now is None:
            now = self.clock.now
        wait = 0.0
        if any(start <= now < end for start, end in self._writing_windows):
            wait += self.timing.write_interference_stall
        die = self.geometry.die_of(offset)
        started_until = max(
            (
                end
                for begin, end in self._die_windows.get(die, ())
                if begin <= now
            ),
            default=0.0,
        )
        queued = max(self._die_reads_until.get(die, 0.0), started_until)
        if queued > now:
            wait += queued - now
        if self._bus_busy_until > now:
            wait += self._bus_busy_until - now
        if self.fault_model is not None:
            peek = getattr(self.fault_model, "peek_stall", None)
            if peek is not None:
                wait += peek(self, now)
        return wait

    def queue_depth(self, now=None):
        """Number of dies with work scheduled past ``now``.

        A cheap instantaneous depth proxy for the observability series:
        each die whose program/erase queue or read queue extends into
        the future counts as one outstanding unit of work.
        """
        if now is None:
            now = self.clock.now
        depth = 0
        for until in self._die_busy_until.values():
            if until > now:
                depth += 1
        for until in self._die_reads_until.values():
            if until > now:
                depth += 1
        return depth

    def _note_writing_window(self, start, end):
        self._writing_windows.append((start, end))
        if len(self._writing_windows) > 64:
            del self._writing_windows[:32]

    def _charge_bus(self, start, nbytes):
        """Serialize transfer over the SATA link; returns transfer end."""
        transfer = nbytes / self.timing.bus_bandwidth
        begin = max(start, self._bus_busy_until)
        self._bus_busy_until = begin + transfer
        return self._bus_busy_until

    def _die_dispatch(self, offset, nbytes, service, start_at=None,
                      priority=False):
        """Queue a ``service``-second op on the die owning ``offset``.

        Returns (begin, end). Operations on the same die serialize;
        different dies run in parallel. ``start_at`` defers the
        operation's earliest start (staggered segment flushes).

        ``priority=True`` models NCQ-style read priority: the op waits
        only for work that has *started*, slotting ahead of background
        programs still scheduled for the future. Reads that do land
        inside a started program window pay the interference stall —
        exactly the hazard the Section 4.4 scheduler reconstructs
        around.
        """
        die = self.geometry.die_of(offset)
        earliest = self.clock.now if start_at is None else max(
            self.clock.now, start_at
        )
        if priority:
            started_until = max(
                (
                    end
                    for begin, end in self._die_windows.get(die, ())
                    if begin <= earliest
                ),
                default=0.0,
            )
            begin = max(earliest, self._die_reads_until.get(die, 0.0),
                        started_until)
            end = begin + service
            self._die_reads_until[die] = end
            return begin, end
        begin = max(earliest, self._die_busy_until.get(die, 0.0))
        end = begin + service
        self._die_busy_until[die] = end
        windows = self._die_windows.setdefault(die, [])
        windows.append((begin, end))
        if len(windows) > 32:
            del windows[:16]
        return begin, end

    def read(self, offset, nbytes):
        """Read bytes; returns a :class:`ReadResult` with charged latency."""
        self._check_alive()
        self.geometry.check_range(offset, nbytes)
        now = self.clock.now
        service = self._read_latency.sample(self.stream)
        service += self.ftl.maybe_stall(self.stream)
        stalled = False
        if self.busy_writing(now):
            service += self.timing.write_interference_stall
            stalled = True
        _begin, flash_done = self._die_dispatch(
            offset, nbytes, service, priority=True
        )
        done = self._charge_bus(flash_done, nbytes)
        latency = done - now
        corrupted = self._sample_corruption(offset, nbytes, now)
        if self.fault_model is not None:
            forced_corrupt, extra_stall = self.fault_model.on_read(
                self, offset, nbytes, now
            )
            corrupted = corrupted or forced_corrupt
            if extra_stall > 0.0:
                latency += extra_stall
                stalled = True
        data = self.store.read(offset, nbytes)
        self.counters.reads += 1
        self.counters.bytes_read += nbytes
        if corrupted:
            self.counters.corrupted_reads += 1
        if stalled:
            self.counters.stalled_reads += 1
        return ReadResult(data=data, latency=latency, corrupted=corrupted, stalled=stalled)

    def _sample_corruption(self, offset, nbytes, now):
        for erase_block in self.geometry.erase_blocks_spanned(offset, nbytes):
            probability = self.wear.page_loss_probability(erase_block, now)
            if probability > 0.0 and self.stream.random() < probability:
                return True
        return False

    def write(self, offset, data, start_at=None):
        """Program bytes; returns charged latency in seconds.

        ``start_at`` optionally defers the program's earliest start
        (staggered segment flushes); the returned latency is measured
        from now regardless.
        """
        self._check_alive()
        nbytes = len(data)
        self.geometry.check_range(offset, nbytes)
        now = self.clock.now
        flash_bytes = self.ftl.note_write(offset, nbytes)
        service = self.timing.program_base + flash_bytes / self.timing.write_bandwidth
        service += self.ftl.maybe_stall(self.stream)
        begin, flash_done = self._die_dispatch(
            offset, nbytes, service, start_at=start_at
        )
        done = self._charge_bus(flash_done, nbytes)
        self._note_writing_window(begin, done)
        for erase_block in self.geometry.erase_blocks_spanned(offset, nbytes):
            self.wear.note_program(erase_block, now)
        if self.fault_model is not None:
            self.fault_model.on_write(self, offset, nbytes)
        self.store.write(offset, data)
        self.counters.writes += 1
        self.counters.bytes_written += nbytes
        return done - now

    def discard(self, offset, nbytes):
        """TRIM a range, erasing the spanned erase blocks.

        Purity only discards whole allocation units, which are erase
        block multiples, so the whole spanned range is erased.
        """
        self._check_alive()
        self.geometry.check_range(offset, nbytes)
        now = self.clock.now
        blocks = self.geometry.erase_blocks_spanned(offset, nbytes)
        service = self.timing.erase_latency * max(1, len(blocks))
        begin, done = self._die_dispatch(offset, max(nbytes, 1), service)
        self._note_writing_window(begin, done)
        for erase_block in blocks:
            self.wear.note_erase(erase_block, now)
        if self.fault_model is not None:
            self.fault_model.on_discard(self, offset, nbytes)
        self.ftl.note_discard(offset, nbytes)
        self.store.discard(offset, nbytes)
        self.counters.discards += 1
        return done - now

    def __repr__(self):
        state = "FAILED" if self.failed else "ok"
        return "SimulatedSSD(%s, %d bytes, %s)" % (
            self.name,
            self.geometry.capacity_bytes,
            state,
        )
