"""Integer range sets with coalescing.

Section 4.10: elide records over dense, monotonically increasing keys
are encoded as ranges and contiguous ranges are merged, so the elide
table "collapses rapidly" instead of growing without bound. This module
provides that structure: a sorted set of disjoint, non-adjacent
inclusive integer ranges.
"""

import bisect


class IntRangeSet:
    """Sorted disjoint inclusive integer ranges with automatic merging."""

    def __init__(self, ranges=()):
        self._los = []  # sorted range starts
        self._his = []  # parallel range ends (inclusive)
        for lo, hi in ranges:
            self.add(lo, hi)

    def __len__(self):
        """Number of disjoint ranges (the elide-table record count)."""
        return len(self._los)

    def __iter__(self):
        """Yield (lo, hi) pairs in ascending order."""
        return iter(zip(self._los, self._his))

    def __eq__(self, other):
        if not isinstance(other, IntRangeSet):
            return NotImplemented
        return list(self) == list(other)

    def add(self, lo, hi):
        """Insert [lo, hi], merging with overlapping or adjacent ranges."""
        if lo > hi:
            raise ValueError("empty range [%d, %d]" % (lo, hi))
        # Find the window of existing ranges that touch [lo-1, hi+1].
        left = bisect.bisect_left(self._his, lo - 1)
        right = bisect.bisect_right(self._los, hi + 1)
        if left < right:
            lo = min(lo, self._los[left])
            hi = max(hi, self._his[right - 1])
            del self._los[left:right]
            del self._his[left:right]
        self._los.insert(left, lo)
        self._his.insert(left, hi)

    def contains(self, value):
        """True if ``value`` falls inside any range."""
        index = bisect.bisect_right(self._los, value) - 1
        return index >= 0 and value <= self._his[index]

    def covered_count(self):
        """Total integers covered by all ranges."""
        return sum(hi - lo + 1 for lo, hi in self)

    def __repr__(self):
        parts = ", ".join("[%d,%d]" % pair for pair in self)
        return "IntRangeSet(%s)" % parts
