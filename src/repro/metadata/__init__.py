"""Compressed metadata encodings (paper Section 4.9).

Purity stores metadata in column-store-style compressed pages: each
page carries a dictionary header of per-field bases and bit widths, and
tuples are fixed-width bit strings of offsets from those bases. Pages
can be scanned for a value *without decompressing* by comparing bit
patterns at fixed strides. Range encoding bounds the size of elide
tables.
"""

from repro.metadata.bitpack import BitReader, BitWriter
from repro.metadata.dictpage import DictionaryPage, FieldDictionary
from repro.metadata.rangecode import IntRangeSet

__all__ = [
    "BitReader",
    "BitWriter",
    "DictionaryPage",
    "FieldDictionary",
    "IntRangeSet",
]
