"""Bit-granular packing for compressed metadata pages.

Section 4.9's page format stores every tuple as a fixed number of bits,
so fields need sub-byte widths. :class:`BitWriter` appends fixed-width
unsigned integers into a byte buffer; :class:`BitReader` reads them
back, including random access at arbitrary bit offsets (the basis of
scanning pages without decompressing them).

Bits are packed most-significant-first within each byte, so the bit
pattern of a page is a straightforward left-to-right concatenation.
"""


class BitWriter:
    """Append-only bit stream writer."""

    def __init__(self):
        self._buffer = bytearray()
        self._accumulator = 0
        self._pending_bits = 0

    @property
    def bit_length(self):
        """Total bits written so far."""
        return len(self._buffer) * 8 + self._pending_bits

    def write(self, value, width):
        """Append ``value`` as an unsigned ``width``-bit integer."""
        if width < 0:
            raise ValueError("negative width")
        if width == 0:
            if value != 0:
                raise ValueError("cannot store %d in zero bits" % value)
            return
        if value < 0 or value >> width:
            raise ValueError("value %d does not fit in %d bits" % (value, width))
        self._accumulator = (self._accumulator << width) | value
        self._pending_bits += width
        while self._pending_bits >= 8:
            self._pending_bits -= 8
            self._buffer.append((self._accumulator >> self._pending_bits) & 0xFF)
        self._accumulator &= (1 << self._pending_bits) - 1

    def getvalue(self):
        """The packed bytes, zero-padded to a whole byte."""
        out = bytearray(self._buffer)
        if self._pending_bits:
            out.append((self._accumulator << (8 - self._pending_bits)) & 0xFF)
        return bytes(out)


class BitReader:
    """Random-access bit stream reader over packed bytes."""

    def __init__(self, data):
        self._data = data
        self._bit_position = 0

    @property
    def bit_position(self):
        """Current cursor, in bits from the start."""
        return self._bit_position

    def seek(self, bit_offset):
        """Move the cursor to an absolute bit offset."""
        if bit_offset < 0 or bit_offset > len(self._data) * 8:
            raise ValueError("bit offset %d out of range" % bit_offset)
        self._bit_position = bit_offset

    def read(self, width):
        """Read an unsigned ``width``-bit integer at the cursor."""
        if width < 0:
            raise ValueError("negative width")
        if width == 0:
            return 0
        end = self._bit_position + width
        if end > len(self._data) * 8:
            raise ValueError("read past end of bit stream")
        value = 0
        position = self._bit_position
        remaining = width
        while remaining:
            byte_index, bit_index = divmod(position, 8)
            take = min(8 - bit_index, remaining)
            chunk = self._data[byte_index]
            chunk >>= 8 - bit_index - take
            chunk &= (1 << take) - 1
            value = (value << take) | chunk
            position += take
            remaining -= take
        self._bit_position = end
        return value

    def read_at(self, bit_offset, width):
        """Read ``width`` bits at ``bit_offset`` without moving the cursor."""
        saved = self._bit_position
        try:
            self.seek(bit_offset)
            return self.read(width)
        finally:
            self._bit_position = saved
