"""Dictionary-compressed metadata pages (paper Section 4.9).

Each page has a dictionary header with, per tuple field, a list of
bases ``b0..b(B-1)`` and an offset width ``W``. A field value
``v = b_x + o`` is stored as the pair ``(x, o)`` in ``ceil(lg B) + W``
bits; every tuple on the page therefore occupies the same number of
bits. Fields whose value never varies cost zero bits ("extra fields
take up no space"), and a page can be scanned for a value by comparing
the compressed bit pattern at a fixed stride, without decompressing.
"""


from repro.errors import EncodingError
from repro.metadata.bitpack import BitReader, BitWriter
from repro.pyramid.tuples import decode_value, encode_value


def _index_width(base_count):
    """ceil(lg B) — bits needed to select one of ``base_count`` bases."""
    if base_count <= 1:
        return 0
    return (base_count - 1).bit_length()


class FieldDictionary:
    """Base/width dictionary for one tuple field."""

    def __init__(self, bases, offset_width):
        if not bases:
            raise EncodingError("a field dictionary needs at least one base")
        if sorted(bases) != list(bases):
            raise EncodingError("bases must be sorted")
        self.bases = list(bases)
        self.offset_width = offset_width

    @property
    def bits_per_value(self):
        """Bits one field value occupies on the page."""
        return _index_width(len(self.bases)) + self.offset_width

    @classmethod
    def build(cls, values, max_width=32):
        """Choose bases and width minimizing total bits for ``values``.

        For each candidate width, a greedy pass over the sorted unique
        values determines how many bases are needed (a new base starts
        whenever the offset would overflow); the width with the lowest
        per-value cost wins. Ties prefer the narrower width, so a
        constant column costs zero bits.
        """
        unique = sorted(set(values))
        if not unique:
            raise EncodingError("cannot build a dictionary for no values")
        count = len(values)
        base_header_bits = 64  # each base costs ~8 bytes in the page header
        best = None
        for width in range(0, max_width + 1):
            span = 1 << width
            bases = [unique[0]]
            for value in unique[1:]:
                if value - bases[-1] >= span:
                    bases.append(value)
            per_value = _index_width(len(bases)) + width
            cost = count * per_value + len(bases) * base_header_bits
            if best is None or cost < best[0]:
                best = (cost, bases, width)
            if len(bases) == 1:
                break  # wider widths cannot do better than one base
        _cost, bases, width = best
        return cls(bases, width)

    def encode_one(self, value):
        """Map a value to its unique (base index, offset) pair."""
        import bisect

        index = bisect.bisect_right(self.bases, value) - 1
        if index < 0:
            raise EncodingError("value %d below smallest base" % value)
        offset = value - self.bases[index]
        if offset >= (1 << self.offset_width):
            raise EncodingError(
                "value %d not representable (offset %d, width %d)"
                % (value, offset, self.offset_width)
            )
        return index, offset

    def decode_one(self, index, offset):
        """Map (base index, offset) back to the value."""
        return self.bases[index] + offset

    def write_value(self, writer, value):
        """Append one encoded value to a bit stream."""
        index, offset = self.encode_one(value)
        writer.write(index, _index_width(len(self.bases)))
        writer.write(offset, self.offset_width)

    def read_value(self, reader):
        """Read one value from a bit stream."""
        index = reader.read(_index_width(len(self.bases)))
        offset = reader.read(self.offset_width)
        return self.decode_one(index, offset)

    def bit_pattern(self, value):
        """The exact on-page bit pattern of ``value`` (as an int)."""
        index, offset = self.encode_one(value)
        return (index << self.offset_width) | offset

    def read_value_at(self, reader, bit_offset):
        """Decode this field's value at an absolute bit offset."""
        saved = reader.bit_position
        try:
            reader.seek(bit_offset)
            return self.read_value(reader)
        finally:
            reader.seek(saved)


class DictionaryPage:
    """A page of fixed-arity integer tuples in compressed form."""

    def __init__(self, dictionaries, packed_bits, row_count):
        self.dictionaries = dictionaries
        self.packed_bits = packed_bits
        self.row_count = row_count

    @classmethod
    def build(cls, rows):
        """Compress a list of equal-arity integer tuples into a page."""
        if not rows:
            raise EncodingError("cannot build an empty page")
        arity = len(rows[0])
        if any(len(row) != arity for row in rows):
            raise EncodingError("all rows must have the same arity")
        columns = list(zip(*rows))
        dictionaries = [FieldDictionary.build(column) for column in columns]
        writer = BitWriter()
        for row in rows:
            for dictionary, value in zip(dictionaries, row):
                dictionary.write_value(writer, value)
        return cls(dictionaries, writer.getvalue(), len(rows))

    @property
    def bits_per_row(self):
        """Fixed bit width of each tuple on the page."""
        return sum(d.bits_per_value for d in self.dictionaries)

    def field_bit_offset(self, field):
        """Bit offset of ``field`` within each row."""
        return sum(d.bits_per_value for d in self.dictionaries[:field])

    def size_bytes(self):
        """Approximate on-disk page size: header plus packed tuples."""
        return len(self.to_bytes())

    def row(self, index):
        """Decode one tuple."""
        if not 0 <= index < self.row_count:
            raise IndexError(index)
        reader = BitReader(self.packed_bits)
        reader.seek(index * self.bits_per_row)
        return tuple(d.read_value(reader) for d in self.dictionaries)

    def decode_all(self):
        """Decode every tuple on the page."""
        reader = BitReader(self.packed_bits)
        rows = []
        for _ in range(self.row_count):
            rows.append(tuple(d.read_value(reader) for d in self.dictionaries))
        return rows

    def scan_equal(self, field, value):
        """Row indexes where ``field == value``, without decompressing.

        Computes the compressed bit pattern for ``value`` once, then
        compares the raw bits of that field at a fixed stride — the
        Section 4.9 trick. Values not representable on this page match
        nothing.
        """
        dictionary = self.dictionaries[field]
        try:
            target = dictionary.bit_pattern(value)
        except EncodingError:
            return []
        width = dictionary.bits_per_value
        if width == 0:
            # Constant column: everything matches iff value is the constant.
            return list(range(self.row_count)) if dictionary.bases[0] == value else []
        reader = BitReader(self.packed_bits)
        stride = self.bits_per_row
        start = self.field_bit_offset(field)
        matches = []
        for index in range(self.row_count):
            if reader.read_at(start + index * stride, width) == target:
                # Greedy bases are >= 2^W apart, so the pattern is unique;
                # still confirm against the decoded value for safety.
                if dictionary.read_value_at(reader, start + index * stride) == value:
                    matches.append(index)
        return matches

    def to_bytes(self):
        """Serialize header + bit stream for physical storage."""
        header = []
        header.append(len(self.dictionaries))
        header.append(self.row_count)
        payload_parts = []
        for dictionary in self.dictionaries:
            payload_parts.append(
                encode_value(
                    (dictionary.offset_width, tuple(dictionary.bases))
                )
            )
        body = encode_value(tuple(header)) + b"".join(payload_parts)
        return body + encode_value((self.packed_bits,))

    @classmethod
    def from_bytes(cls, data):
        """Deserialize a page produced by :meth:`to_bytes`."""
        (field_count, row_count), offset = decode_value(data, 0)
        dictionaries = []
        for _ in range(field_count):
            (width, bases), offset = decode_value(data, offset)
            dictionaries.append(FieldDictionary(list(bases), width))
        (packed,), _offset = decode_value(data, offset)
        return cls(dictionaries, packed, row_count)
