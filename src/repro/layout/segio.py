"""Open segios: the in-RAM stripe being filled (paper Figure 3).

Compressed user data accumulates from the front of the segio's payload
and log records (serialized tuples) from the back. When the two regions
meet — or on demand — the segio is finalized: the gap is zero-filled,
the payload is split into data shards, parity is computed, and each
shard is prefixed with the replicated header.
"""

import numpy as np

from repro.layout.segment import SegioHeader


class OpenSegio:
    """One segio being filled in controller RAM."""

    def __init__(self, geometry, descriptor, segio_index, buffer_pool=None):
        self.geometry = geometry
        self.descriptor = descriptor
        self.segio_index = segio_index
        #: Payload accumulation buffer, recycled through the writer's
        #: buffer pool when one is wired (acquire returns it zeroed, so
        #: the gap/zero-fill contract holds either way).
        self._buffer_pool = buffer_pool
        if buffer_pool is not None:
            self._payload = buffer_pool.acquire(geometry.payload_per_segio)
        else:
            self._payload = bytearray(geometry.payload_per_segio)
        self._front = 0  # next data byte (from the front)
        self._back = geometry.payload_per_segio  # log region grows downward
        self._log_locators = []
        # Locators live in the fixed-size header; cap them so the
        # encoded header always fits its reserve (~12 B per locator
        # after ~256 B of fixed fields).
        self._max_log_records = max(4, (geometry.wu_header_size - 256) // 12)
        self._seq_min = None
        self._seq_max = None
        self._max_record_id = -1
        self.finalized = False

    @property
    def data_bytes(self):
        """User-data bytes accumulated from the front."""
        return self._front

    @property
    def log_bytes(self):
        """Log-record bytes accumulated from the back."""
        return self.geometry.payload_per_segio - self._back

    @property
    def free_bytes(self):
        """Gap remaining between the data and log regions."""
        return self._back - self._front

    def payload_base(self):
        """Segment payload offset of this segio's first byte."""
        return self.segio_index * self.geometry.payload_per_segio

    def append_data(self, blob):
        """Add user data at the front; returns the segment payload offset.

        Returns None when the blob does not fit (caller flushes and
        retries in the next segio).
        """
        self._check_open()
        if len(blob) > self.free_bytes:
            return None
        offset = self._front
        self._payload[offset : offset + len(blob)] = blob
        self._front += len(blob)
        return self.payload_base() + offset

    def append_log_record(self, blob, seq_min=None, seq_max=None, record_id=None):
        """Add a log record at the back; returns its payload locator.

        Returns None when the record does not fit. ``seq_min``/``seq_max``
        and ``record_id`` feed the header so recovery can scan headers
        instead of record bodies.
        """
        self._check_open()
        if len(blob) > self.free_bytes:
            return None
        if len(self._log_locators) >= self._max_log_records:
            return None
        self._back -= len(blob)
        self._payload[self._back : self._back + len(blob)] = blob
        locator = (self.payload_base() + self._back, len(blob))
        self._log_locators.append(locator)
        if seq_min is not None:
            self._seq_min = seq_min if self._seq_min is None else min(self._seq_min, seq_min)
        if seq_max is not None:
            self._seq_max = seq_max if self._seq_max is None else max(self._seq_max, seq_max)
        if record_id is not None:
            self._max_record_id = max(self._max_record_id, record_id)
        return locator

    @property
    def is_empty(self):
        return self._front == 0 and not self._log_locators

    def read_payload(self, payload_offset, length):
        """Serve a read from the in-RAM buffer (data not yet flushed).

        ``payload_offset`` is segment-relative; returns None when the
        range is not inside this segio.
        """
        base = self.payload_base()
        within = payload_offset - base
        if self._payload is None:
            return None  # buffer already recycled; data is on the drives
        if within < 0 or within + length > self.geometry.payload_per_segio:
            return None
        return bytes(self._payload[within : within + length])

    def _check_open(self):
        if self.finalized:
            raise RuntimeError("segio already finalized")

    def release_buffer(self):
        """Return the payload buffer to the pool after a flush.

        Only legal once finalized: the write units hold their own
        copies by then, so nothing references the accumulation buffer.
        The slot is cleared so a stale read fails closed (None), never
        serves recycled bytes.
        """
        if not self.finalized or self._payload is None:
            return
        buffer, self._payload = self._payload, None
        if self._buffer_pool is not None:
            self._buffer_pool.release(buffer)

    def finalize(self, codec, parallel=None):
        """Seal the segio; returns the write units to put on each drive.

        ``codec`` is the Reed–Solomon codec for this geometry. Returns a
        list of ``total_shards`` byte strings, each exactly one write
        unit (replicated header + shard body), data shards first.
        ``parallel`` (a :class:`repro.parallel.ParallelExecutor`) fans
        the parity encode out over column chunks; the bytes are
        identical with or without it.
        """
        self._check_open()
        self.finalized = True
        # The payload is an exact multiple of shard_body, so the k data
        # shards are a zero-copy 2-D view of the accumulation buffer;
        # parity comes back as the codec's (m, L) scratch in one batched
        # numpy pass — no per-shard byte strings until the write units
        # themselves are assembled.
        data_shards = self.geometry.data_shards
        payload_view = np.frombuffer(self._payload, dtype=np.uint8)
        matrix = payload_view.reshape(data_shards, payload_view.size // data_shards)
        if parallel is not None:
            parity = parallel.rs_encode(codec, matrix)
        else:
            parity = codec.encode_stripes(matrix)
        write_units = []
        all_shards = [matrix[index] for index in range(data_shards)]
        all_shards.extend(parity[index] for index in range(len(parity)))
        for shard_index, body in enumerate(all_shards):
            header = SegioHeader(
                segment_id=self.descriptor.segment_id,
                segio_index=self.segio_index,
                shard_index=shard_index,
                placements=self.descriptor.placements,
                data_length=self._front,
                log_locators=tuple(self._log_locators),
                seq_min=self._seq_min if self._seq_min is not None else 0,
                seq_max=self._seq_max if self._seq_max is not None else -1,
                max_record_id=self._max_record_id,
            ).encode(self.geometry.wu_header_size)
            write_units.append(header + body.tobytes())
        return write_units
