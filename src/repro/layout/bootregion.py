"""The boot region (paper Section 4.3).

A tiny, fixed-location slice of storage holding what recovery needs
before it can read anything else: the persisted frontier and
speculative sets, the allocator state, the locations of each relation's
persisted patches, and the WAL trim point. Everything else is
discovered by scanning frontier AU headers and replaying NVRAM.

The checkpoint is stored as one serialized blob, mirrored across
drives; the model charges a small latency per write and counts bytes so
the "< 1 % of writes" claim can be measured.
"""

from repro.errors import RecoveryError
from repro.pyramid.tuples import decode_value, encode_value
from repro.units import MILLISECOND


class BootRegion:
    """Mirrored checkpoint store for bootstrap metadata."""

    #: Charged per checkpoint write: a few small mirrored writes.
    WRITE_LATENCY = 2 * MILLISECOND
    READ_LATENCY = 1 * MILLISECOND

    def __init__(self, clock):
        self.clock = clock
        self._blob = None
        self.writes = 0
        self.bytes_written = 0

    def write_checkpoint(self, checkpoint):
        """Persist a checkpoint dict; returns simulated latency.

        The checkpoint must be a dict of primitive-encodable values;
        serializing it here guarantees recovery never depends on live
        Python object graphs.
        """
        items = tuple(sorted(checkpoint.items()))
        flat = tuple(item for pair in items for item in pair)
        blob = encode_value(flat)
        self._blob = blob
        self.writes += 1
        self.bytes_written += len(blob)
        return self.WRITE_LATENCY

    def read_checkpoint(self):
        """Load the latest checkpoint; returns (dict, latency)."""
        if self._blob is None:
            raise RecoveryError("boot region is empty (array never checkpointed)")
        flat, _end = decode_value(self._blob)
        if len(flat) % 2:
            raise RecoveryError("corrupt boot region checkpoint")
        checkpoint = {
            flat[index]: flat[index + 1] for index in range(0, len(flat), 2)
        }
        return checkpoint, self.READ_LATENCY

    @property
    def is_empty(self):
        return self._blob is None
