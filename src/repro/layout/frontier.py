"""Frontier sets (paper Figure 5).

The frontier set is the persisted list of free AUs the allocator will
use next. Constraining allocation to the persisted frontier means the
crash-recovery scan for log records only needs to visit frontier AUs
instead of every segment in the array — the optimization that took
failover scans from 12 s to 0.1 s. Speculative and transition sets
(approximations of *future* frontiers) are persisted alongside, so the
boot region is rewritten rarely; in practice frontier writes are well
under 1 % of writes.
"""

from repro.errors import OutOfSpaceError


class FrontierManager:
    """Allocation gate: hand out only AUs from the persisted frontier."""

    def __init__(self, allocator, batch_per_drive=4, speculative_batches=1):
        if batch_per_drive < 1:
            raise ValueError("batch_per_drive must be positive")
        self.allocator = allocator
        self.batch_per_drive = batch_per_drive
        self.speculative_batches = speculative_batches
        self._current = {}  # drive_name -> list of au_index, persisted
        self._speculative = {}  # next frontier approximation, persisted
        self.persist_needed = True  # a checkpoint must record the sets
        self.refills = 0

    def current_units(self):
        """Persisted frontier as (drive, au) pairs (recovery scans these)."""
        return [
            (drive, au) for drive, aus in self._current.items() for au in aus
        ]

    def speculative_units(self):
        """Persisted speculative set (also scanned at recovery)."""
        return [
            (drive, au) for drive, aus in self._speculative.items() for au in aus
        ]

    def scan_set(self):
        """Every AU recovery must scan: frontier plus speculative."""
        return self.current_units() + self.speculative_units()

    def refill(self):
        """Recompute frontier + speculative sets from the free pool.

        Must be followed by a boot-region checkpoint before the new sets
        are used (:attr:`persist_needed` tracks this).
        """
        plan = self.allocator.reserve_batch(
            self.batch_per_drive * (1 + self.speculative_batches)
        )
        per_drive = {}
        for drive, au in plan:
            per_drive.setdefault(drive, []).append(au)
        self._current = {}
        self._speculative = {}
        for drive, aus in per_drive.items():
            self._current[drive] = aus[: self.batch_per_drive]
            self._speculative[drive] = aus[self.batch_per_drive :]
        self.persist_needed = True
        self.refills += 1

    def mark_persisted(self):
        """The boot region now records the current sets."""
        self.persist_needed = False

    def needs_refill(self, group_size):
        """True when the frontier cannot supply another AU group."""
        drives_with_aus = sum(1 for aus in self._current.values() if aus)
        return drives_with_aus < group_size

    def promote_speculative(self):
        """Roll the speculative set into the frontier without a refill.

        Because the speculative set was already persisted, this needs no
        boot-region write — the reason frontier writes stay rare.
        """
        promoted = False
        for drive, aus in self._speculative.items():
            if aus:
                self._current.setdefault(drive, []).extend(aus)
                promoted = True
        self._speculative = {}
        return promoted

    def take_group(self, group_size):
        """Allocate one AU on each of ``group_size`` distinct drives.

        Draws only from the persisted frontier; falls back to promoting
        the (persisted) speculative set; raises OutOfSpaceError when a
        refill + checkpoint is required first.
        """
        if self.persist_needed:
            raise OutOfSpaceError("frontier set not persisted; checkpoint first")
        if self.needs_refill(group_size) and not self.promote_speculative():
            raise OutOfSpaceError("frontier exhausted; refill and checkpoint")
        if self.needs_refill(group_size):
            raise OutOfSpaceError("frontier exhausted; refill and checkpoint")
        # Prefer the drives with the deepest remaining frontier queues.
        candidates = sorted(
            (drive for drive, aus in self._current.items() if aus),
            key=lambda drive: -len(self._current[drive]),
        )[:group_size]
        group = []
        for drive in candidates:
            au_index = self._current[drive].pop(0)
            group.append(self.allocator.take_specific(drive, au_index))
        return group

    def remove_unit(self, drive_name, au_index):
        """Remove one AU from the sets (recovery found a segment in it)."""
        for sets in (self._current, self._speculative):
            aus = sets.get(drive_name)
            if aus is not None and au_index in aus:
                aus.remove(au_index)

    def drop_drive(self, drive_name):
        """Remove a failed drive's AUs from both sets."""
        self._current.pop(drive_name, None)
        self._speculative.pop(drive_name, None)

    def retain_drives(self, valid_names):
        """Keep only AUs on ``valid_names`` (recovery over a shelf whose
        drives were swapped since the checkpoint)."""
        valid = set(valid_names)
        for sets in (self._current, self._speculative):
            for drive_name in [name for name in sets if name not in valid]:
                del sets[drive_name]

    def restore(self, current_units, speculative_units):
        """Rebuild the sets from a boot-region checkpoint."""
        self._current = {}
        for drive, au in current_units:
            self._current.setdefault(drive, []).append(au)
        self._speculative = {}
        for drive, au in speculative_units:
            self._speculative.setdefault(drive, []).append(au)
        self.persist_needed = False
