"""Segment geometry, descriptors, and write-unit headers.

A segment is one allocation unit from each of ``k + m`` drives (the
paper's current systems use 8 MiB AUs, 1 MiB write units, and 7+2
Reed–Solomon). Each write unit begins with a small self-describing
header replicated across every shard of its segio; the body bytes of
the ``k`` data shards form the segio's payload and the ``m`` parity
shards protect them. Headers are replicated rather than parity-encoded
so any surviving shard identifies the segment during recovery scans.

Payload addressing: a byte of segment payload lives at
``(segio s, shard j, offset w)`` with
``payload_offset = (s * k + j) * shard_body + w``.
"""

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.pyramid.tuples import decode_value, encode_value
from repro.units import KIB, MIB

#: Magic prefix identifying a valid write-unit header.
WU_MAGIC = b"PSEG"


@dataclass(frozen=True)
class SegmentGeometry:
    """Sizes and shard counts for segments on one array."""

    data_shards: int = 7
    parity_shards: int = 2
    au_size: int = 8 * MIB
    write_unit: int = 1 * MIB
    wu_header_size: int = 4 * KIB

    def __post_init__(self):
        if self.data_shards < 1 or self.parity_shards < 1:
            raise ValueError("need at least one data and one parity shard")
        if self.au_size % self.write_unit:
            raise ValueError("AU size must be a multiple of the write unit")
        if self.wu_header_size >= self.write_unit:
            raise ValueError("header must be smaller than the write unit")

    @property
    def total_shards(self):
        return self.data_shards + self.parity_shards

    @property
    def shard_body(self):
        """Payload bytes carried by one write unit after its header."""
        return self.write_unit - self.wu_header_size

    @property
    def segios_per_segment(self):
        """Write-unit stripes stacked in one allocation unit."""
        return self.au_size // self.write_unit

    @property
    def payload_per_segio(self):
        """Payload bytes in one segio (data region + log region)."""
        return self.data_shards * self.shard_body

    @property
    def payload_per_segment(self):
        """Payload capacity of a whole segment."""
        return self.segios_per_segment * self.payload_per_segio

    def locate(self, payload_offset):
        """Map a payload offset to (segio, shard, offset within body)."""
        if payload_offset < 0 or payload_offset >= self.payload_per_segment:
            raise ValueError("payload offset %d out of range" % payload_offset)
        segio, within_segio = divmod(payload_offset, self.payload_per_segio)
        shard, within_body = divmod(within_segio, self.shard_body)
        return segio, shard, within_body

    def device_offset(self, au_start, segio, within_wu):
        """Device byte address of a position inside one write unit.

        ``within_wu`` includes the header (0 = header start); add
        ``wu_header_size`` for body positions.
        """
        return au_start + segio * self.write_unit + within_wu

    def split_payload_range(self, payload_offset, length):
        """Break a payload range into per-(segio, shard) body chunks.

        Yields (segio, shard, within_body, chunk_length) covering the
        range in order.
        """
        remaining = length
        cursor = payload_offset
        while remaining > 0:
            segio, shard, within_body = self.locate(cursor)
            chunk = min(remaining, self.shard_body - within_body)
            yield segio, shard, within_body, chunk
            cursor += chunk
            remaining -= chunk


@dataclass(frozen=True)
class SegmentDescriptor:
    """Where one segment physically lives.

    ``placements`` is a tuple of (drive_name, au_index), one per shard,
    data shards first. AU index is in units of the geometry's AU size
    on that drive.
    """

    segment_id: int
    placements: tuple

    def au_start(self, shard, geometry):
        """Device byte offset where this shard's AU begins."""
        _drive, au_index = self.placements[shard]
        return au_index * geometry.au_size

    def drive_names(self):
        return tuple(drive for drive, _au in self.placements)


@dataclass(frozen=True)
class SegioHeader:
    """Self-describing header replicated at the front of each write unit.

    ``log_locators`` is a tuple of (payload_offset, length) pairs for
    the log records this segio carries; ``seq_min``/``seq_max`` bound
    the sequence numbers inside (the recovery scan reads only headers
    to decide what to replay); ``max_record_id`` is the newest NVRAM
    commit record folded into this segio, used to trim the WAL.
    """

    segment_id: int
    segio_index: int
    shard_index: int
    placements: tuple
    data_length: int
    log_locators: tuple
    seq_min: int
    seq_max: int
    max_record_id: int

    def encode(self, header_size):
        """Serialize, padded to exactly ``header_size`` bytes."""
        placements_flat = tuple(
            item for drive, au in self.placements for item in (drive, au)
        )
        locators_flat = tuple(
            item for offset, length in self.log_locators for item in (offset, length)
        )
        body = encode_value(
            (
                self.segment_id,
                self.segio_index,
                self.shard_index,
                placements_flat,
                self.data_length,
                locators_flat,
                self.seq_min,
                self.seq_max,
                self.max_record_id,
            )
        )
        blob = WU_MAGIC + len(body).to_bytes(4, "big") + body
        if len(blob) > header_size:
            raise EncodingError(
                "header needs %d bytes, only %d reserved" % (len(blob), header_size)
            )
        return blob + b"\x00" * (header_size - len(blob))

    @classmethod
    def decode(cls, data):
        """Parse a header; returns None if the bytes are not a header."""
        if len(data) < 8 or data[:4] != WU_MAGIC:
            return None
        body_length = int.from_bytes(data[4:8], "big")
        if 8 + body_length > len(data):
            return None
        try:
            fields, _end = decode_value(data[8 : 8 + body_length])
        except EncodingError:
            return None
        if len(fields) != 9:
            return None
        (
            segment_id,
            segio_index,
            shard_index,
            placements_flat,
            data_length,
            locators_flat,
            seq_min,
            seq_max,
            max_record_id,
        ) = fields
        placements = tuple(
            (placements_flat[i], placements_flat[i + 1])
            for i in range(0, len(placements_flat), 2)
        )
        locators = tuple(
            (locators_flat[i], locators_flat[i + 1])
            for i in range(0, len(locators_flat), 2)
        )
        return cls(
            segment_id=segment_id,
            segio_index=segio_index,
            shard_index=shard_index,
            placements=placements,
            data_length=data_length,
            log_locators=locators,
            seq_min=seq_min,
            seq_max=seq_max,
            max_record_id=max_record_id,
        )

    def descriptor(self):
        """The segment descriptor recoverable from this header."""
        return SegmentDescriptor(segment_id=self.segment_id, placements=self.placements)
