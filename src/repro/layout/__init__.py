"""Physical storage layout (paper Section 4.2–4.3, Figures 3–5).

Purity stores data in *segments*, each striped across the allocation
units (AUs) of 7+2 drives chosen at write time. Within a segment, a
horizontal stripe of write units is a *segio*: compressed user data
accumulates from the front, log records (tuples) from the back, and the
full segio is flushed to the SSDs as large sequential writes.

Recovery is driven by self-describing write-unit headers plus the
*frontier set* — the persisted list of AUs the allocator will use next —
which bounds the crash-recovery scan to recently writable segments
(Figure 5).
"""

from repro.layout.segment import (
    SegmentDescriptor,
    SegmentGeometry,
    SegioHeader,
)
from repro.layout.segio import OpenSegio
from repro.layout.allocation import Allocator
from repro.layout.frontier import FrontierManager
from repro.layout.bootregion import BootRegion
from repro.layout.segwriter import SegmentWriter
from repro.layout.segreader import SegmentReader

__all__ = [
    "SegmentGeometry",
    "SegmentDescriptor",
    "SegioHeader",
    "OpenSegio",
    "Allocator",
    "FrontierManager",
    "BootRegion",
    "SegmentWriter",
    "SegmentReader",
]
