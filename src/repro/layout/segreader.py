"""Segment reads, reconstruction, and header scans.

The reader serves payload ranges from segments, transparently
reconstructing any shard it cannot (or prefers not to) read directly:
failed drives, corrupted pages, and — when an avoidance policy is
supplied — drives that are busy servicing segment writes (the
read-around-writes scheduling of Section 4.4). Reconstruction reads the
same byte slice from the surviving shards and solves the 7+2 code for
just the missing positions.

Header scans support recovery: reading the first page of each write
unit yields the self-describing segio headers, from which segments, log
records, and sequence bounds are rediscovered.
"""

from repro.core.config import (
    READ_RETRY_BACKOFF,
    READ_RETRY_LIMIT,
    SUSPECT_RETRY_LIMIT,
)
from repro.errors import DeviceFailedError, UncorrectableError
from repro.layout.segment import SegioHeader
from repro.perf import PERF


class DriveRetryStats:
    """Per-drive retry accounting (re-exported via core.telemetry)."""

    __slots__ = ("attempts", "exhausted")

    def __init__(self):
        #: Device-level re-reads issued after a corrupted result.
        self.attempts = 0
        #: Reads still corrupted after every retry: the reader fell
        #: through to Reed-Solomon reconstruction for that shard.
        self.exhausted = 0

    def counters(self):
        return {"attempts": self.attempts, "exhausted": self.exhausted}


class SegmentReader:
    """Read path over striped segments."""

    def __init__(self, geometry, codec, drives, avoid_policy=None, health=None,
                 config=None):
        self.geometry = geometry
        self.codec = codec
        self.drives = drives  # name -> SimulatedSSD
        self.avoid_policy = avoid_policy
        #: Optional :class:`repro.core.health.DriveHealthMonitor`; fed
        #: every corrupted/stalled/exhausted read outcome.
        self.health = health
        #: Observability handle (see :mod:`repro.obs`); wired by the
        #: array, None-safe for standalone readers.
        self.obs = None
        #: Optional :class:`repro.degrade.HedgePolicy`; wired by the
        #: array. When set, slow/suspect direct reads race parity
        #: reconstruction and adopt whichever finishes first.
        self.hedge = None
        # Retry/backoff knobs come from ArrayConfig (documented there);
        # standalone readers without a config get the same defaults.
        if config is not None:
            self.corruption_retries = config.read_retry_limit
            self.suspect_retries = config.suspect_retry_limit
            self.retry_backoff = config.read_retry_backoff
        else:
            self.corruption_retries = READ_RETRY_LIMIT
            self.suspect_retries = SUSPECT_RETRY_LIMIT
            self.retry_backoff = READ_RETRY_BACKOFF
        self.direct_reads = 0
        self.reconstructed_reads = 0
        self.retry_stats = {}  # drive name -> DriveRetryStats

    def _drive_for(self, descriptor, shard):
        drive_name, _au = descriptor.placements[shard]
        drive = self.drives.get(drive_name)
        if drive is None or drive.failed:
            return None
        return drive

    def stats_for(self, drive_name):
        stats = self.retry_stats.get(drive_name)
        if stats is None:
            stats = DriveRetryStats()
            self.retry_stats[drive_name] = stats
        return stats

    def retry_report(self):
        """drive name -> retry counters, for telemetry."""
        return {
            name: stats.counters()
            for name, stats in sorted(self.retry_stats.items())
        }

    def _read_with_retry(self, drive, offset, length):
        """Read with escalating retry/backoff; returns the final result.

        Each retry charges an exponentially-growing host-side backoff
        on top of the device read, and the returned latency is the
        *sum* over attempts (the caller waited through all of them).
        Suspect drives get a shorter retry budget — fail fast and let
        reconstruction serve the read. Every outcome feeds the health
        monitor, which may auto-fail the drive mid-sequence; the loop
        then stops retrying and reports the read as exhausted.
        """
        health = self.health
        #: One health "region" per write unit: repeated reads of the
        #: same damaged unit are one piece of evidence, not many.
        region = offset // self.geometry.write_unit
        result = drive.read(offset, length)
        total_latency = result.latency
        if health is not None and result.stalled:
            health.note_stalled(drive.name)
        budget = self.corruption_retries
        if health is not None and health.is_suspect(drive.name):
            budget = self.suspect_retries
        attempts = 0
        while result.corrupted and attempts < budget:
            if health is not None:
                health.note_corrupted(drive.name, region=region)
            if drive.failed:
                break  # the health monitor auto-failed it under us
            self.stats_for(drive.name).attempts += 1
            PERF.incr("segread-retry")
            backoff = self.retry_backoff * (2 ** attempts)
            attempts += 1
            result = drive.read(offset, length)
            total_latency += backoff + result.latency
            if health is not None and result.stalled:
                health.note_stalled(drive.name)
        if result.corrupted:
            self.stats_for(drive.name).exhausted += 1
            PERF.incr("segread-retry-exhausted")
            if health is not None:
                health.note_corrupted(drive.name, region=region)
                health.note_exhausted(drive.name, region=region)
        result.latency = total_latency
        return result

    def _body_offset(self, descriptor, shard, segio, within_body):
        au_start = descriptor.au_start(shard, self.geometry)
        return self.geometry.device_offset(
            au_start, segio, self.geometry.wu_header_size + within_body
        )

    def read_payload(self, descriptor, payload_offset, length):
        """Read a payload byte range; returns (bytes, latency).

        Chunks are issued in parallel, so the request latency is the
        slowest chunk (per-drive queueing is modelled by the devices).
        """
        parts = []
        latencies = [0.0]
        for segio, shard, within, chunk_length in self.geometry.split_payload_range(
            payload_offset, length
        ):
            data, latency = self._read_chunk(
                descriptor, segio, shard, within, chunk_length
            )
            parts.append(data)
            latencies.append(latency)
        return b"".join(parts), max(latencies)

    def _should_avoid(self, drive):
        return self.avoid_policy is not None and self.avoid_policy(drive)

    def _read_chunk(self, descriptor, segio, shard, within, length):
        drive = self._drive_for(descriptor, shard)
        avoided = drive is not None and self._should_avoid(drive)
        if drive is not None and not avoided:
            offset = self._body_offset(descriptor, shard, segio, within)
            hedge = self.hedge
            if hedge is not None and hedge.should_hedge(drive, offset):
                return self._hedged_read(
                    descriptor, segio, shard, within, length, drive, offset
                )
            result = self._read_with_retry(drive, offset, length)
            if not result.corrupted:
                self.direct_reads += 1
                return result.data, result.latency
        try:
            return self._reconstruct_chunk(descriptor, segio, shard, within, length)
        except UncorrectableError:
            if not avoided or drive.failed:
                raise
            # Avoidance is an optimization, never a correctness rule:
            # when too few calm shards survive, read the busy drive.
            result = drive.read(
                self._body_offset(descriptor, shard, segio, within), length
            )
            if result.corrupted:
                raise
            self.direct_reads += 1
            return result.data, result.latency

    def _hedged_read(self, descriptor, segio, shard, within, length, drive,
                     offset):
        """Race a direct read against parity reconstruction (§4.4).

        Both arms issue; the arm with the lower simulated completion
        latency is adopted (reconstruction also wins outright when the
        direct read comes back corrupted). Results are byte-identical
        either way — the differential test in ``tests/degrade``
        guarantees it — so hedging only ever trades extra device reads
        for bounded tail latency. The losing arm's device reads are
        charged to ``hedge.wasted``.
        """
        hedge = self.hedge
        hedge.note_fired()
        obs = self.obs
        span = None
        if obs is not None and obs.tracing:
            span = obs.begin(
                "segread.hedge",
                segment=descriptor.segment_id,
                segio=segio,
                shard=shard,
            )
        direct = self._read_with_retry(drive, offset, length)
        try:
            data, reconstruct_latency = self._reconstruct_chunk(
                descriptor, segio, shard, within, length
            )
        except UncorrectableError:
            # Too few calm survivors to race: the direct arm is all we
            # have, and it must be clean to serve the read.
            if direct.corrupted:
                if span is not None:
                    obs.end(span, failed=True)
                raise
            hedge.note_outcome(won=False, wasted=self.geometry.data_shards)
            if span is not None:
                obs.end(span, won=False, lat=direct.latency)
            self.direct_reads += 1
            return direct.data, direct.latency
        if direct.corrupted or reconstruct_latency <= direct.latency:
            hedge.note_outcome(won=True, wasted=0 if direct.corrupted else 1)
            if span is not None:
                obs.end(span, won=True, lat=reconstruct_latency)
            return data, reconstruct_latency
        hedge.note_outcome(won=False, wasted=self.geometry.data_shards)
        if span is not None:
            obs.end(span, won=False, lat=direct.latency)
        self.direct_reads += 1
        return direct.data, direct.latency

    def _reconstruct_chunk(self, descriptor, segio, target_shard, within, length):
        """Rebuild one shard slice from the others via Reed-Solomon.

        Prefers shards on drives the avoidance policy likes — and, when
        a hedge policy is wired, drives whose predicted wait is under
        the hedge deadline. Disliked drives are read only when nothing
        else can complete the stripe. The ordering is independent of
        whether hedging is *enabled* (it uses the pure deadline check),
        so hedge-on and hedge-off runs reconstruct identically.
        """
        obs = self.obs
        span = None
        if obs is not None and obs.tracing:
            span = obs.begin(
                "segread.reconstruct",
                segment=descriptor.segment_id,
                segio=segio,
                shard=target_shard,
            )
        shards = [None] * self.geometry.total_shards
        latencies = [0.0]
        available = 0
        candidates = [
            shard for shard in range(self.geometry.total_shards)
            if shard != target_shard
        ]
        hedge = self.hedge

        def _reluctance(shard):
            drive = self._drive_for(descriptor, shard)
            if drive is None:
                return (False, False)
            stalling = hedge is not None and hedge.would_wait(
                drive, self._body_offset(descriptor, shard, segio, within)
            )
            return (self._should_avoid(drive), stalling)

        candidates.sort(key=_reluctance)
        for shard in candidates:
            if available >= self.geometry.data_shards:
                break  # k survivors suffice; skip further reads
            drive = self._drive_for(descriptor, shard)
            if drive is None:
                continue
            result = self._read_with_retry(
                drive, self._body_offset(descriptor, shard, segio, within), length
            )
            if result.corrupted:
                continue
            shards[shard] = result.data
            latencies.append(result.latency)
            available += 1
        if available < self.geometry.data_shards:
            if span is not None:
                obs.end(span, failed=True, available=available)
            raise UncorrectableError(
                "segment %d segio %d: only %d of %d shards readable"
                % (
                    descriptor.segment_id,
                    segio,
                    available,
                    self.geometry.data_shards,
                )
            )
        complete = self.codec.reconstruct(shards)
        self.reconstructed_reads += 1
        latency = max(latencies)
        if span is not None:
            obs.end(span, lat=latency)
        if obs is not None:
            obs.metrics.counter("segread.reconstructed").inc()
        return complete[target_shard], latency

    def read_header(self, drive, au_index, segio_index):
        """Read one write-unit header; returns (SegioHeader or None, latency)."""
        device_offset = self.geometry.device_offset(
            au_index * self.geometry.au_size, segio_index, 0
        )
        try:
            result = drive.read(device_offset, self.geometry.wu_header_size)
        except (DeviceFailedError, ValueError):
            return None, 0.0
        if result.corrupted:
            return None, result.latency
        return SegioHeader.decode(result.data), result.latency

    def scan_headers(self, units):
        """Scan segio headers over (drive_name, au_index) pairs.

        Returns (headers, latency). Per-drive reads serialize; drives
        scan in parallel, so latency is the slowest drive's total.
        Headers are deduplicated by (segment, segio) — they are
        replicated on every shard.
        """
        per_drive_latency = {}
        seen = set()
        headers = []
        for drive_name, au_index in units:
            drive = self.drives.get(drive_name)
            if drive is None or drive.failed:
                continue
            for segio_index in range(self.geometry.segios_per_segment):
                header, latency = self.read_header(drive, au_index, segio_index)
                per_drive_latency[drive_name] = (
                    per_drive_latency.get(drive_name, 0.0) + latency
                )
                if header is None:
                    continue
                dedupe_key = (header.segment_id, header.segio_index)
                if dedupe_key not in seen:
                    seen.add(dedupe_key)
                    headers.append(header)
        return headers, max(per_drive_latency.values(), default=0.0)

    def read_log_record(self, descriptor, locator):
        """Fetch one log record by its (payload_offset, length) locator."""
        offset, length = locator
        return self.read_payload(descriptor, offset, length)
