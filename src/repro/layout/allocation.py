"""Allocation-unit accounting across the drive population.

The allocator owns the free/used state of every AU on every alive
drive. It hands whole AU *groups* (one AU on each of ``k + m`` distinct
drives) to the segment writer, preferring the emptiest drives so wear
and capacity stay balanced. Section 4.3's constraint — only AUs in the
persisted frontier set may be allocated — is enforced by the
:class:`~repro.layout.frontier.FrontierManager` layered above.
"""

from repro.errors import AllocationError, OutOfSpaceError


class Allocator:
    """Free-pool manager for (drive_name, au_index) allocation units."""

    def __init__(self, drive_names, aus_per_drive):
        if aus_per_drive < 1:
            raise ValueError("aus_per_drive must be positive")
        self.aus_per_drive = aus_per_drive
        self._free = {name: set(range(aus_per_drive)) for name in drive_names}
        self._used = {name: set() for name in drive_names}

    @property
    def drive_names(self):
        return list(self._free)

    def free_count(self, drive_name=None):
        """Free AUs on one drive, or across the array."""
        if drive_name is not None:
            return len(self._free[drive_name])
        return sum(len(free) for free in self._free.values())

    def used_count(self):
        """Allocated AUs across the array."""
        return sum(len(used) for used in self._used.values())

    def used_units(self):
        """Every allocated (drive_name, au_index) pair."""
        return [
            (name, au) for name, used in self._used.items() for au in sorted(used)
        ]

    def take_specific(self, drive_name, au_index):
        """Allocate one specific AU (frontier-driven allocation)."""
        free = self._free.get(drive_name)
        if free is None:
            raise AllocationError("unknown drive %r" % drive_name)
        if au_index not in free:
            raise AllocationError(
                "AU %d on %s is not free" % (au_index, drive_name)
            )
        free.remove(au_index)
        self._used[drive_name].add(au_index)
        return drive_name, au_index

    def reserve_batch(self, per_drive):
        """Pull up to ``per_drive`` free AUs from every drive.

        Returns a list of (drive_name, au_index). This is how the
        frontier manager refills; the AUs remain *free* in the
        allocator until :meth:`take_specific` claims them — the batch is
        a reservation plan, not an allocation.
        """
        batch = []
        for name, free in self._free.items():
            for au_index in sorted(free)[:per_drive]:
                batch.append((name, au_index))
        return batch

    def release(self, units):
        """Return AUs to the free pool (garbage collection)."""
        for drive_name, au_index in units:
            used = self._used.get(drive_name)
            if used is None or au_index not in used:
                raise AllocationError(
                    "AU %d on %s was not allocated" % (au_index, drive_name)
                )
            used.remove(au_index)
            self._free[drive_name].add(au_index)

    def drop_drive(self, drive_name):
        """Forget a failed drive; its AUs leave both pools."""
        self._free.pop(drive_name, None)
        self._used.pop(drive_name, None)

    def add_drive(self, drive_name):
        """Register a replacement drive with an all-free AU population."""
        if drive_name in self._free:
            raise AllocationError("drive %r already registered" % drive_name)
        self._free[drive_name] = set(range(self.aus_per_drive))
        self._used[drive_name] = set()

    def ensure_capacity(self, group_size):
        """Raise OutOfSpaceError unless ``group_size`` drives have free AUs."""
        with_free = sum(1 for free in self._free.values() if free)
        if with_free < group_size:
            raise OutOfSpaceError(
                "only %d drives have free AUs, need %d" % (with_free, group_size)
            )

    def restore_state(self, used_units):
        """Rebuild allocation state from a boot-region checkpoint."""
        for name in self._free:
            self._free[name] = set(range(self.aus_per_drive))
            self._used[name] = set()
        for drive_name, au_index in used_units:
            if drive_name in self._free:
                self._free[drive_name].discard(au_index)
                self._used[drive_name].add(au_index)
