"""The segment writer (paper Figure 4, right half).

Joins the two event streams of the commit path — sequence numbers
persisted to NVRAM, and index-ordered patches — into segios: user data
accumulates from the front, log records from the back, and full segios
are flushed to the drives as parallel one-write-unit programs. After a
flush, the writer reports the newest NVRAM record id it persisted so
the WAL can trim.

Write-ahead ordering is enforced structurally: log records enter a
segio only through :meth:`append_log_record`, whose ``record_id``
argument is the NVRAM record the facts came from — they are in NVRAM
before they can reach a segment.
"""

import itertools

from repro.errors import AllocationError, OutOfSpaceError
from repro.layout.segio import OpenSegio
from repro.layout.segment import SegmentDescriptor
from repro.perf import PERF


class SegmentWriter:
    """Accumulates data and log records into segios and flushes them."""

    def __init__(
        self,
        geometry,
        codec,
        drives,
        frontier,
        clock,
        checkpointer=None,
        on_segio_flushed=None,
        on_segment_opened=None,
        max_concurrent_writes=None,
    ):
        self.geometry = geometry
        self.codec = codec
        self.drives = drives  # name -> SimulatedSSD
        self.frontier = frontier
        self.clock = clock
        self.checkpointer = checkpointer
        self.on_segio_flushed = on_segio_flushed
        self.on_segment_opened = on_segment_opened
        #: Section 4.4: avoid writing to more than two SSDs per ECC
        #: group at once, so reads can always reconstruct around busy
        #: drives. None = program every shard in parallel.
        self.max_concurrent_writes = max_concurrent_writes
        #: Fault-injection hooks (see :mod:`repro.faults`): crashpoint
        #: router, and a flush interceptor that may drop shard programs
        #: (torn flushes).
        self.crashpoints = None
        self.flush_interceptor = None
        #: Observability handle (see :mod:`repro.obs`); wired by the
        #: array, None-safe for standalone writers.
        self.obs = None
        #: Parallel executor for the RS encode fan-out and the buffer
        #: pool recycling segio payloads; both wired by the array and
        #: None-safe for standalone writers.
        self.parallel = None
        #: Optional :class:`repro.degrade.DegradeEngine`; wired by the
        #: array. Flushes that skip failed drives charge the stripe to
        #: the repair-debt ledger so rebuild knows what it owes.
        self.degrade = None
        self.buffer_pool = None
        self._segment_ids = itertools.count(1)
        self._descriptor = None
        self._segio = None
        self._next_segio_index = 0
        self.segios_flushed = 0
        self.segments_opened = 0
        self.data_bytes_written = 0
        self.log_bytes_written = 0
        self.flush_bytes_written = 0

    def set_next_segment_id(self, next_id):
        """Continue segment numbering after recovery."""
        self._segment_ids = itertools.count(next_id)

    @property
    def current_descriptor(self):
        return self._descriptor

    @property
    def current_segio(self):
        return self._segio

    def _take_group(self):
        try:
            return self.frontier.take_group(self.geometry.total_shards)
        except OutOfSpaceError:
            if self.checkpointer is None:
                raise
            self.checkpointer()
            return self.frontier.take_group(self.geometry.total_shards)

    def _open_segment(self):
        placements = tuple(self._take_group())
        segment_id = next(self._segment_ids)
        self._descriptor = SegmentDescriptor(
            segment_id=segment_id, placements=placements
        )
        self._next_segio_index = 0
        self.segments_opened += 1
        if self.on_segment_opened is not None:
            self.on_segment_opened(self._descriptor)

    def _open_segio(self):
        if self._descriptor is None or (
            self._next_segio_index >= self.geometry.segios_per_segment
        ):
            self._open_segment()
        self._segio = OpenSegio(
            self.geometry, self._descriptor, self._next_segio_index,
            buffer_pool=self.buffer_pool,
        )
        self._next_segio_index += 1

    def _ensure_segio(self):
        if self._segio is None or self._segio.finalized:
            self._open_segio()

    def append_data(self, blob):
        """Write user data; returns (descriptor, payload_offset, latency).

        Latency is non-zero only when the append forces a segio flush —
        the data path itself commits via NVRAM, so this cost is
        background, not client-visible.
        """
        if len(blob) > self.geometry.payload_per_segio:
            raise ValueError(
                "blob of %d bytes exceeds segio payload %d"
                % (len(blob), self.geometry.payload_per_segio)
            )
        self._ensure_segio()
        latency = 0.0
        offset = self._segio.append_data(blob)
        if offset is None:
            latency = self.flush()
            self._ensure_segio()
            offset = self._segio.append_data(blob)
            if offset is None:
                raise AllocationError("fresh segio rejected a valid blob")
        self.data_bytes_written += len(blob)
        return self._segio.descriptor, offset, latency

    def append_log_record(self, blob, seq_min=None, seq_max=None, record_id=None):
        """Write a log record; returns (descriptor, locator, latency)."""
        if len(blob) > self.geometry.payload_per_segio:
            raise ValueError(
                "log record of %d bytes exceeds segio payload %d"
                % (len(blob), self.geometry.payload_per_segio)
            )
        self._ensure_segio()
        latency = 0.0
        locator = self._segio.append_log_record(blob, seq_min, seq_max, record_id)
        if locator is None:
            latency = self.flush()
            self._ensure_segio()
            locator = self._segio.append_log_record(blob, seq_min, seq_max, record_id)
            if locator is None:
                raise AllocationError("fresh segio rejected a valid log record")
        self.log_bytes_written += len(blob)
        return self._segio.descriptor, locator, latency

    def retire_current_segment(self):
        """Flush and abandon the open segment (GC wants to evacuate it).

        The next append opens a fresh segment; unused segios in the
        retired one simply stay unwritten. Returns the flush latency.
        """
        latency = self.flush()
        self._descriptor = None
        self._segio = None
        self._next_segio_index = 0
        return latency

    def read_unflushed(self, segment_id, payload_offset, length):
        """Serve reads of data still in the open segio's RAM buffer.

        Returns bytes, or None when the range is not in the open segio
        (then it is on the drives and the segment reader serves it).
        """
        if (
            self._segio is None
            or self._segio.finalized
            or self._descriptor is None
            or self._descriptor.segment_id != segment_id
        ):
            return None
        return self._segio.read_payload(payload_offset, length)

    def flush(self):
        """Finalize and program the open segio; returns flush latency.

        The ``total_shards`` write units go to distinct drives in
        parallel, so the charged latency is the slowest program.
        """
        if self._segio is None or self._segio.finalized or self._segio.is_empty:
            return 0.0
        segio = self._segio
        cp = self.crashpoints
        obs = self.obs
        tracing = obs is not None and obs.tracing
        flush_span = None
        if tracing:
            flush_span = obs.begin(
                "segio.flush",
                segment=segio.descriptor.segment_id,
                segio=segio.segio_index,
            )
        try:
            if cp is not None:
                cp.hit("segwriter.pre-flush", descriptor=segio.descriptor)
            encode_span = obs.begin("rs-encode") if tracing else None
            with PERF.timer("segio-flush"):
                write_units = segio.finalize(self.codec, parallel=self.parallel)
            if encode_span is not None:
                obs.end(encode_span, shards=len(write_units))
        except BaseException:
            if flush_span is not None:
                obs.end(flush_span, crashed=True)
            raise
        descriptor = segio.descriptor
        try:
            pending = []
            skipped_shards = 0
            for shard_index, unit in enumerate(write_units):
                drive_name, au_index = descriptor.placements[shard_index]
                drive = self.drives.get(drive_name)
                if drive is None or drive.failed:
                    skipped_shards += 1
                    continue  # degraded write: parity still protects the data
                device_offset = self.geometry.device_offset(
                    au_index * self.geometry.au_size, segio.segio_index, 0
                )
                pending.append((drive, device_offset, unit))
            if self.flush_interceptor is not None:
                # Fault injection: a torn flush persists only a subset of
                # the shard programs (the dropped units read back torn).
                pending = self.flush_interceptor(
                    descriptor, segio.segio_index, pending
                )
            wave_size = self.max_concurrent_writes or len(pending) or 1
            now = self.clock.now
            elapsed = 0.0
            for wave_start in range(0, len(pending), wave_size):
                if cp is not None and wave_start:
                    # A crash here leaves earlier waves on media and later
                    # ones unwritten — the torn-stripe recovery scenario.
                    # The remaining fan-out travels with the hit so the
                    # injector can mark those units torn (modelling the
                    # checksums that make a half-written stripe detectable).
                    cp.hit(
                        "segwriter.mid-flush",
                        descriptor=descriptor,
                        remaining=pending[wave_start:],
                    )
                wave = pending[wave_start : wave_start + wave_size]
                wave_latency = 0.0
                for drive, device_offset, unit in wave:
                    # Later waves start after earlier ones complete, so no
                    # more than ``wave_size`` drives are programming at once
                    # (Section 4.4) and reads can reconstruct around them.
                    latency = drive.write(device_offset, unit, start_at=now + elapsed)
                    wave_latency = max(wave_latency, latency - elapsed)
                    self.flush_bytes_written += len(unit)
                elapsed += wave_latency
            if cp is not None:
                cp.hit("segwriter.post-flush", descriptor=descriptor)
        except BaseException:
            if flush_span is not None:
                obs.end(flush_span, crashed=True)
            raise
        if flush_span is not None:
            obs.end(flush_span, lat=elapsed, shards=len(pending))
        if obs is not None:
            obs.metrics.histogram("segio.flush.latency").record(elapsed)
        if skipped_shards and self.degrade is not None:
            # Written at reduced stripe width: count the repair debt so
            # rebuild burns it down instead of rediscovering it.
            self.degrade.note_degraded_stripe(descriptor.segment_id)
        self.segios_flushed += 1
        if self.on_segio_flushed is not None:
            self.on_segio_flushed(descriptor, segio)
        # The write units hold their own copies now; recycle the
        # accumulation buffer. (A crash above leaks it instead — the
        # pool must never hand out a buffer a torn flush still holds.)
        segio.release_buffer()
        self._segio = None
        return elapsed
