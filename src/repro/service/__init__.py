"""The block-service front end (ROADMAP item 2).

Per-tenant request queues, a deficit-weighted QoS scheduler with
token-bucket IOPS/bandwidth caps, ladder-driven admission control, and
a management API — wired above :class:`~repro.core.array.PurityArray`
or :class:`~repro.cluster.cluster.Cluster`, so the same front end
drives N=1 and cluster runs. See docs/SERVICE_PLANE.md for the
operator guide and docs/API.md for the endpoint reference.
"""

from repro.service.admission import SHED_CLASS, AdmissionController
from repro.service.api import ENDPOINTS, ManagementAPI
from repro.service.config import (
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    PRIORITY_WEIGHTS,
    QosSpec,
    ServiceConfig,
)
from repro.service.frontend import ServiceFrontend, TenantStats
from repro.service.qos import QosScheduler, TenantQueue
from repro.service.request import (
    OP_READ,
    OP_UNMAP,
    OP_WRITE,
    VERDICT_ADMIT,
    VERDICT_DELAY,
    VERDICT_SHED,
    Completion,
    Request,
)

__all__ = [
    "AdmissionController",
    "Completion",
    "DEFAULT_PRIORITY",
    "ENDPOINTS",
    "ManagementAPI",
    "OP_READ",
    "OP_UNMAP",
    "OP_WRITE",
    "PRIORITY_CLASSES",
    "PRIORITY_WEIGHTS",
    "QosScheduler",
    "QosSpec",
    "Request",
    "SHED_CLASS",
    "ServiceConfig",
    "ServiceFrontend",
    "TenantQueue",
    "TenantStats",
    "VERDICT_ADMIT",
    "VERDICT_DELAY",
    "VERDICT_SHED",
]
