"""Request and completion records for the service front end.

A :class:`Request` is one block operation a tenant submitted, stamped
with its arrival time on the sim clock. A :class:`Completion` is the
audited outcome: the admission verdict, when the op started service,
when it finished, and the end-to-end latency *including queue wait* —
the number the noisy-neighbor benchmark gates on.
"""

from dataclasses import dataclass, field

OP_READ = "read"
OP_WRITE = "write"
OP_UNMAP = "unmap"

OPS = (OP_READ, OP_WRITE, OP_UNMAP)

#: Writes (and unmaps) mutate state; admission treats them differently
#: from reads on the degraded rungs of the ladder.
MUTATING_OPS = frozenset({OP_WRITE, OP_UNMAP})

VERDICT_ADMIT = "admit"
VERDICT_DELAY = "delay"
VERDICT_SHED = "shed"


@dataclass
class Request:
    """One submitted block operation, not yet (or still) in queue."""

    seq: int
    tenant: str
    op: str
    volume: str
    offset: int
    length: int
    data: bytes | None
    arrival: float
    priority: str
    #: Earliest sim time the scheduler may dispatch this request
    #: (pushed past ``arrival`` by a DELAY verdict).
    eligible_at: float = 0.0
    #: Set by admission when the verdict was DELAY.
    delayed: bool = False
    delay_reason: str = ""

    @property
    def cost_bytes(self):
        """Bytes the op moves — the DRR / bandwidth-bucket cost."""
        if self.data is not None:
            return len(self.data)
        return self.length


@dataclass
class Completion:
    """The audited outcome of one request."""

    request: Request
    #: Final disposition: VERDICT_ADMIT (the op ran, possibly after a
    #: delay) or VERDICT_SHED (it never reached the backend).
    verdict: str
    reason: str = ""
    #: True when admission pushed ``eligible_at`` past the arrival.
    delayed: bool = False
    start: float = 0.0
    finish: float = 0.0
    error: str | None = None
    data: bytes | None = field(default=None, repr=False)

    @property
    def ok(self):
        return self.verdict == VERDICT_ADMIT and self.error is None

    @property
    def latency(self):
        """End-to-end latency: arrival to finish, queue wait included."""
        return self.finish - self.request.arrival

    @property
    def wait(self):
        """Time spent queued before service started."""
        return self.start - self.request.arrival
