"""Deficit-weighted round-robin QoS scheduler with token-bucket caps.

One :class:`TenantQueue` per tenant holds FIFO-ordered admitted
requests plus two optional :class:`~repro.degrade.backpressure.
TokenBucket` rate caps (ops/s and bytes/s on the sim clock). The
:class:`QosScheduler` picks the next dispatchable request with classic
deficit round robin (Shreedhar & Varghese): each visit tops a tenant's
deficit up by ``quantum * weight`` bytes and the tenant may dispatch
while its deficit covers the head request's byte cost. Weights come
from the priority class (gold 4 / silver 2 / bronze 1) unless the
:class:`~repro.service.config.QosSpec` overrides them, so at equal
backlog a gold tenant gets 4x the bandwidth share of a bronze one.

With ``qos_enabled=False`` the scheduler collapses to one global FIFO
in arrival order with no rate caps — the unbounded baseline the
noisy-neighbor benchmark measures against.

Everything is driven by explicit ``now`` arguments and the sim-clock
buckets; same seed, same tape, same schedule, byte for byte.
"""

from collections import deque

from repro.degrade.backpressure import TokenBucket

_EPS = 1e-12


def _bucket_ready_at(bucket, cost, now):
    """Earliest sim time ``bucket`` can cover ``cost`` tokens."""
    available = bucket.available()
    if available + _EPS >= cost:
        return now
    return now + (cost - available) / bucket.rate


class TenantQueue:
    """One tenant's FIFO of admitted requests plus its rate caps."""

    def __init__(self, tenant, spec, clock):
        self.tenant = tenant
        self.clock = clock
        self.pending = deque()
        self.deficit = 0.0
        self.dispatched = 0
        self.spec = None
        self.weight = 1.0
        self.iops_bucket = None
        self.bandwidth_bucket = None
        self.set_spec(spec)

    def set_spec(self, spec):
        """Apply a (new) QoS contract; buckets are rebuilt fresh."""
        self.spec = spec
        self.weight = spec.effective_weight
        if spec.iops_limit is not None:
            self.iops_bucket = TokenBucket(
                self.clock, spec.iops_limit, spec.burst_ops
            )
        else:
            self.iops_bucket = None
        if spec.bandwidth_limit is not None:
            self.bandwidth_bucket = TokenBucket(
                self.clock, spec.bandwidth_limit, spec.burst_bytes
            )
        else:
            self.bandwidth_bucket = None

    def push(self, request):
        self.pending.append(request)

    @property
    def depth(self):
        return len(self.pending)

    def head(self):
        return self.pending[0] if self.pending else None

    def head_ready_at(self, now):
        """Earliest time the head could dispatch; None when empty.

        Covers the admission delay (``eligible_at``) and both rate
        caps, but not the DRR deficit — deficit accrues instantly on
        scheduler visits, so it never gates the clock.
        """
        request = self.head()
        if request is None:
            return None
        ready = max(now, request.eligible_at)
        if self.iops_bucket is not None:
            ready = max(ready, _bucket_ready_at(self.iops_bucket, 1, now))
        if self.bandwidth_bucket is not None:
            ready = max(
                ready,
                _bucket_ready_at(
                    self.bandwidth_bucket, request.cost_bytes, now
                ),
            )
        return ready

    def dispatchable(self, now):
        """True when the head could run *now* (caps and delay aside
        from the DRR deficit)."""
        ready = self.head_ready_at(now)
        return ready is not None and ready <= now + _EPS

    def take_head(self):
        """Pop the head and charge the rate caps for it."""
        request = self.pending.popleft()
        if self.iops_bucket is not None:
            self.iops_bucket.try_take(1)
        if self.bandwidth_bucket is not None:
            self.bandwidth_bucket.try_take(request.cost_bytes)
        self.dispatched += 1
        if not self.pending:
            # Classic DRR: an emptied queue forfeits its deficit so an
            # idle tenant cannot bank bandwidth.
            self.deficit = 0.0
        return request


class QosScheduler:
    """Deficit round robin over tenant queues (or global FIFO)."""

    def __init__(self, clock, config):
        self.clock = clock
        self.config = config
        self.queues = {}
        self._order = []
        self._cursor = 0
        #: Whether the queue under the cursor has received its quantum
        #: for the current turn (credited once per visit, not per call).
        self._credited = False

    def add_tenant(self, tenant, spec):
        if tenant in self.queues:
            raise ValueError("tenant %r already registered" % tenant)
        queue = TenantQueue(tenant, spec, self.clock)
        self.queues[tenant] = queue
        self._order.append(queue)
        return queue

    def set_spec(self, tenant, spec):
        self.queues[tenant].set_spec(spec)

    def enqueue(self, request):
        self.queues[request.tenant].push(request)

    def queued(self):
        """Total requests waiting across every tenant."""
        return sum(queue.depth for queue in self._order)

    def queue_depth(self, tenant):
        return self.queues[tenant].depth

    def next_ready_time(self, now):
        """Earliest sim time any queued head becomes dispatchable.

        None when every queue is empty. This is what the front end
        advances the clock to when nothing can run right now.
        """
        ready = None
        for queue in self._order:
            head_ready = queue.head_ready_at(now)
            if head_ready is None:
                continue
            if ready is None or head_ready < ready:
                ready = head_ready
        return ready

    def next_request(self, now):
        """Pick and pop the next request to serve, or None.

        QoS off: the eligible head with the globally smallest sequence
        number — one FIFO in arrival order, caps ignored.

        QoS on: deficit round robin. The rotation is bounded: every
        full lap adds ``quantum * weight`` to at least one dispatchable
        queue, so the loop terminates once some deficit covers its
        head's cost.
        """
        if not self.config.qos_enabled:
            best_queue = None
            best_key = None
            for queue in self._order:
                request = queue.head()
                if request is None or request.eligible_at > now + _EPS:
                    continue
                # One global FIFO: strict arrival order (seq breaks
                # same-instant ties), regardless of submission order.
                key = (request.arrival, request.seq)
                if best_key is None or key < best_key:
                    best_queue = queue
                    best_key = key
            if best_queue is None:
                return None
            return best_queue.take_head()

        if not any(queue.dispatchable(now) for queue in self._order):
            return None
        quantum = float(self.config.quantum_bytes)
        while True:
            queue = self._order[self._cursor % len(self._order)]
            if not queue.dispatchable(now):
                self._end_turn()
                continue
            if not self._credited:
                # The quantum lands once per turn; the tenant then
                # serves while the banked deficit covers head costs.
                queue.deficit += quantum * queue.weight
                self._credited = True
            cost = float(queue.head().cost_bytes)
            if queue.deficit + _EPS < cost:
                self._end_turn()
                continue
            queue.deficit -= cost
            # The cursor stays put: the tenant keeps the floor while
            # its remaining deficit (and rate caps) allow.
            return queue.take_head()

    def _end_turn(self):
        self._cursor += 1
        self._credited = False

    def depths(self):
        """Insertion-ordered {tenant: queue depth} snapshot."""
        return {queue.tenant: queue.depth for queue in self._order}
