"""Service-plane configuration: QoS specs and front-end knobs.

The front end separates *policy* (this module: per-tenant limits,
priority classes, admission thresholds) from *mechanism* (the DRR
scheduler in :mod:`repro.service.qos` and the ladder-driven admission
controller in :mod:`repro.service.admission`). Both configs are frozen
dataclasses in the style of :class:`repro.core.config.ArrayConfig`:
module-level defaults, validated in ``__post_init__``, cheap to fork
with ``dataclasses.replace``.
"""

from dataclasses import dataclass

from repro.units import KIB

#: Priority classes, highest first. The class sets the default DRR
#: weight (gold gets 4x the bandwidth share of bronze at equal backlog)
#: and the shed order: under ladder pressure the *lowest* class is
#: delayed or shed first.
PRIORITY_CLASSES = ("gold", "silver", "bronze")

#: Default DRR weight per priority class.
PRIORITY_WEIGHTS = {"gold": 4, "silver": 2, "bronze": 1}

DEFAULT_PRIORITY = "silver"

#: Token-bucket burst defaults: how far a tenant may exceed its steady
#: rate after idling.
DEFAULT_BURST_OPS = 8
DEFAULT_BURST_BYTES = 256 * KIB

#: Per-tenant admission queue cap (requests, queued + delayed).
DEFAULT_MAX_QUEUE_DEPTH = 64

#: How long (sim seconds) a DELAY verdict holds a request back.
DEFAULT_ADMISSION_DELAY = 0.002

#: DRR quantum in bytes added per scheduling round per weight unit.
DEFAULT_QUANTUM_BYTES = 64 * KIB


@dataclass(frozen=True)
class QosSpec:
    """One tenant's QoS contract.

    ``iops_limit`` / ``bandwidth_limit`` are enforced by token buckets
    on the sim clock (ops per sim-second and bytes per sim-second);
    ``None`` means unlimited. ``weight`` overrides the priority-class
    DRR weight when set.
    """

    priority: str = DEFAULT_PRIORITY
    iops_limit: float | None = None
    bandwidth_limit: float | None = None
    weight: float | None = None
    burst_ops: int = DEFAULT_BURST_OPS
    burst_bytes: int = DEFAULT_BURST_BYTES

    def __post_init__(self):
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                "priority %r is not one of %s"
                % (self.priority, ", ".join(PRIORITY_CLASSES))
            )
        if self.iops_limit is not None and self.iops_limit <= 0:
            raise ValueError("iops_limit must be > 0 or None")
        if self.bandwidth_limit is not None and self.bandwidth_limit <= 0:
            raise ValueError("bandwidth_limit must be > 0 or None")
        if self.weight is not None and self.weight <= 0:
            raise ValueError("weight must be > 0 or None")

    @property
    def effective_weight(self):
        if self.weight is not None:
            return float(self.weight)
        return float(PRIORITY_WEIGHTS[self.priority])


@dataclass(frozen=True)
class ServiceConfig:
    """Front-end knobs shared by every tenant.

    ``qos_enabled=False`` degrades the scheduler to a single global
    FIFO with no rate limits — the "unbounded" baseline the noisy-
    neighbor benchmark compares against. ``admission_enabled=False``
    admits everything regardless of queue depth or ladder state.
    """

    qos_enabled: bool = True
    admission_enabled: bool = True
    quantum_bytes: int = DEFAULT_QUANTUM_BYTES
    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
    admission_delay: float = DEFAULT_ADMISSION_DELAY
    default_tenant: str = "default"

    def __post_init__(self):
        if self.quantum_bytes < 1:
            raise ValueError("quantum_bytes must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.admission_delay < 0:
            raise ValueError("admission_delay must be >= 0")
