"""The management API: the surface operators (and benches) drive.

Every endpoint is a plain method on :class:`ManagementAPI`, registered
under a dotted name in :data:`ENDPOINTS` by the :func:`endpoint`
decorator. The registry is the contract:

* ``api.call("volume.create", tenant="crm", volume="db0", size=...)``
  dispatches by name — what a wire protocol would do;
* ``docs/API.md`` documents exactly the registered names, and
  ``tests/service/test_api_docs.py`` fails when the two drift —
  adding an endpoint without documenting it breaks the build.

Endpoints are management-plane only (CRUD, QoS contracts, stats);
data-path I/O goes through :meth:`ServiceFrontend.submit` and the QoS
scheduler, never around it.
"""

from repro.core.telemetry import degraded_mode_report
from repro.service.config import QosSpec

#: endpoint name -> ManagementAPI method name.
ENDPOINTS = {}


def endpoint(name):
    """Register the decorated method under ``name`` in ENDPOINTS."""

    def wrap(func):
        ENDPOINTS[name] = func.__name__
        return func

    return wrap


class ManagementAPI:
    """Named management endpoints over one :class:`ServiceFrontend`."""

    def __init__(self, frontend):
        self.frontend = frontend
        self._calls = frontend.obs.metrics.counter("service.api.calls")

    def call(self, name, **kwargs):
        """Dispatch ``name`` from :data:`ENDPOINTS` with ``kwargs``."""
        method_name = ENDPOINTS.get(name)
        if method_name is None:
            raise KeyError("unknown endpoint %r" % name)
        self._calls.inc()
        obs = self.frontend.obs
        span = None
        if obs.tracing:
            span = obs.begin("service.api", endpoint=name)
        try:
            result = getattr(self, method_name)(**kwargs)
        except BaseException:
            if span is not None:
                obs.end(span, failed=True)
            raise
        if span is not None:
            obs.end(span)
        return result

    # ------------------------------------------------------------------
    # Volumes

    @endpoint("volume.create")
    def create_volume(self, tenant, volume, size):
        self.frontend.create_volume(tenant, volume, size)
        return {"volume": volume, "tenant": tenant, "size": size}

    @endpoint("volume.destroy")
    def destroy_volume(self, volume):
        self.frontend.backend.destroy_volume(volume)
        self.frontend.forget_volume(volume)
        return {"volume": volume, "destroyed": True}

    @endpoint("volume.list")
    def list_volumes(self, tenant=None):
        return self.frontend.volumes(tenant)

    @endpoint("volume.info")
    def volume_info(self, volume):
        return {
            "volume": volume,
            "tenant": self.frontend.volume_tenant(volume),
            "size": self.frontend.volume_size(volume),
            "snapshots": self._snapshot_names(volume),
        }

    # ------------------------------------------------------------------
    # Snapshots and clones

    @endpoint("snapshot.create")
    def create_snapshot(self, volume, snapshot):
        self.frontend.backend.snapshot(volume, snapshot)
        return {"volume": volume, "snapshot": snapshot}

    @endpoint("snapshot.destroy")
    def destroy_snapshot(self, volume, snapshot):
        self.frontend.backend.destroy_snapshot(volume, snapshot)
        return {"volume": volume, "snapshot": snapshot,
                "destroyed": True}

    @endpoint("snapshot.list")
    def list_snapshots(self, volume):
        return self._snapshot_names(volume)

    @endpoint("clone.create")
    def create_clone(self, volume, snapshot, new_volume, tenant=None):
        """Writable clone of a snapshot; same tenant unless overridden."""
        self.frontend.backend.clone(volume, snapshot, new_volume)
        owner = tenant or self.frontend.volume_tenant(volume) \
            or self.frontend.config.default_tenant
        self.frontend.adopt_volume(
            owner, new_volume, self.frontend.volume_size(volume)
        )
        return {"volume": new_volume, "tenant": owner,
                "parent": volume, "snapshot": snapshot}

    # ------------------------------------------------------------------
    # Tenants and QoS

    @endpoint("tenant.create")
    def create_tenant(self, tenant, priority="silver", iops_limit=None,
                      bandwidth_limit=None, weight=None):
        spec = QosSpec(priority=priority, iops_limit=iops_limit,
                       bandwidth_limit=bandwidth_limit, weight=weight)
        self.frontend.register_tenant(tenant, spec)
        return {"tenant": tenant, "priority": priority}

    @endpoint("tenant.set-qos")
    def set_qos(self, tenant, priority="silver", iops_limit=None,
                bandwidth_limit=None, weight=None):
        spec = QosSpec(priority=priority, iops_limit=iops_limit,
                       bandwidth_limit=bandwidth_limit, weight=weight)
        self.frontend.set_qos(tenant, spec)
        return {"tenant": tenant, "priority": priority}

    @endpoint("tenant.list")
    def list_tenants(self):
        return self.frontend.tenants()

    @endpoint("tenant.stats")
    def tenant_stats(self, tenant):
        return self.frontend.tenant_report(tenant)

    # ------------------------------------------------------------------
    # Array-wide telemetry

    @endpoint("array.reduction")
    def reduction_report(self):
        report = self.frontend.backend.reduction_report()
        return {
            "data_reduction": report.data_reduction,
            "dedup_ratio": report.dedup_ratio,
            "compression_ratio": report.compression_ratio,
            "thin_provisioning": report.thin_provisioning,
            "logical_live_bytes": report.logical_live_bytes,
            "physical_stored_bytes": report.physical_stored_bytes,
            "provisioned_bytes": report.provisioned_bytes,
        }

    @endpoint("array.health")
    def health_report(self):
        """Degraded-mode telemetry with the service section attached.

        Single array (or passthrough cluster): the full
        :func:`~repro.core.telemetry.degraded_mode_report`. Cluster:
        one ladder/liveness row per member plus the service section.
        """
        frontend = self.frontend
        backend = frontend.backend
        if not frontend._is_cluster:
            return degraded_mode_report(backend, service=frontend)
        if backend.passthrough:
            return degraded_mode_report(backend.solo, service=frontend)
        return {
            "nodes": {
                node_id: {
                    "alive": node.alive,
                    "ladder": node.array.degrade.state
                    if node.alive else None,
                }
                for node_id, node in backend.nodes.items()
            },
            "lost_volumes": sorted(backend.mdm.lost),
            "service": frontend.service_report(),
        }

    @endpoint("service.stats")
    def service_stats(self):
        return self.frontend.service_report()

    # ------------------------------------------------------------------

    def _snapshot_names(self, volume):
        frontend = self.frontend
        backend = frontend.backend
        if not frontend._is_cluster:
            return backend.volumes.snapshot_names(volume)
        if backend.passthrough:
            return backend.solo.volumes.snapshot_names(volume)
        primary = backend.mdm.routing(volume)[0]
        return backend.nodes[primary].array.volumes.snapshot_names(volume)
