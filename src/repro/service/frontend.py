"""The block-service front end: tenant queues over array or cluster.

:class:`ServiceFrontend` is the layer between tenants and the engine:
requests are *submitted* with an arrival time on the sim clock, pass
admission control (:mod:`repro.service.admission`), wait in per-tenant
queues under the deficit-weighted QoS scheduler
(:mod:`repro.service.qos`), and are then dispatched one at a time to
the backend — a :class:`~repro.core.array.PurityArray` or a
:class:`~repro.cluster.cluster.Cluster`; the verbs match, so the same
front end drives N=1 and cluster runs.

The dispatch loop is an explicit discrete-event simulation: serve
whatever the scheduler allows now; when nothing is dispatchable,
advance the clock to the next interesting instant (next arrival, next
admission-delay expiry, or next token-bucket refill). On a cluster
backend the advance runs the event loop, so heartbeats and refresh
copies interleave with front-end waits exactly as they would with raw
client I/O. No wall clock, no randomness: the same tape produces the
same schedule byte for byte.

Latency accounting is end to end: a completion's ``latency`` runs from
*arrival* to *finish* and therefore includes queue wait — the number
the noisy-neighbor benchmark gates on, and the honest one for a
consolidation story.
"""

from repro.errors import PurityError
from repro.service.admission import AdmissionController
from repro.service.config import QosSpec, ServiceConfig
from repro.service.qos import QosScheduler
from repro.service.request import (
    MUTATING_OPS,
    OP_READ,
    OP_WRITE,
    OPS,
    VERDICT_ADMIT,
    VERDICT_DELAY,
    VERDICT_SHED,
    Completion,
    Request,
)

_EPS = 1e-12


class TenantStats:
    """Per-tenant accounting the mgmt API and reports read."""

    __slots__ = (
        "tenant", "submitted", "admitted", "delayed", "shed",
        "dispatched", "errors", "reads", "writes", "bytes_read",
        "bytes_written", "latencies", "waits", "read_latencies",
    )

    def __init__(self, tenant):
        self.tenant = tenant
        self.submitted = 0
        self.admitted = 0
        self.delayed = 0
        self.shed = 0
        self.dispatched = 0
        self.errors = 0
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.latencies = []
        self.waits = []
        self.read_latencies = []

    @staticmethod
    def _percentile(values, fraction):
        if not values:
            return None
        ordered = sorted(values)
        rank = min(len(ordered) - 1,
                   int(fraction * (len(ordered) - 1) + 0.5))
        return ordered[rank]

    def latency_percentile(self, fraction, reads_only=False):
        values = self.read_latencies if reads_only else self.latencies
        return self._percentile(values, fraction)

    def wait_percentile(self, fraction):
        return self._percentile(self.waits, fraction)

    def report(self):
        """Plain-dict snapshot (see docs/SERVICE_PLANE.md for fields)."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "delayed": self.delayed,
            "shed": self.shed,
            "dispatched": self.dispatched,
            "errors": self.errors,
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "latency_p50": self.latency_percentile(0.50),
            "latency_p99": self.latency_percentile(0.99),
            "read_latency_p99": self.latency_percentile(
                0.99, reads_only=True
            ),
            "wait_p99": self.wait_percentile(0.99),
        }


class ServiceFrontend:
    """Per-tenant queues + QoS + admission over one backend."""

    def __init__(self, backend, config=None, obs=None):
        self.backend = backend
        self.config = config or ServiceConfig()
        self.clock = backend.clock
        self.obs = obs if obs is not None else backend.obs
        self.scheduler = QosScheduler(self.clock, self.config)
        self.admission = AdmissionController(self.config)
        self._is_cluster = hasattr(backend, "pump")
        self._seq = 0
        #: Submitted-but-not-ingested requests, kept sorted by
        #: (arrival, seq) lazily at run() time.
        self._backlog = []
        self.completions = []
        self.stats = {}
        #: volume -> owning tenant.
        self._volume_tenant = {}
        self._volume_sizes = {}
        metrics = self.obs.metrics
        self._m_submitted = metrics.counter("service.submitted")
        self._m_admitted = metrics.counter("service.admitted")
        self._m_delayed = metrics.counter("service.delayed")
        self._m_shed = metrics.counter("service.shed")
        self._m_dispatched = metrics.counter("service.dispatched")
        self._m_errors = metrics.counter("service.errors")
        self._m_wait = metrics.histogram("service.wait.latency")
        self._m_latency = metrics.histogram("service.request.latency")

    # ------------------------------------------------------------------
    # Tenants and volumes

    def register_tenant(self, tenant, spec=None):
        spec = spec or QosSpec()
        self.scheduler.add_tenant(tenant, spec)
        self.stats[tenant] = TenantStats(tenant)
        return spec

    def set_qos(self, tenant, spec):
        """Replace a tenant's QoS contract (buckets restart fresh)."""
        self.scheduler.set_spec(tenant, spec)

    def tenants(self):
        return list(self.scheduler.queues)

    def tenant_spec(self, tenant):
        return self.scheduler.queues[tenant].spec

    def _ensure_tenant(self, tenant):
        if tenant not in self.scheduler.queues:
            self.register_tenant(tenant)

    def create_volume(self, tenant, volume, size):
        self._ensure_tenant(tenant)
        self.backend.create_volume(volume, size)
        self._volume_tenant[volume] = tenant
        self._volume_sizes[volume] = size

    def adopt_volume(self, tenant, volume, size):
        """Track an externally-created volume (e.g. a clone)."""
        self._ensure_tenant(tenant)
        self._volume_tenant[volume] = tenant
        self._volume_sizes[volume] = size

    def forget_volume(self, volume):
        self._volume_tenant.pop(volume, None)
        self._volume_sizes.pop(volume, None)

    def volume_tenant(self, volume):
        return self._volume_tenant.get(volume)

    def volume_size(self, volume):
        return self._volume_sizes.get(volume)

    def volumes(self, tenant=None):
        """Tracked volumes, optionally filtered by owning tenant."""
        return [volume for volume, owner in self._volume_tenant.items()
                if tenant is None or owner == tenant]

    # ------------------------------------------------------------------
    # Submission

    def submit(self, op, volume, offset=0, data=None, length=0, at=None):
        """Queue one block operation; returns its :class:`Request`.

        ``at`` is the arrival time on the sim clock (defaults to, and
        is clamped to, *now*). Nothing touches the backend until
        :meth:`run` dispatches it.
        """
        if op not in OPS:
            raise ValueError("unknown op %r" % op)
        if op == OP_WRITE and data is None:
            raise ValueError("a write needs data")
        tenant = self._volume_tenant.get(volume)
        if tenant is None:
            tenant = self.config.default_tenant
            self._ensure_tenant(tenant)
        arrival = self.clock.now if at is None else max(at, self.clock.now)
        self._seq += 1
        request = Request(
            seq=self._seq, tenant=tenant, op=op, volume=volume,
            offset=offset, length=length, data=data, arrival=arrival,
            priority=self.scheduler.queues[tenant].spec.priority,
            eligible_at=arrival,
        )
        self._backlog.append(request)
        return request

    def submit_read(self, volume, offset, length, at=None):
        return self.submit(OP_READ, volume, offset, length=length, at=at)

    def submit_write(self, volume, offset, data, at=None):
        return self.submit(OP_WRITE, volume, offset, data=data, at=at)

    # ------------------------------------------------------------------
    # The dispatch loop

    def run(self, until=None):
        """Serve queued work in sim-time order; returns new completions.

        Runs until the backlog and queues are empty, or — when
        ``until`` is given — until serving would require advancing the
        clock past it (leftover work stays queued for the next call).
        """
        done_before = len(self.completions)
        self._backlog.sort(key=lambda r: (r.arrival, r.seq))
        backlog = self._backlog
        index = 0
        while True:
            now = self.clock.now
            while index < len(backlog) \
                    and backlog[index].arrival <= now + _EPS:
                self._ingest(backlog[index])
                index += 1
            request = self.scheduler.next_request(now)
            if request is not None:
                self._dispatch(request)
                continue
            # Nothing dispatchable: find the next interesting instant.
            next_arrival = backlog[index].arrival \
                if index < len(backlog) else None
            next_ready = self.scheduler.next_ready_time(now)
            candidates = [t for t in (next_arrival, next_ready)
                          if t is not None]
            if not candidates:
                break
            target = min(candidates)
            if until is not None and target > until + _EPS:
                break
            self._advance_to(max(target, now))
        del backlog[:index]
        return self.completions[done_before:]

    def drain(self):
        """Serve everything, then flush the backend's own pipeline."""
        completions = self.run()
        if not self._is_cluster:
            self.backend.drain()
        return completions

    def _advance_to(self, target):
        delta = target - self.clock.now
        if delta <= 0:
            return
        if self._is_cluster:
            # Run the cluster's event loop so heartbeats, failure
            # detection, and refresh copies fire during the wait.
            self.backend.advance(delta)
        else:
            self.clock.advance(delta)

    def _signals(self, volume):
        """The backend's live (degrade engine, rebuild governor) for
        ``volume``, or (None, None) when they cannot be resolved."""
        backend = self.backend
        if not self._is_cluster:
            return backend.degrade, backend.rebuild_governor
        if backend.passthrough:
            solo = backend.solo
            return solo.degrade, solo.rebuild_governor
        try:
            replicas = backend.mdm.routing(volume)
        except PurityError:
            return None, None
        if not replicas:
            return None, None
        node = backend.nodes[replicas[0]]
        if not node.alive:
            return None, None
        return node.array.degrade, node.array.rebuild_governor

    def _ingest(self, request):
        stats = self.stats[request.tenant]
        stats.submitted += 1
        self._m_submitted.inc()
        degrade, governor = self._signals(request.volume)
        verdict, reason = self.admission.decide(
            request, self.scheduler.queue_depth(request.tenant),
            degrade=degrade, governor=governor,
        )
        if verdict == VERDICT_SHED:
            stats.shed += 1
            self._m_shed.inc()
            if self.obs.tracing:
                self.obs.event("service.shed", tenant=request.tenant,
                               volume=request.volume, op=request.op,
                               reason=reason)
            now = self.clock.now
            self.completions.append(Completion(
                request=request, verdict=VERDICT_SHED, reason=reason,
                start=now, finish=now,
            ))
            return
        if verdict == VERDICT_DELAY:
            request.delayed = True
            request.delay_reason = reason
            stats.delayed += 1
            self._m_delayed.inc()
            request.eligible_at = self.clock.now \
                + self.config.admission_delay
            if self.obs.tracing:
                self.obs.event("service.delay", tenant=request.tenant,
                               volume=request.volume, op=request.op,
                               reason=reason)
        stats.admitted += 1
        self._m_admitted.inc()
        self.scheduler.enqueue(request)

    def _dispatch(self, request):
        start = self.clock.now
        span = None
        if self.obs.tracing:
            span = self.obs.begin(
                "service.%s" % request.op, tenant=request.tenant,
                volume=request.volume, nbytes=request.cost_bytes,
            )
        error = None
        data = None
        try:
            if request.op == OP_READ:
                data, _lat = self.backend.read(
                    request.volume, request.offset, request.length,
                    advance_clock=True,
                )
            elif request.op == OP_WRITE:
                self.backend.write(request.volume, request.offset,
                                   request.data, advance_clock=True)
            else:
                self.backend.unmap(request.volume, request.offset,
                                   request.length)
        except PurityError as exc:
            error = "%s: %s" % (type(exc).__name__, exc)
        finish = self.clock.now
        if span is not None:
            self.obs.end(span, lat=finish - start,
                         failed=error is not None)
        stats = self.stats[request.tenant]
        stats.dispatched += 1
        self._m_dispatched.inc()
        if error is not None:
            stats.errors += 1
            self._m_errors.inc()
        else:
            if request.op == OP_READ:
                stats.reads += 1
                stats.bytes_read += request.length
            elif request.op in MUTATING_OPS:
                stats.writes += 1
                stats.bytes_written += request.cost_bytes
        completion = Completion(
            request=request, verdict=VERDICT_ADMIT,
            reason=request.delay_reason, delayed=request.delayed,
            start=start, finish=finish, error=error, data=data,
        )
        wait = completion.wait
        latency = completion.latency
        stats.waits.append(wait)
        stats.latencies.append(latency)
        if request.op == OP_READ and error is None:
            stats.read_latencies.append(latency)
        self._m_wait.record(wait)
        self._m_latency.record(latency)
        metrics = self.obs.metrics
        metrics.histogram(
            "service.request.latency.%s" % request.tenant
        ).record(latency)
        self.completions.append(completion)
        return completion

    # ------------------------------------------------------------------
    # Telemetry

    def queue_depths(self):
        return self.scheduler.depths()

    def observe_sample(self):
        """Sample the queue-depth series (total and per tenant)."""
        now = self.clock.now
        metrics = self.obs.metrics
        metrics.series("service.queue_depth").sample(
            now, self.scheduler.queued()
        )
        for tenant, depth in self.scheduler.depths().items():
            metrics.series(
                "service.queue_depth.%s" % tenant
            ).sample(now, depth)

    def tenant_report(self, tenant):
        report = self.stats[tenant].report()
        report["queue_depth"] = self.scheduler.queue_depth(tenant)
        spec = self.scheduler.queues[tenant].spec
        report["priority"] = spec.priority
        report["iops_limit"] = spec.iops_limit
        report["bandwidth_limit"] = spec.bandwidth_limit
        return report

    def service_report(self):
        """Front-end-wide snapshot (see docs/SERVICE_PLANE.md)."""
        return {
            "qos_enabled": self.config.qos_enabled,
            "admission_enabled": self.config.admission_enabled,
            "queued": self.scheduler.queued(),
            "completions": len(self.completions),
            "admission": self.admission.report(),
            "tenants": {
                tenant: self.tenant_report(tenant)
                for tenant in self.scheduler.queues
            },
        }
