"""Admission control driven by the degradation ladder and governor.

The front end never invents its own health signals: it reads the
array's :class:`~repro.degrade.engine.DegradeEngine` rung and the
:class:`~repro.degrade.backpressure.RebuildGovernor` throttle bit —
the exact signals the degraded-mode layer (PR 7) already maintains —
and turns them into per-request verdicts:

========================  =====================================
ladder rung / signal      verdict
========================  =====================================
queue at max depth        SHED (``queue-full``), any op
``read-only``             SHED (``read-only``) for mutating ops
``reduced-parity``        SHED (``reduced-parity``) for bronze
                          mutating ops; everyone else admitted
``nvram-degraded``        DELAY (``nvram-degraded``) for
                          mutating ops — writes are in slow
                          write-through anyway
governor throttled        DELAY (``rebuild-pressure``) for
                          bronze, any op — rebuild is losing
                          its SLO race; shed load politely
``normal``                ADMIT
========================  =====================================

Reads are always admitted while the queue has room and data may still
exist: the ladder's contract is that reads stay served on every rung.
A DELAY verdict pushes the request's ``eligible_at`` out by the
configured ``admission_delay``; a SHED verdict completes it
immediately with no backend work.
"""

from repro.degrade.ladder import NVRAM_DEGRADED, READ_ONLY, REDUCED_PARITY
from repro.service.config import PRIORITY_CLASSES
from repro.service.request import (
    MUTATING_OPS,
    VERDICT_ADMIT,
    VERDICT_DELAY,
    VERDICT_SHED,
)

#: The class shed/delayed first under pressure: the lowest one.
SHED_CLASS = PRIORITY_CLASSES[-1]


class AdmissionController:
    """Turns ladder/governor state into ADMIT / DELAY / SHED verdicts."""

    def __init__(self, config):
        self.config = config
        self.admitted = 0
        self.delayed = 0
        self.shed = 0
        #: Insertion-ordered {reason: count} over non-ADMIT verdicts.
        self.reasons = {}

    def decide(self, request, queue_depth, degrade=None, governor=None):
        """Verdict for one request given its tenant's queue depth.

        ``degrade`` / ``governor`` are the backend's live signal
        objects (or None when the backend cannot resolve them, e.g. a
        routed-to node is down — the cluster client will surface that
        error itself, so the request is admitted).
        """
        verdict, reason = self._decide(
            request, queue_depth, degrade, governor
        )
        if verdict == VERDICT_ADMIT:
            self.admitted += 1
        else:
            if verdict == VERDICT_DELAY:
                self.delayed += 1
            else:
                self.shed += 1
            self.reasons[reason] = self.reasons.get(reason, 0) + 1
        return verdict, reason

    def _decide(self, request, queue_depth, degrade, governor):
        if not self.config.admission_enabled:
            return VERDICT_ADMIT, ""
        if queue_depth >= self.config.max_queue_depth:
            return VERDICT_SHED, "queue-full"
        mutating = request.op in MUTATING_OPS
        state = degrade.state if degrade is not None else None
        if state == READ_ONLY and mutating:
            return VERDICT_SHED, "read-only"
        if state == REDUCED_PARITY and mutating \
                and request.priority == SHED_CLASS:
            return VERDICT_SHED, "reduced-parity"
        if state == NVRAM_DEGRADED and mutating:
            return VERDICT_DELAY, "nvram-degraded"
        if governor is not None and governor.enabled \
                and governor.throttled and request.priority == SHED_CLASS:
            return VERDICT_DELAY, "rebuild-pressure"
        return VERDICT_ADMIT, ""

    def report(self):
        return {
            "admitted": self.admitted,
            "delayed": self.delayed,
            "shed": self.shed,
            "reasons": dict(self.reasons),
        }
