"""DegradeEngine: the façade the array wires through its data path.

One engine instance per array owns the :class:`DegradationLadder` and
:class:`RepairDebtLedger` and translates substrate events into ladder
conditions:

- an NVRAM mirror tear (or a boot onto a torn NVRAM) raises
  ``nvram-torn`` → the write path drops to write-through (every commit
  is pushed straight to flash) until a checkpoint repairs the mirror;
- a failed drive or a stripe flushed at reduced width raises
  ``parity-reduced`` → writes continue, every degraded stripe is
  charged to the ledger, and rebuild settles the debt;
- detected beyond-parity loss raises ``detected-loss`` → the array pins
  read-only (writes raise :class:`ReadOnlyModeError`; reads keep being
  served and report loss honestly).

De-escalation only ever happens through the matching ``note_*`` repair
call — checkpoint for NVRAM, completed rebuild for parity, an explicit
operator acknowledgement for loss — which is what makes the ladder's
"never descends except via repair" property testable.
"""

from repro.degrade.ladder import (
    COND_LOSS,
    COND_NVRAM,
    COND_PARITY,
    READ_ONLY,
    DegradationLadder,
    RepairDebtLedger,
)
from repro.errors import ReadOnlyModeError


class DegradeEngine:
    """Tracks array-wide degradation state and repair debt."""

    def __init__(self, clock, obs=None):
        self.clock = clock
        self.obs = obs
        self.ladder = DegradationLadder(clock, obs=obs)
        self.debt = RepairDebtLedger(obs=obs)
        self._degraded_segments = set()
        self._failed_drives = set()
        self.write_through_drains = 0

    # -- state views ---------------------------------------------------
    @property
    def state(self):
        return self.ladder.state

    @property
    def read_only(self):
        return self.ladder.state == READ_ONLY

    @property
    def write_through(self):
        """True while the NVRAM mirror is torn: commits flush eagerly."""
        return self.ladder.has_condition(COND_NVRAM)

    nvram_degraded = write_through

    @property
    def degraded_segments(self):
        return frozenset(self._degraded_segments)

    @property
    def failed_drives(self):
        return frozenset(self._failed_drives)

    def check_writable(self):
        """Raise :class:`ReadOnlyModeError` when the ladder pins writes."""
        if self.read_only:
            raise ReadOnlyModeError(
                "array is read-only (degradation ladder at %r): %s"
                % (self.ladder.state, self.ladder.condition_reason(COND_LOSS))
            )

    # -- damage intake -------------------------------------------------
    def note_drive_failed(self, drive_name):
        self._failed_drives.add(drive_name)
        self.ladder.raise_condition(
            COND_PARITY, "drive-failed:%s" % drive_name
        )

    def note_unsurvivable(self, reason):
        """Detected beyond-parity damage: pin the array read-only."""
        self.ladder.raise_condition(COND_LOSS, reason)

    def note_nvram_tear(self, pending_records=0):
        """The NVRAM mirror tore; ``pending_records`` need replay."""
        self.ladder.raise_condition(COND_NVRAM, "nvram-tear")
        if pending_records:
            self.debt.charge("nvram-replay", pending_records)

    def note_degraded_stripe(self, segment_id):
        """A stripe exists at reduced width (flush skipped failed drives
        or a rebuild scan found a placement on a missing drive)."""
        if segment_id not in self._degraded_segments:
            self._degraded_segments.add(segment_id)
            self.debt.charge("segments")
        self.ladder.raise_condition(
            COND_PARITY, "degraded-stripe:%d" % segment_id
        )

    # -- repair completion ---------------------------------------------
    def note_write_through_drain(self):
        """A write-through commit reached flash: replay debt is moot."""
        self.write_through_drains += 1
        self.debt.settle_all("nvram-replay")
        if self.obs is not None:
            self.obs.metrics.counter("degrade.write_through").inc()

    def note_nvram_repaired(self):
        """Checkpoint persisted everything the torn mirror covered."""
        self.debt.settle_all("nvram-replay")
        self.ladder.clear_condition(COND_NVRAM, "checkpoint-repair")

    def note_segment_reprotected(self, segment_id):
        """Rebuild/GC rewrote one degraded stripe at full width."""
        if segment_id in self._degraded_segments:
            self._degraded_segments.discard(segment_id)
            self.debt.settle("segments")

    def note_parity_restored(self):
        """A full rebuild pass found nothing degraded on live drives."""
        self._failed_drives.clear()
        self._degraded_segments.clear()
        self.debt.settle_all("segments")
        self.ladder.clear_condition(COND_PARITY, "rebuild-complete")

    def acknowledge_loss_repair(self, reason="operator-verified"):
        """Operator-style acknowledgement that lost ranges were handled
        (restored from replica or accepted); re-enables writes."""
        self.ladder.clear_condition(COND_LOSS, reason)

    # -- reporting -----------------------------------------------------
    def report(self):
        return {
            "state": self.ladder.state,
            "rung": self.ladder.rung,
            "conditions": {
                cond: self.ladder.condition_reason(cond)
                for cond in self.ladder.active_conditions()
            },
            "transitions": len(self.ladder.transitions),
            "write_through": self.write_through,
            "write_through_drains": self.write_through_drains,
            "repair_debt": self.debt.snapshot(),
            "degraded_segments": sorted(self._degraded_segments),
            "failed_drives": sorted(self._failed_drives),
        }
