"""Degraded-mode operation layer.

Purity's availability story (PAPER.md §reads/§availability) is that the
array *reacts* to component trouble instead of waiting it out: reads
reconstruct around busy or sick drives, writes keep flowing at reduced
protection through failures, and background repair is throttled so it
never ruins foreground latency. This package is that reaction layer:

- :mod:`repro.degrade.ladder` — the explicit write-path degradation
  state machine (``normal → nvram-degraded → reduced-parity →
  read-only``) plus the repair-debt ledger that tracks what must be
  burned down before a rung can be descended.
- :mod:`repro.degrade.hedge` — the deadline-aware hedged-read policy
  consulted by ``segreader`` before every direct device read.
- :mod:`repro.degrade.backpressure` — the token-bucket rebuild governor
  that throttles segment evacuation when foreground p99 crosses the
  configured SLO.
- :mod:`repro.degrade.engine` — :class:`DegradeEngine`, the façade the
  array wires through datapath/segwriter/recovery/rebuild.

Everything here runs on the sim clock and is deterministic: policies
only *read* device state (never mutate it), so same-seed traces are
byte-identical with hedging on or off when no hedge fires.
"""

from repro.degrade.backpressure import RebuildGovernor, TokenBucket
from repro.degrade.engine import DegradeEngine
from repro.degrade.hedge import HedgePolicy
from repro.degrade.ladder import (
    COND_LOSS,
    COND_NVRAM,
    COND_PARITY,
    LADDER_STATES,
    NORMAL,
    NVRAM_DEGRADED,
    READ_ONLY,
    REDUCED_PARITY,
    DegradationLadder,
    LadderTransition,
    RepairDebtLedger,
)

__all__ = [
    "COND_LOSS",
    "COND_NVRAM",
    "COND_PARITY",
    "DegradationLadder",
    "DegradeEngine",
    "HedgePolicy",
    "LADDER_STATES",
    "LadderTransition",
    "NORMAL",
    "NVRAM_DEGRADED",
    "READ_ONLY",
    "REDUCED_PARITY",
    "RebuildGovernor",
    "RepairDebtLedger",
    "TokenBucket",
]
