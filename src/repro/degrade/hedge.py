"""Deadline-aware hedged-read policy.

Paper §4.4: a read never waits on a drive that is busy with a program
or erase — it reconstructs the data from the other shards instead. The
existing read scheduler already *avoids* drives it knows are writing;
this policy covers the remaining tail: drives that are stalling for
reasons the scheduler cannot see up front (injected stall storms, deep
die queues, suspect devices). When the *predicted* wait for a direct
read crosses the configured sim-clock deadline — or the target drive is
already suspect — the segment reader races a parity-reconstruct path
against the direct read and adopts whichever completes first.

Determinism contract: :meth:`should_hedge` is pure. It only reads
device/health state (via :meth:`SimulatedSSD.estimated_read_wait`,
itself non-mutating) and draws no randomness, so a run where no hedge
fires is byte-identical to the same run with hedging disabled.
"""


class HedgePolicy:
    """Decides when to race reconstruction against a direct read."""

    def __init__(self, clock, deadline, health=None, obs=None, enabled=True):
        self.clock = clock
        self.deadline = deadline
        self.health = health
        self.obs = obs
        self.enabled = enabled
        #: Outcome counters (mirrored to ``hedge.*`` metrics).
        self.fired = 0
        self.won = 0
        self.lost = 0
        #: Device reads issued by losing arms — the cost of hedging.
        self.wasted = 0

    def predicted_wait(self, drive, offset):
        """The drive's own estimate of queueing/stall delay (pure)."""
        estimate = getattr(drive, "estimated_read_wait", None)
        if estimate is None:
            return 0.0
        return estimate(offset)

    def would_wait(self, drive, offset):
        """Deadline check alone — used to rank reconstruction sources.

        Deliberately independent of :attr:`enabled` so the candidate
        ordering inside reconstruction is identical with hedging on or
        off (part of the differential-trace guarantee).
        """
        return self.predicted_wait(drive, offset) >= self.deadline

    def should_hedge(self, drive, offset):
        """True when a direct read of ``offset`` deserves a hedge."""
        if not self.enabled:
            return False
        health = self.health
        if health is not None and health.is_suspect(drive.name):
            return True
        return self.would_wait(drive, offset)

    def note_fired(self):
        self.fired += 1
        self._counter("hedge.fired")

    def note_outcome(self, won, wasted):
        """Record which arm was adopted and what the loser cost."""
        if won:
            self.won += 1
            self._counter("hedge.won")
        else:
            self.lost += 1
            self._counter("hedge.lost")
        if wasted:
            self.wasted += wasted
            self._counter("hedge.wasted", wasted)

    def report(self):
        return {
            "enabled": self.enabled,
            "deadline": self.deadline,
            "fired": self.fired,
            "won": self.won,
            "lost": self.lost,
            "wasted": self.wasted,
        }

    def _counter(self, name, amount=1):
        if self.obs is not None:
            self.obs.metrics.counter(name).inc(amount)
