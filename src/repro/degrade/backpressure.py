"""Rebuild/scrub backpressure: a sim-clock token bucket with an SLO eye.

Rebuild after a drive failure is a race (the paper rebuilds "as fast as
the drives allow") — but an enterprise array must not win that race by
destroying foreground latency. The governor meters segment evacuations
through a token bucket whose refill rate switches between a full and a
throttled rate based on whether the recent foreground read p99 is
meeting the configured SLO, mirroring the rebuild rate-limiting of
production scale-out block stores.

Everything runs on the sim clock (lazy refill at query time), draws no
randomness, and — when the SLO is ``None`` (the default) — grants every
request without touching a single metric, keeping default-config runs
byte-identical to the pre-governor code.
"""


class TokenBucket:
    """Deterministic token bucket refilled lazily from the sim clock."""

    def __init__(self, clock, rate, burst):
        if rate <= 0 or burst < 1:
            raise ValueError("token bucket needs rate > 0 and burst >= 1")
        self.clock = clock
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at = clock.now

    def set_rate(self, rate):
        """Switch refill rate; accrues at the old rate up to now first."""
        if rate <= 0:
            raise ValueError("token bucket rate must be > 0")
        self._refill()
        self.rate = float(rate)

    def available(self):
        self._refill()
        return self._tokens

    def try_take(self, tokens=1):
        """Consume ``tokens`` if available; never blocks or waits."""
        self._refill()
        if self._tokens + 1e-12 < tokens:
            return False
        self._tokens -= tokens
        return True

    def _refill(self):
        now = self.clock.now
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now


class RebuildGovernor:
    """Grants or defers repair I/O based on foreground latency health.

    ``slo_p99=None`` disables the governor entirely: :meth:`grant`
    always succeeds and no metric is ever created, so default configs
    are bit-for-bit unchanged.
    """

    def __init__(self, clock, slo_p99=None, full_rate=None, throttled_rate=None,
                 burst=None, window=None, obs=None):
        self.clock = clock
        self.slo_p99 = slo_p99
        self.obs = obs
        self.enabled = slo_p99 is not None
        self.deferred = 0
        self.granted = 0
        if not self.enabled:
            self.full_rate = self.throttled_rate = None
            self._bucket = None
            self._window = None
            return
        self.full_rate = float(full_rate)
        self.throttled_rate = float(throttled_rate)
        self._bucket = TokenBucket(clock, self.full_rate, burst)
        self._window_size = int(window)
        self._window = []
        self.throttled = False

    def observe_read_latency(self, latency):
        """Feed one foreground read latency into the sliding window."""
        if not self.enabled:
            return
        window = self._window
        window.append(latency)
        if len(window) > self._window_size:
            del window[0]

    def foreground_p99(self):
        """Exact p99 over the window (nearest-rank); None when empty."""
        if not self.enabled or not self._window:
            return None
        ordered = sorted(self._window)
        rank = min(len(ordered) - 1, int(0.99 * (len(ordered) - 1) + 0.5))
        return ordered[rank]

    def grant(self, tokens=1):
        """True if a repair operation may run now; False = defer it."""
        if not self.enabled:
            return True
        self._retune()
        if self._bucket.try_take(tokens):
            self.granted += 1
            return True
        self.deferred += 1
        return False

    def report(self):
        return {
            "enabled": self.enabled,
            "slo_p99": self.slo_p99,
            "throttled": self.enabled and self.throttled,
            "granted": self.granted,
            "deferred": self.deferred,
            "foreground_p99": self.foreground_p99(),
        }

    def _retune(self):
        p99 = self.foreground_p99()
        throttled = p99 is not None and p99 > self.slo_p99
        if throttled != self.throttled:
            self.throttled = throttled
            rate = self.throttled_rate if throttled else self.full_rate
            self._bucket.set_rate(rate)
            if self.obs is not None:
                self.obs.metrics.gauge("rebuild.throttle_rate").set(rate)
