"""The write-path degradation ladder and repair-debt ledger.

The ladder replaces ad-hoc "is anything broken?" checks with one
explicit state machine:

    normal -> nvram-degraded -> reduced-parity -> read-only

Each rung is *evidence-driven*: a condition (torn NVRAM mirror, failed
drive, detected unsurvivable loss) is raised when the substrate shows
it and cleared only when the matching repair completes. The ladder
state is always the highest rung any active condition demands, and the
machine moves one adjacent rung at a time — never skipping a state in
either direction — so observers see every intermediate mode. Descent
can only ever be caused by :meth:`DegradationLadder.clear_condition`,
i.e. by explicit repair completion; no amount of additional damage
moves the ladder down.

The :class:`RepairDebtLedger` rides along: every degraded artifact
(an NVRAM record that must be replayed, a stripe written at reduced
width) is *counted* when created and settled when repaired, so "how
much repair is outstanding" is a first-class, observable number rather
than something a scrub pass discovers by accident.
"""

from dataclasses import dataclass

#: Ladder states, least to most degraded. The string values are the
#: client-visible mode names used in reports, events, and gauges.
NORMAL = "normal"
NVRAM_DEGRADED = "nvram-degraded"
REDUCED_PARITY = "reduced-parity"
READ_ONLY = "read-only"

LADDER_STATES = (NORMAL, NVRAM_DEGRADED, REDUCED_PARITY, READ_ONLY)

#: state -> rung index (0 = healthy).
RUNG = {state: index for index, state in enumerate(LADDER_STATES)}

#: Conditions that pin the ladder at (at least) a given rung.
COND_NVRAM = "nvram-torn"
COND_PARITY = "parity-reduced"
COND_LOSS = "detected-loss"

_CONDITION_RUNG = {
    COND_NVRAM: RUNG[NVRAM_DEGRADED],
    COND_PARITY: RUNG[REDUCED_PARITY],
    COND_LOSS: RUNG[READ_ONLY],
}


@dataclass(frozen=True)
class LadderTransition:
    """One single-rung step of the ladder, stamped in sim time."""

    time: float
    from_state: str
    to_state: str
    reason: str

    @property
    def upward(self):
        return RUNG[self.to_state] > RUNG[self.from_state]


class DegradationLadder:
    """Condition-driven state machine over :data:`LADDER_STATES`."""

    def __init__(self, clock, obs=None):
        self.clock = clock
        self.obs = obs
        self.state = NORMAL
        #: Every step ever taken, in order (adjacent rungs only).
        self.transitions = []
        self._conditions = {}

    @property
    def rung(self):
        return RUNG[self.state]

    def has_condition(self, condition):
        return condition in self._conditions

    def condition_reason(self, condition):
        return self._conditions.get(condition, "")

    def active_conditions(self):
        """Active condition names, most severe first."""
        return sorted(self._conditions, key=lambda c: -_CONDITION_RUNG[c])

    def raise_condition(self, condition, reason):
        """Record damage evidence; returns True if it was new."""
        if condition not in _CONDITION_RUNG:
            raise ValueError("unknown ladder condition %r" % (condition,))
        if condition in self._conditions:
            return False
        self._conditions[condition] = reason
        self._settle(reason)
        return True

    def clear_condition(self, condition, reason):
        """Record repair completion; the only path that descends."""
        if condition not in _CONDITION_RUNG:
            raise ValueError("unknown ladder condition %r" % (condition,))
        if condition not in self._conditions:
            return False
        del self._conditions[condition]
        self._settle(reason)
        return True

    def _settle(self, reason):
        """Step one adjacent rung at a time toward the demanded rung."""
        target = max(
            (_CONDITION_RUNG[c] for c in self._conditions), default=0
        )
        while RUNG[self.state] != target:
            step = 1 if target > RUNG[self.state] else -1
            next_state = LADDER_STATES[RUNG[self.state] + step]
            transition = LadderTransition(
                time=self.clock.now,
                from_state=self.state,
                to_state=next_state,
                reason=reason,
            )
            self.state = next_state
            self.transitions.append(transition)
            self._publish(transition)

    def _publish(self, transition):
        obs = self.obs
        if obs is None:
            return
        obs.metrics.gauge("degrade.ladder_state").set(RUNG[transition.to_state])
        obs.metrics.counter("degrade.transitions").inc()
        if obs.tracing:
            obs.event(
                "degrade.transition",
                from_state=transition.from_state,
                to_state=transition.to_state,
                reason=transition.reason,
            )


class RepairDebtLedger:
    """Counted repair queue, by category (``nvram-replay``/``segments``)."""

    def __init__(self, obs=None):
        self.obs = obs
        self._debt = {}

    def charge(self, category, amount=1):
        if amount <= 0:
            return
        self._debt[category] = self._debt.get(category, 0) + amount
        self._publish()

    def settle(self, category, amount=1):
        """Burn down debt; clamps at zero (repair can over-deliver)."""
        owed = self._debt.get(category, 0)
        if not owed or amount <= 0:
            return 0
        settled = min(owed, amount)
        remaining = owed - settled
        if remaining:
            self._debt[category] = remaining
        else:
            del self._debt[category]
        self._publish()
        return settled

    def settle_all(self, category):
        return self.settle(category, self._debt.get(category, 0))

    def outstanding(self, category=None):
        if category is not None:
            return self._debt.get(category, 0)
        return sum(self._debt.values())

    def snapshot(self):
        return dict(sorted(self._debt.items()))

    def _publish(self):
        if self.obs is not None:
            self.obs.metrics.gauge("degrade.repair_debt").set(
                self.outstanding()
            )
