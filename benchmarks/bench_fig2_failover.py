"""Figure 2 / Section 4.1: the high-availability envelope.

Three behaviours of the dual-controller, dual-ported design:

* controller failover completes far inside the 30 s client timeout and
  loses no acknowledged writes;
* latencies *improve slightly* when the secondary fails (no more
  InfiniBand forwarding);
* service continues through two pulled SSDs (the sales demo).
"""

from benchmarks.conftest import emit
from repro.analysis.reporting import format_table
from repro.bench import (
    Metric,
    bench_seed,
    register,
    shape_equal,
    shape_max,
    shape_min,
)
from repro.core.config import ArrayConfig
from repro.core.ha import CLIENT_TIMEOUT_SECONDS, DualControllerArray
from repro.sim.distributions import percentile
from repro.sim.rand import RandomStream
from repro.units import KIB, MIB


def build_appliance(seed=0, **kwargs):
    config = ArrayConfig.small(num_drives=12, drive_capacity=32 * MIB, seed=seed)
    appliance = DualControllerArray(config, **kwargs)
    appliance.create_volume("prod", 4 * MIB)
    return appliance


def _run_failover():
    appliance = build_appliance(seed=bench_seed("fig2.failover_array"))
    stream = RandomStream(bench_seed("fig2.failover_data"))
    written = {}
    for index in range(40):
        offset = (index * 32 * KIB) % (4 * MIB - 16 * KIB)
        payload = stream.randbytes(16 * KIB)
        appliance.write("prod", offset, payload)
        written[offset] = payload
    result = appliance.fail_primary()
    intact = all(
        appliance.read("prod", offset, 16 * KIB)[0] == payload
        for offset, payload in written.items()
    )
    return result, intact


def _run_forwarding():
    appliance = build_appliance(seed=bench_seed("fig2.forwarding_array"),
                                secondary_port_fraction=1.0)
    stream = RandomStream(bench_seed("fig2.forwarding_data"))
    appliance.write("prod", 0, stream.randbytes(16 * KIB))
    forwarded = []
    for _ in range(200):
        _data, latency = appliance.read("prod", 0, 16 * KIB)
        forwarded.append(latency)
    appliance.fail_secondary()
    direct = []
    for _ in range(200):
        _data, latency = appliance.read("prod", 0, 16 * KIB)
        direct.append(latency)
    return forwarded, direct


def _run_pulled_drives():
    appliance = build_appliance(seed=bench_seed("fig2.pulled_array"))
    stream = RandomStream(bench_seed("fig2.pulled_data"))
    written = {}
    for index in range(24):
        offset = index * 32 * KIB
        payload = stream.randbytes(16 * KIB)
        appliance.write("prod", offset, payload)
        written[offset] = payload
    appliance.active.drain()
    for name in list(appliance.active.drives)[:2]:
        appliance.active.fail_drive(name)
    appliance.active.datapath.drop_caches()
    read_latencies = []
    intact = True
    for offset, payload in written.items():
        data, latency = appliance.read("prod", offset, 16 * KIB)
        intact = intact and data == payload
        read_latencies.append(latency)
    return intact, read_latencies


@register("fig2_failover", group="paper_shapes",
          title="Figure 2: failover, forwarding, and pulled drives")
def collect():
    result, intact = _run_failover()
    forwarded, direct = _run_forwarding()
    pulled_intact, _latencies = _run_pulled_drives()
    return [
        Metric("failover_downtime", result.downtime, "s",
               shape_max(CLIENT_TIMEOUT_SECONDS / 10,
                         paper="far inside the 30 s client timeout")),
        Metric("acked_writes_intact_after_failover", intact, "",
               shape_equal(1, paper="no acknowledged write lost")),
        Metric("direct_p50_below_forwarded",
               percentile(direct, 0.5) < percentile(forwarded, 0.5), "",
               shape_equal(1, paper="latency improves without forwarding")),
        Metric("forwarding_overhead_p50",
               (percentile(forwarded, 0.5) - percentile(direct, 0.5)) * 1e6,
               "us", shape_min(0.0)),
        Metric("data_intact_after_two_pulled_drives", pulled_intact, "",
               shape_equal(1, paper="the sales demo: pull two SSDs")),
    ]


def test_failover_budget(once):
    result, intact = once(_run_failover)
    rows = [
        ["failover downtime (s)", round(result.downtime, 4)],
        ["client timeout (s)", CLIENT_TIMEOUT_SECONDS],
        ["within timeout", result.within_client_timeout],
        ["acknowledged writes intact", intact],
        ["recovery AUs scanned", result.recovery_report.aus_scanned],
        ["facts recovered", result.recovery_report.facts_recovered],
    ]
    emit("fig2_failover", format_table(["Metric", "Value"], rows,
                                       title="Controller failover"))
    assert result.within_client_timeout
    assert result.downtime < CLIENT_TIMEOUT_SECONDS / 10
    assert intact


def test_secondary_failure_improves_latency(once):
    forwarded, direct = once(_run_forwarding)
    rows = [
        ["both controllers (forwarding)", percentile(forwarded, 0.5) * 1e6],
        ["secondary failed (direct)", percentile(direct, 0.5) * 1e6],
    ]
    emit("fig2_forwarding", format_table(
        ["Path", "read p50 (us)"], rows,
        title="Latency improves slightly when the secondary fails"))
    assert percentile(direct, 0.5) < percentile(forwarded, 0.5)


def test_service_through_pulled_drives(once):
    intact, latencies = once(_run_pulled_drives)
    rows = [
        ["data intact after 2 pulled drives", intact],
        ["degraded read p50 (us)", percentile(latencies, 0.5) * 1e6],
        ["degraded read p99 (us)", percentile(latencies, 0.99) * 1e6],
    ]
    emit("fig2_pulled_drives", format_table(["Metric", "Value"], rows,
                                            title="Two pulled SSDs"))
    assert intact
