"""Figure 2 / Section 4.1: the high-availability envelope.

Three behaviours of the dual-controller, dual-ported design:

* controller failover completes far inside the 30 s client timeout and
  loses no acknowledged writes;
* latencies *improve slightly* when the secondary fails (no more
  InfiniBand forwarding);
* service continues through two pulled SSDs (the sales demo).
"""

from benchmarks.conftest import emit
from repro.analysis.reporting import format_table
from repro.core.config import ArrayConfig
from repro.core.ha import CLIENT_TIMEOUT_SECONDS, DualControllerArray
from repro.sim.distributions import percentile
from repro.sim.rand import RandomStream
from repro.units import KIB, MIB


def build_appliance(seed=0, **kwargs):
    config = ArrayConfig.small(num_drives=12, drive_capacity=32 * MIB, seed=seed)
    appliance = DualControllerArray(config, **kwargs)
    appliance.create_volume("prod", 4 * MIB)
    return appliance


def test_failover_budget(once):
    def run():
        appliance = build_appliance()
        stream = RandomStream(1)
        written = {}
        for index in range(40):
            offset = (index * 32 * KIB) % (4 * MIB - 16 * KIB)
            payload = stream.randbytes(16 * KIB)
            appliance.write("prod", offset, payload)
            written[offset] = payload
        result = appliance.fail_primary()
        intact = all(
            appliance.read("prod", offset, 16 * KIB)[0] == payload
            for offset, payload in written.items()
        )
        return result, intact

    result, intact = once(run)
    rows = [
        ["failover downtime (s)", round(result.downtime, 4)],
        ["client timeout (s)", CLIENT_TIMEOUT_SECONDS],
        ["within timeout", result.within_client_timeout],
        ["acknowledged writes intact", intact],
        ["recovery AUs scanned", result.recovery_report.aus_scanned],
        ["facts recovered", result.recovery_report.facts_recovered],
    ]
    emit("fig2_failover", format_table(["Metric", "Value"], rows,
                                       title="Controller failover"))
    assert result.within_client_timeout
    assert result.downtime < CLIENT_TIMEOUT_SECONDS / 10
    assert intact


def test_secondary_failure_improves_latency(once):
    def run():
        appliance = build_appliance(seed=3, secondary_port_fraction=1.0)
        stream = RandomStream(4)
        appliance.write("prod", 0, stream.randbytes(16 * KIB))
        forwarded = []
        for _ in range(200):
            _data, latency = appliance.read("prod", 0, 16 * KIB)
            forwarded.append(latency)
        appliance.fail_secondary()
        direct = []
        for _ in range(200):
            _data, latency = appliance.read("prod", 0, 16 * KIB)
            direct.append(latency)
        return forwarded, direct

    forwarded, direct = once(run)
    rows = [
        ["both controllers (forwarding)", percentile(forwarded, 0.5) * 1e6],
        ["secondary failed (direct)", percentile(direct, 0.5) * 1e6],
    ]
    emit("fig2_forwarding", format_table(
        ["Path", "read p50 (us)"], rows,
        title="Latency improves slightly when the secondary fails"))
    assert percentile(direct, 0.5) < percentile(forwarded, 0.5)


def test_service_through_pulled_drives(once):
    def run():
        appliance = build_appliance(seed=5)
        stream = RandomStream(6)
        written = {}
        for index in range(24):
            offset = index * 32 * KIB
            payload = stream.randbytes(16 * KIB)
            appliance.write("prod", offset, payload)
            written[offset] = payload
        appliance.active.drain()
        for name in list(appliance.active.drives)[:2]:
            appliance.active.fail_drive(name)
        appliance.active.datapath.drop_caches()
        read_latencies = []
        intact = True
        for offset, payload in written.items():
            data, latency = appliance.read("prod", offset, 16 * KIB)
            intact = intact and data == payload
            read_latencies.append(latency)
        return intact, read_latencies

    intact, latencies = once(run)
    rows = [
        ["data intact after 2 pulled drives", intact],
        ["degraded read p50 (us)", percentile(latencies, 0.5) * 1e6],
        ["degraded read p99 (us)", percentile(latencies, 0.99) * 1e6],
    ]
    emit("fig2_pulled_drives", format_table(["Metric", "Value"], rows,
                                            title="Two pulled SSDs"))
    assert intact
