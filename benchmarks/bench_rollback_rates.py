"""Section 5.2.1: transaction rollback rates versus storage latency.

Two published claims:

* rollback rates grow non-linearly with latency, so a 10x latency cut
  reduces rollbacks by MORE than 10x;
* a database at 60% CPU / 40% I/O wait "should" speed up under 2x from
  faster storage, yet customers see ~10x — because lock-hold times,
  concurrency, and retries collapse together.
"""

from benchmarks.conftest import emit
from repro.analysis.reporting import format_table
from repro.analysis.rollback import TransactionModel, naive_speedup_bound
from repro.bench import Metric, register, shape_max, shape_min
from repro.units import MILLISECOND

MODEL = TransactionModel(tps=2500, ios_per_txn=10, cpu_seconds=0.0003,
                         keys_per_txn=4, hot_keys=8000)

LATENCIES = [0.2, 0.5, 1.0, 2.0, 5.0, 8.0]  # milliseconds


@register("rollback_rates", group="paper_shapes", quick=True,
          title="Section 5.2.1: rollback rates vs storage latency")
def collect():
    probabilities = {
        latency_ms: MODEL.rollback_probability(latency_ms * MILLISECOND)
        for latency_ms in LATENCIES
    }
    reduction = MODEL.rollback_reduction(5 * MILLISECOND, 0.5 * MILLISECOND)
    actual = MODEL.speedup(5 * MILLISECOND, 0.5 * MILLISECOND)
    naive = naive_speedup_bound(0.6, 0.4, io_speedup=10.0)
    return [
        Metric("rollback_superlinearity",
               probabilities[5.0] / probabilities[0.5], "x",
               shape_min(10.0, paper="10x latency -> >10x rollbacks")),
        Metric("flash_rollback_reduction", reduction, "x",
               shape_min(10.0, paper="flash cuts rollbacks >10x")),
        Metric("naive_amdahl_speedup", naive, "x",
               shape_max(2.0, paper="60/40 Amdahl bound: <2x")),
        Metric("modeled_db_speedup", actual, "x",
               shape_min(5.0, paper="customers see ~10x")),
    ]


def test_rollback_curve(once):
    curve = once(
        lambda: [
            (latency_ms,
             MODEL.concurrency(latency_ms * MILLISECOND),
             MODEL.rollback_probability(latency_ms * MILLISECOND))
            for latency_ms in LATENCIES
        ]
    )
    rows = [
        [latency_ms, round(concurrency, 1), "%.3f%%" % (probability * 100)]
        for latency_ms, concurrency, probability in curve
    ]
    emit("rollback_curve", format_table(
        ["Storage latency (ms)", "Concurrent txns", "Rollback rate"],
        rows, title="Rollback rate vs storage latency"))
    probabilities = {latency: p for latency, _c, p in curve}
    # Monotone and superlinear over the disk/flash decade: a 10x
    # latency increase raises the rollback rate by MORE than 10x.
    ordered = [probabilities[latency] for latency in LATENCIES]
    assert ordered == sorted(ordered)
    assert probabilities[5.0] > probabilities[0.5] * 10


def test_flash_reduces_rollbacks_more_than_10x(once):
    disk = 5 * MILLISECOND
    flash = 0.5 * MILLISECOND
    reduction = once(MODEL.rollback_reduction, disk, flash)
    emit("rollback_reduction",
         "10x latency cut (5 ms -> 0.5 ms) reduces rollback rate by %.1fx"
         % reduction)
    assert reduction > 10.0


def test_speedup_exceeds_naive_expectation(once):
    def run():
        disk = 5 * MILLISECOND
        flash = 0.5 * MILLISECOND
        actual = MODEL.speedup(disk, flash)
        naive = naive_speedup_bound(0.6, 0.4, io_speedup=disk / flash)
        return actual, naive

    actual, naive = once(run)
    rows = [
        ["naive (60% CPU / 40% I/O, Amdahl)", "%.1fx" % naive],
        ["model with rollback/concurrency effects", "%.1fx" % actual],
        ["paper's customer observation", "~10x"],
    ]
    emit("rollback_speedup", format_table(
        ["Estimate", "Throughput speedup"], rows,
        title="Disk -> flash database speedup"))
    assert naive < 2.0
    assert actual > naive * 2
    assert actual > 5.0
