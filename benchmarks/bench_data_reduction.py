"""Data reduction per workload class (Sections 1, 4.7, 5.2-5.3).

Paper's customer telemetry: 5.4x average; RDBMS 3-8x, document stores
~10x, virtualization 5-10x, VDI 20x+. Each workload class is pushed
through the real dedup + compression path; the ordering and the classes
of magnitude are the reproduction target.

Includes the 1/8-hash-sampling ablation: full hash recording finds
slightly more duplicates at 8x the index footprint.
"""

from benchmarks.conftest import emit
from repro.analysis.reporting import format_table
from repro.bench import (
    Metric,
    bench_seed,
    register,
    shape_band,
    shape_max,
    shape_min,
)
from repro.core.array import PurityArray
from repro.core.config import ArrayConfig
from repro.sim.rand import RandomStream
from repro.units import KIB, MIB
from repro.workloads.base import run_trace
from repro.workloads.datagen import DataGenerator
from repro.workloads.docstore import DocStoreConfig, DocStoreWorkload
from repro.workloads.oltp import OLTPConfig, OLTPWorkload
from repro.workloads.vdi import VDIConfig, VDIWorkload


def fresh_array(seed, **overrides):
    config = ArrayConfig.small(num_drives=11, drive_capacity=64 * MIB,
                               seed=seed, **overrides)
    return PurityArray.create(config)


def reduction_for_profile(profile, seed, blocks=192):
    """Write one profile's data stream; return the reduction report."""
    array = fresh_array(seed)
    stream = RandomStream(seed)
    generator = DataGenerator(profile, stream, block_size=16 * KIB)
    array.create_volume("v", 8 * MIB)
    for index in range(blocks):
        offset = (index * 16 * KIB) % (8 * MIB - 16 * KIB)
        array.write("v", offset, generator.block())
    return array.reduction_report()


PROFILES = ["incompressible", "rdbms", "docstore", "virtualization", "vdi"]


def _class_reports():
    base = bench_seed("data_reduction.class_base")
    return {
        profile: reduction_for_profile(profile, seed=base + index)
        for index, profile in enumerate(PROFILES)
    }


def _application_reports():
    results = {}
    # OLTP database instance.
    oltp_seed = bench_seed("data_reduction.oltp")
    array = fresh_array(oltp_seed)
    oltp = OLTPWorkload(OLTPConfig(page_count=128), RandomStream(oltp_seed))
    array.create_volume(oltp.volume, oltp.volume_size)
    run_trace(array, oltp.load_trace())
    run_trace(array, oltp.run_trace(200))
    results["OLTP (Oracle-style)"] = array.reduction_report()
    # Document store.
    docs_seed = bench_seed("data_reduction.docstore")
    array = fresh_array(docs_seed)
    docs = DocStoreWorkload(DocStoreConfig(batch_count=24),
                            RandomStream(docs_seed))
    array.create_volume(docs.volume, docs.volume_size)
    run_trace(array, docs.load_trace())
    results["Document store (MongoDB-style)"] = array.reduction_report()
    # VDI fleet.
    vdi_seed = bench_seed("data_reduction.vdi")
    array = fresh_array(vdi_seed)
    vdi = VDIWorkload(VDIConfig(desktop_count=16), RandomStream(vdi_seed))
    for volume in vdi.volume_names():
        array.create_volume(volume, vdi.volume_size)
    run_trace(array, vdi.provision_trace())
    run_trace(array, vdi.update_trace())
    results["VDI fleet (16 desktops)"] = array.reduction_report()
    return results


def _dedup_variant(inline, background, seed):
    array = fresh_array(seed, inline_dedup=inline, dedup_recent_capacity=512)
    stream = RandomStream(seed)
    generator = DataGenerator("virtualization", stream, block_size=16 * KIB)
    array.create_volume("v", 8 * MIB)
    for index in range(160):
        offset = (index * 16 * KIB) % (8 * MIB - 16 * KIB)
        array.write("v", offset, generator.block())
    if background:
        array.gc.background_dedup()
    return array.reduction_report().dedup_ratio


def _inline_ablation():
    seed = bench_seed("data_reduction.inline_ablation")
    return {
        "inline only (paper default)": _dedup_variant(True, False, seed),
        "inline + background GC pass": _dedup_variant(True, True, seed),
        "background pass only": _dedup_variant(False, True, seed),
        "no dedup at all": _dedup_variant(False, False, seed),
    }


def _sampling_ablation():
    seed = bench_seed("data_reduction.sampling_ablation")
    results = {}
    for label, sample_every in [("1/8 sampling (paper)", 8),
                                ("full recording", 1)]:
        array = fresh_array(seed, dedup_sample_every=sample_every)
        stream = RandomStream(seed)
        generator = DataGenerator("virtualization", stream,
                                  block_size=16 * KIB)
        array.create_volume("v", 8 * MIB)
        for index in range(160):
            offset = (index * 16 * KIB) % (8 * MIB - 16 * KIB)
            array.write("v", offset, generator.block())
        results[label] = (
            array.reduction_report().dedup_ratio,
            len(array.datapath.dedup_index),
        )
    return results


@register("data_reduction", group="paper_shapes",
          title="Data reduction per workload class (Sections 4.7, 5.2-5.3)")
def collect():
    classes = {profile: report.data_reduction
               for profile, report in _class_reports().items()}
    apps = {name: report.data_reduction
            for name, report in _application_reports().items()}
    ablation = _inline_ablation()
    sampling = _sampling_ablation()
    sampled_ratio, sampled_entries = sampling["1/8 sampling (paper)"]
    full_ratio, full_entries = sampling["full recording"]
    return [
        Metric("incompressible_reduction", classes["incompressible"], "x",
               shape_max(1.1, paper="no reduction on random data")),
        Metric("rdbms_reduction", classes["rdbms"], "x",
               shape_band(2.0, 9.0, paper="RDBMS 3-8x")),
        Metric("docstore_reduction", classes["docstore"], "x",
               shape_band(5.0, 25.0, paper="document stores ~10x")),
        Metric("virtualization_reduction", classes["virtualization"], "x",
               shape_band(4.0, 25.0, paper="virtualization 5-10x")),
        Metric("vdi_reduction", classes["vdi"], "x",
               shape_min(12.0, paper="VDI 20x+")),
        Metric("oltp_app_reduction", apps["OLTP (Oracle-style)"], "x",
               shape_min(2.0)),
        Metric("docstore_app_reduction",
               apps["Document store (MongoDB-style)"], "x", shape_min(5.0)),
        Metric("vdi_app_reduction", apps["VDI fleet (16 desktops)"], "x",
               shape_min(10.0)),
        Metric("inline_only_dedup", ablation["inline only (paper default)"],
               "x", shape_min(2.0, paper="inline heuristics find most")),
        Metric("background_only_dedup", ablation["background pass only"], "x",
               shape_min(1.5, paper="GC pass recovers most on its own")),
        Metric("sampled_index_fraction", sampled_entries / full_entries, "",
               shape_max(0.25, paper="1/8 sampling, ~8x smaller index")),
        Metric("sampled_dedup_retention", sampled_ratio / full_ratio, "",
               shape_min(0.7, paper="keeps most of the dedup")),
    ]


def test_reduction_by_workload_class(once):
    profiles = PROFILES
    reports = once(_class_reports)
    rows = [
        [profile,
         "%.1fx" % reports[profile].data_reduction,
         "%.1fx" % reports[profile].dedup_ratio,
         "%.1fx" % reports[profile].compression_ratio]
        for profile in profiles
    ]
    emit("data_reduction_by_class", format_table(
        ["Workload", "Total reduction", "Dedup", "Compression"], rows,
        title="Data reduction by workload class (paper: RDBMS 3-8x, "
              "docstore ~10x, virtualization 5-10x, VDI 20x+)"))

    r = {profile: reports[profile].data_reduction for profile in profiles}
    # Ordering matches the paper's telemetry.
    assert r["incompressible"] < 1.1
    assert r["rdbms"] < r["docstore"] < r["vdi"]
    # Classes of magnitude.
    assert 2.0 < r["rdbms"] < 9.0
    assert 5.0 < r["docstore"] < 25.0
    assert 4.0 < r["virtualization"] < 25.0
    assert r["vdi"] > 12.0


def test_reduction_on_real_workload_generators(once):
    results = once(_application_reports)
    rows = [
        [name, "%.1fx" % report.data_reduction, "%.1fx" % report.dedup_ratio,
         "%.1fx" % report.compression_ratio]
        for name, report in results.items()
    ]
    emit("data_reduction_applications", format_table(
        ["Application", "Total", "Dedup", "Compression"], rows,
        title="Data reduction through application-shaped workloads"))
    assert results["OLTP (Oracle-style)"].data_reduction > 2.0
    assert results["Document store (MongoDB-style)"].data_reduction > 5.0
    assert results["VDI fleet (16 desktops)"].data_reduction > 10.0


def test_inline_vs_background_dedup(once):
    """Section 4.7's division of labour: bounded inline heuristics find
    most duplicates; the GC's exhaustive background pass catches the
    rest. Ablated by turning inline dedup off entirely."""

    results = once(_inline_ablation)
    rows = [[label, "%.2fx" % ratio] for label, ratio in results.items()]
    emit("data_reduction_inline_vs_background", format_table(
        ["Dedup configuration", "Dedup ratio"], rows,
        title="Inline heuristics vs the background GC pass"))
    assert results["no dedup at all"] == 1.0
    # Inline finds most duplicates; background adds on top of it; the
    # background pass alone also recovers most of the reduction.
    assert results["inline only (paper default)"] > 2.0
    assert results["inline + background GC pass"] >= (
        results["inline only (paper default)"]
    )
    assert results["background pass only"] > 1.5


def test_hash_sampling_ablation(once):
    """1/8 sampling vs recording every hash (Section 4.7's tradeoff)."""

    results = once(_sampling_ablation)
    rows = [
        [label, "%.2fx" % ratio, entries]
        for label, (ratio, entries) in results.items()
    ]
    emit("data_reduction_sampling_ablation", format_table(
        ["Index policy", "Dedup ratio", "Index entries"], rows,
        title="Hash sampling ablation"))
    sampled_ratio, sampled_entries = results["1/8 sampling (paper)"]
    full_ratio, full_entries = results["full recording"]
    # Sampling keeps most of the dedup at a fraction of the index size.
    assert sampled_entries < full_entries / 4
    assert sampled_ratio > full_ratio * 0.7
