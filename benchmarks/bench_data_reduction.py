"""Data reduction per workload class (Sections 1, 4.7, 5.2-5.3).

Paper's customer telemetry: 5.4x average; RDBMS 3-8x, document stores
~10x, virtualization 5-10x, VDI 20x+. Each workload class is pushed
through the real dedup + compression path; the ordering and the classes
of magnitude are the reproduction target.

Includes the 1/8-hash-sampling ablation: full hash recording finds
slightly more duplicates at 8x the index footprint.
"""

from benchmarks.conftest import emit
from repro.analysis.reporting import format_table
from repro.core.array import PurityArray
from repro.core.config import ArrayConfig
from repro.sim.rand import RandomStream
from repro.units import KIB, MIB
from repro.workloads.base import run_trace
from repro.workloads.datagen import DataGenerator
from repro.workloads.docstore import DocStoreConfig, DocStoreWorkload
from repro.workloads.oltp import OLTPConfig, OLTPWorkload
from repro.workloads.vdi import VDIConfig, VDIWorkload


def fresh_array(seed, **overrides):
    config = ArrayConfig.small(num_drives=11, drive_capacity=64 * MIB,
                               seed=seed, **overrides)
    return PurityArray.create(config)


def reduction_for_profile(profile, seed, blocks=192):
    """Write one profile's data stream; return the reduction report."""
    array = fresh_array(seed)
    stream = RandomStream(seed)
    generator = DataGenerator(profile, stream, block_size=16 * KIB)
    array.create_volume("v", 8 * MIB)
    for index in range(blocks):
        offset = (index * 16 * KIB) % (8 * MIB - 16 * KIB)
        array.write("v", offset, generator.block())
    return array.reduction_report()


def test_reduction_by_workload_class(once):
    profiles = ["incompressible", "rdbms", "docstore", "virtualization", "vdi"]
    reports = once(
        lambda: {
            profile: reduction_for_profile(profile, seed=100 + index)
            for index, profile in enumerate(profiles)
        }
    )
    rows = [
        [profile,
         "%.1fx" % reports[profile].data_reduction,
         "%.1fx" % reports[profile].dedup_ratio,
         "%.1fx" % reports[profile].compression_ratio]
        for profile in profiles
    ]
    emit("data_reduction_by_class", format_table(
        ["Workload", "Total reduction", "Dedup", "Compression"], rows,
        title="Data reduction by workload class (paper: RDBMS 3-8x, "
              "docstore ~10x, virtualization 5-10x, VDI 20x+)"))

    r = {profile: reports[profile].data_reduction for profile in profiles}
    # Ordering matches the paper's telemetry.
    assert r["incompressible"] < 1.1
    assert r["rdbms"] < r["docstore"] < r["vdi"]
    # Classes of magnitude.
    assert 2.0 < r["rdbms"] < 9.0
    assert 5.0 < r["docstore"] < 25.0
    assert 4.0 < r["virtualization"] < 25.0
    assert r["vdi"] > 12.0


def test_reduction_on_real_workload_generators(once):
    def run():
        results = {}
        # OLTP database instance.
        array = fresh_array(7)
        oltp = OLTPWorkload(OLTPConfig(page_count=128), RandomStream(7))
        array.create_volume(oltp.volume, oltp.volume_size)
        run_trace(array, oltp.load_trace())
        run_trace(array, oltp.run_trace(200))
        results["OLTP (Oracle-style)"] = array.reduction_report()
        # Document store.
        array = fresh_array(8)
        docs = DocStoreWorkload(DocStoreConfig(batch_count=24), RandomStream(8))
        array.create_volume(docs.volume, docs.volume_size)
        run_trace(array, docs.load_trace())
        results["Document store (MongoDB-style)"] = array.reduction_report()
        # VDI fleet.
        array = fresh_array(9)
        vdi = VDIWorkload(VDIConfig(desktop_count=16), RandomStream(9))
        for volume in vdi.volume_names():
            array.create_volume(volume, vdi.volume_size)
        run_trace(array, vdi.provision_trace())
        run_trace(array, vdi.update_trace())
        results["VDI fleet (16 desktops)"] = array.reduction_report()
        return results

    results = once(run)
    rows = [
        [name, "%.1fx" % report.data_reduction, "%.1fx" % report.dedup_ratio,
         "%.1fx" % report.compression_ratio]
        for name, report in results.items()
    ]
    emit("data_reduction_applications", format_table(
        ["Application", "Total", "Dedup", "Compression"], rows,
        title="Data reduction through application-shaped workloads"))
    assert results["OLTP (Oracle-style)"].data_reduction > 2.0
    assert results["Document store (MongoDB-style)"].data_reduction > 5.0
    assert results["VDI fleet (16 desktops)"].data_reduction > 10.0


def test_inline_vs_background_dedup(once):
    """Section 4.7's division of labour: bounded inline heuristics find
    most duplicates; the GC's exhaustive background pass catches the
    rest. Ablated by turning inline dedup off entirely."""

    def run_variant(inline, background, seed):
        array = fresh_array(seed, inline_dedup=inline,
                            dedup_recent_capacity=512)
        stream = RandomStream(seed)
        generator = DataGenerator("virtualization", stream,
                                  block_size=16 * KIB)
        array.create_volume("v", 8 * MIB)
        for index in range(160):
            offset = (index * 16 * KIB) % (8 * MIB - 16 * KIB)
            array.write("v", offset, generator.block())
        if background:
            array.gc.background_dedup()
        return array.reduction_report().dedup_ratio

    def run():
        return {
            "inline only (paper default)": run_variant(True, False, 71),
            "inline + background GC pass": run_variant(True, True, 71),
            "background pass only": run_variant(False, True, 71),
            "no dedup at all": run_variant(False, False, 71),
        }

    results = once(run)
    rows = [[label, "%.2fx" % ratio] for label, ratio in results.items()]
    emit("data_reduction_inline_vs_background", format_table(
        ["Dedup configuration", "Dedup ratio"], rows,
        title="Inline heuristics vs the background GC pass"))
    assert results["no dedup at all"] == 1.0
    # Inline finds most duplicates; background adds on top of it; the
    # background pass alone also recovers most of the reduction.
    assert results["inline only (paper default)"] > 2.0
    assert results["inline + background GC pass"] >= (
        results["inline only (paper default)"]
    )
    assert results["background pass only"] > 1.5


def test_hash_sampling_ablation(once):
    """1/8 sampling vs recording every hash (Section 4.7's tradeoff)."""

    def run():
        results = {}
        for label, sample_every in [("1/8 sampling (paper)", 8),
                                    ("full recording", 1)]:
            array = fresh_array(55, dedup_sample_every=sample_every)
            stream = RandomStream(55)
            generator = DataGenerator("virtualization", stream,
                                      block_size=16 * KIB)
            array.create_volume("v", 8 * MIB)
            for index in range(160):
                offset = (index * 16 * KIB) % (8 * MIB - 16 * KIB)
                array.write("v", offset, generator.block())
            results[label] = (
                array.reduction_report().dedup_ratio,
                len(array.datapath.dedup_index),
            )
        return results

    results = once(run)
    rows = [
        [label, "%.2fx" % ratio, entries]
        for label, (ratio, entries) in results.items()
    ]
    emit("data_reduction_sampling_ablation", format_table(
        ["Index policy", "Dedup ratio", "Index entries"], rows,
        title="Hash sampling ablation"))
    sampled_ratio, sampled_entries = results["1/8 sampling (paper)"]
    full_ratio, full_entries = results["full recording"]
    # Sampling keeps most of the dedup at a fraction of the index size.
    assert sampled_entries < full_entries / 4
    assert sampled_ratio > full_ratio * 0.7
