"""Parallel-pipeline benchmark: modeled speedup + determinism proof.

The deterministic executor (``repro.parallel``) fans three CPU-bound
stages out to a worker pool: per-cblock compression, column-partitioned
RS encode at segio flush, and per-segment scrub verification. This
bench drives one seeded end-to-end workload through the pipeline and
reports:

* the **modeled** speedup at 2/4 workers — a deterministic critical-path
  cost model (chunk costs round-robined onto N workers; speedup =
  total cost / critical path). The container the suite runs in has one
  CPU, so wall-clock parallel speedup is unmeasurable here by
  construction; the model is seed-stable and is what the gate checks;
* per-stage modeled speedups and the realized chunk fan-out;
* the buffer-pool hit rates on the flush and read paths;
* a byte-identity bit: the same seed run at ``workers=0`` and
  ``workers=2`` must produce identical stored bytes and read-back data.

Wall-clock timings are printed by the standalone entry points for
interactive profiling but deliberately kept out of the orchestrated
metrics — every row in ``BENCH_parallel.json`` is deterministic.

Run directly to see the numbers::

    PYTHONPATH=src python -m benchmarks.bench_parallel
"""

import argparse
import hashlib
import json
import time

from repro.bench import Metric, bench_seed, register, shape_equal, shape_min
from repro.core.array import PurityArray
from repro.core.config import ArrayConfig
from repro.sim.rand import RandomStream
from repro.units import KIB

SEED = bench_seed("parallel.workload")

#: Workload shape: large sequential-ish writes with overwrites so GC
#: and scrub both have work, and a compressible fraction so the
#: compression stage sees both codec outcomes.
WRITES = 24
WRITE_SIZE = 256 * KIB
SLOTS = 8

#: Small RS chunks so the miniature segment geometry still fans out.
RS_CHUNK_COLS = 4 * KIB

MODELED_AT = (2, 4)


def _config(workers):
    return ArrayConfig.small(
        seed=SEED, workers=workers, parallel_rs_chunk_cols=RS_CHUNK_COLS
    )


def _chunks():
    stream = RandomStream(SEED).fork("parallel-workload")
    chunks = []
    for index in range(WRITES):
        if index % 3 == 2:
            pattern = bytes([index % 256, (index * 7) % 256])
            chunks.append(pattern * (WRITE_SIZE // 2))
        else:
            chunks.append(stream.randbytes(WRITE_SIZE))
    return chunks


def _fingerprint(array, reads):
    """Stored media bytes + read-back data, hashed in a fixed order."""
    digest = hashlib.sha256()
    for data in reads:
        digest.update(data)
    for name in sorted(array.drives):
        store = array.drives[name].store
        digest.update(name.encode())
        for start, length in store.extents():
            digest.update(b"%d:%d:" % (start, length))
            digest.update(store.read(start, length))
    return digest.hexdigest()


def run_workload(workers):
    """One seeded write/GC/scrub/read pass; returns model + pool stats."""
    chunks = _chunks()
    array = PurityArray.create(_config(workers))
    array.create_volume("v", SLOTS * WRITE_SIZE)
    start = time.perf_counter()
    for index, chunk in enumerate(chunks):
        array.write("v", (index % SLOTS) * WRITE_SIZE, chunk)
    array.drain()
    write_seconds = time.perf_counter() - start
    array.run_gc()
    array.scrub()
    reads = [array.read("v", slot * WRITE_SIZE, WRITE_SIZE)[0]
             for slot in range(SLOTS)]
    executor = array.parallel
    stages = {
        stage: {
            "chunks": stats.chunks,
            "items": stats.items,
            "modeled_speedup": {
                count: round(stats.modeled_speedup(count), 4)
                for count in MODELED_AT
            },
        }
        for stage, stats in ((name, executor.stage_stats(name))
                             for name in executor.stages())
    }
    segio_pool = array.segwriter.buffer_pool
    read_pool = array.datapath.read_pool
    return {
        "workers": workers,
        "write_seconds": write_seconds,
        "fingerprint": _fingerprint(array, reads),
        "modeled_speedup": {
            count: round(executor.modeled_speedup(count), 4)
            for count in MODELED_AT
        },
        "stages": stages,
        "segio_pool": dict(segio_pool.counters(),
                           hit_rate=round(segio_pool.hit_rate, 4)),
        "read_pool": dict(read_pool.counters(),
                          hit_rate=round(read_pool.hit_rate, 4)),
    }


def run_all():
    pooled = run_workload(workers=2)
    serial = run_workload(workers=0)
    return {
        "seed": SEED,
        "writes": WRITES,
        "write_bytes": WRITE_SIZE,
        "serial": serial,
        "pooled": pooled,
        "identical": serial["fingerprint"] == pooled["fingerprint"],
    }


def summarize(results):
    pooled = results["pooled"]
    lines = [
        "modeled e2e speedup    w2 %.2fx   w4 %.2fx" % (
            pooled["modeled_speedup"][2], pooled["modeled_speedup"][4]),
    ]
    for stage in sorted(pooled["stages"]):
        row = pooled["stages"][stage]
        lines.append("  %-22s w4 %.2fx  (%d items, %d chunks)" % (
            stage, row["modeled_speedup"][4], row["items"], row["chunks"]))
    lines.append("segio pool             %4.0f%% hits (%d allocations)" % (
        pooled["segio_pool"]["hit_rate"] * 100,
        pooled["segio_pool"]["misses"]))
    lines.append("read pool              %4.0f%% hits (%d allocations)" % (
        pooled["read_pool"]["hit_rate"] * 100,
        pooled["read_pool"]["misses"]))
    lines.append("byte-identical w0/w2   %s" % results["identical"])
    lines.append("wall write (w0/w2)     %.2fs / %.2fs  [informational]" % (
        results["serial"]["write_seconds"], pooled["write_seconds"]))
    return "\n".join(lines)


@register("parallel", group="parallel", quick=True,
          title="Parallel pipeline: modeled speedup, pools, determinism")
def collect():
    results = run_all()
    pooled = results["pooled"]
    stages = pooled["stages"]
    return [
        Metric("e2e_modeled_write_speedup_w4",
               pooled["modeled_speedup"][4], "x",
               shape_min(1.8, paper="parallel pipeline scales the write "
                                    "path")),
        Metric("e2e_modeled_write_speedup_w2",
               pooled["modeled_speedup"][2], "x", shape_min(1.4)),
        Metric("compress_modeled_speedup_w4",
               stages["parallel.compress"]["modeled_speedup"][4], "x",
               shape_min(1.5)),
        Metric("rs_encode_modeled_speedup_w4",
               stages["parallel.rs-encode"]["modeled_speedup"][4], "x",
               shape_min(1.5)),
        Metric("scrub_modeled_speedup_w4",
               stages["parallel.scrub-verify"]["modeled_speedup"][4], "x",
               shape_min(1.2)),
        Metric("fanout_chunks",
               sum(row["chunks"] for row in stages.values()), "chunks",
               shape_min(50, paper="the stages genuinely partition")),
        Metric("identical_bytes_across_worker_counts",
               results["identical"], "bool",
               shape_equal(1, paper="same seed, same bytes, any worker "
                                    "count")),
        Metric("segio_pool_hit_rate", pooled["segio_pool"]["hit_rate"],
               "fraction", shape_min(0.8)),
        Metric("segio_pool_allocations", pooled["segio_pool"]["misses"],
               "buffers", None),
        Metric("read_pool_hit_rate", pooled["read_pool"]["hit_rate"],
               "fraction", shape_min(0.5)),
    ]


# ----------------------------------------------------------------------
# pytest entry: the same measurements as a regression guard


def test_parallel_pipeline(once):
    from benchmarks.conftest import emit

    results = once(run_all)
    emit("parallel_pipeline", summarize(results))
    pooled = results["pooled"]
    assert results["identical"]
    assert pooled["modeled_speedup"][4] >= 1.8
    assert pooled["segio_pool"]["hit_rate"] >= 0.8


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write full results as JSON to PATH",
    )
    options = parser.parse_args(argv)
    results = run_all()
    print(summarize(results))
    if options.json:
        with open(options.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("\nwrote %s" % options.json)
    return results


if __name__ == "__main__":
    main()
