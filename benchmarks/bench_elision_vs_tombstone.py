"""Section 4.10: elision versus tombstone deletion.

Dropping a snapshot or medium under tombstones costs one record per
key and reclaims nothing until compaction carries the tombstones to the
oldest level. Elision inserts one predicate record, readers filter
lock-free, and merges drop matching tuples immediately. Measured:

* deletion cost in records written;
* elide-table size stays bounded (ranges coalesce) while tombstone
  count grows linearly;
* space reclaimed at the first merge vs only at full compaction.
"""

from benchmarks.conftest import emit
from repro.analysis.reporting import format_table
from repro.baselines.tombstone_lsm import TombstoneLSM
from repro.bench import Metric, register, shape_equal, shape_min
from repro.pyramid.relation import Relation
from repro.pyramid.tuples import SequenceGenerator

KEYS = 2000
#: Drop the mediums in contiguous runs, as snapshot lifecycles do.
DROPS = 8


@register("elision_vs_tombstone", group="paper_shapes", quick=True,
          title="Section 4.10: elision vs tombstone deletion")
def collect():
    _relation, _tombstone, elide_counts, tombstone_counts = _run_bulk_drops()
    timeline = _run_reclamation_timeline()
    stages = {stage: (elision, tombstones)
              for stage, elision, tombstones in timeline}
    return [
        Metric("elide_records_after_drops", elide_counts[-1], "records",
               shape_equal(1, paper="ranges coalesce to one record")),
        Metric("tombstones_after_drops", tombstone_counts[-1], "records",
               shape_equal(KEYS, paper="one tombstone per key, forever")),
        Metric("elision_facts_after_one_merge", stages["after one merge"][0],
               "facts", shape_equal(0, paper="reclaimed at the first merge")),
        Metric("tombstone_facts_after_one_merge",
               stages["after one merge"][1], "facts",
               shape_min(KEYS * 0.5, paper="tombstones still hold >50%")),
        Metric("tombstone_facts_after_full_compaction",
               stages["after full compaction"][1], "facts",
               shape_equal(0, paper="reclaims only at full compaction")),
    ]


def build_pair():
    """An elision relation and a tombstone LSM with identical contents."""
    relation = Relation("elide", key_arity=1, fanout=4)
    sequence = SequenceGenerator()
    tombstone = TombstoneLSM(fanout=4)
    for key in range(KEYS):
        relation.insert((key,), (key,), sequence.next())
        tombstone.insert((key,), (key,))
        if key % 250 == 249:
            relation.seal()
            tombstone.seal()
    return relation, tombstone


def _run_bulk_drops():
    relation, tombstone = build_pair()
    run_size = KEYS // DROPS
    elide_counts = []
    tombstone_counts = []
    for drop in range(DROPS):
        lo = drop * run_size
        hi = lo + run_size - 1
        relation.elide_key_range(lo, hi)
        tombstone.delete_range([(key,) for key in range(lo, hi + 1)])
        elide_counts.append(relation.elide_table.record_count)
        tombstone_counts.append(tombstone.tombstones_written)
    return relation, tombstone, elide_counts, tombstone_counts


def test_deletion_cost_and_table_growth(once):
    relation, tombstone, elide_counts, tombstone_counts = once(_run_bulk_drops)
    rows = [
        [drop + 1, elide_counts[drop], tombstone_counts[drop]]
        for drop in range(DROPS)
    ]
    emit("elision_deletion_cost", format_table(
        ["Bulk drops", "Elide records (coalesced)", "Tombstones written"],
        rows, title="Deleting %d keys in %d contiguous drops" % (KEYS, DROPS)))
    # Contiguous drops collapse into ONE elide range; tombstones are
    # one per key, forever growing.
    assert elide_counts[-1] == 1
    assert tombstone_counts[-1] == KEYS


def _run_reclamation_timeline():
    relation, tombstone = build_pair()
    relation.elide_key_range(0, KEYS - 1)
    tombstone.delete_range([(key,) for key in range(KEYS)])
    timeline = []
    timeline.append(
        ("after delete", relation.stored_fact_count(),
         tombstone.stored_fact_count())
    )
    # One merge step each.
    relation.flatten()
    tombstone.seal()
    tombstone.compact_once()
    timeline.append(
        ("after one merge", relation.stored_fact_count(),
         tombstone.stored_fact_count())
    )
    # Run the tombstone side to full compaction.
    tombstone.compact_fully()
    timeline.append(
        ("after full compaction", relation.stored_fact_count(),
         tombstone.stored_fact_count())
    )
    return timeline


def test_space_reclamation_timing(once):
    timeline = once(_run_reclamation_timeline)
    rows = [[stage, elision, tombstones] for stage, elision, tombstones in timeline]
    emit("elision_reclamation_timing", format_table(
        ["Stage", "Elision facts stored", "Tombstone facts stored"],
        rows, title="Space reclamation after deleting everything"))
    stages = {stage: (elision, tombstones) for stage, elision, tombstones in timeline}
    # Elision reclaims at the FIRST merge; tombstones still hold data +
    # tombstone pairs after one merge, reclaiming only at full compaction.
    assert stages["after one merge"][0] == 0
    assert stages["after one merge"][1] > KEYS * 0.5
    assert stages["after full compaction"][1] == 0


def test_readers_filter_without_blocking(once):
    """Elide records apply atomically: one insert deletes a whole range
    while concurrent-style readers keep running lock-free."""

    def run():
        relation, _tombstone = build_pair()
        before = relation.get((123,))
        relation.elide_key_range(0, 499)
        after = relation.get((123,))
        survivor = relation.get((1500,))
        relaxed = relation.get((123,), ignore_elisions=True)
        return before, after, survivor, relaxed

    before, after, survivor, relaxed = once(run)
    emit("elision_atomicity",
         "range elide: key 123 visible before=%s after=%s; key 1500 "
         "survivor=%s; relaxed reader still sees=%s" % (
             before is not None, after is not None,
             survivor is not None, relaxed is not None))
    assert before is not None
    assert after is None
    assert survivor is not None
    assert relaxed is not None  # Section 3.2's relaxed consistency mode
