"""Table 1: Purity vs an enterprise disk array.

Regenerates the paper's comparison two ways:

* the *published* arithmetic (paper constants in, the paper's
  improvement factors out — checked in tests/analysis too);
* a *measured* version: the simulated Purity array and the simulated
  RAID disk array serve the same 32 KiB random 70/30 workload at queue
  depth 32, and the measured IOPS/latency replace the published ones.

Absolute numbers are simulation-scale; the reproduction target is the
shape — Purity wins IOPS by single-digit factors, latency by ~5x or
more, and every derived economics row follows.
"""

from benchmarks.conftest import emit
from repro.analysis.costmodel import (
    PAPER_DISK_ARRAY,
    PAPER_PURITY_ARRAY,
    build_table1,
    spec_with_measured,
)
from repro.analysis.reporting import format_ratio, format_table
from repro.baselines.diskarray import DiskArray, DiskArrayConfig
from repro.bench import Metric, bench_seed, register, shape_min
from repro.core.array import PurityArray
from repro.core.config import ArrayConfig
from repro.sim.clock import SimClock
from repro.sim.distributions import percentile
from repro.sim.rand import RandomStream
from repro.units import KIB, MIB

QUEUE_DEPTH = 32
OPERATIONS = 640
IO_SIZE = 32 * KIB
READ_FRACTION = 0.9


def _measure_purity():
    # Wider write units than the test-scale default so the backend
    # flush bandwidth is representative (the paper uses 1 MiB units).
    from repro.layout.segment import SegmentGeometry
    from repro.ssd.geometry import SSDGeometry

    config = ArrayConfig.small(
        num_drives=11,
        drive_capacity=256 * MIB,
        cblock_cache_entries=16,
        ssd_geometry=SSDGeometry(
            capacity_bytes=256 * MIB, page_size=4 * KIB,
            erase_block_size=2 * MIB, num_dies=32,
        ),
        segment_geometry=SegmentGeometry(
            au_size=2 * MIB, write_unit=512 * KIB, wu_header_size=4 * KIB
        ),
        nvram_capacity=8 * MIB,
    )
    array = PurityArray.create(config)
    stream = RandomStream(bench_seed("table1.purity"))
    volume_bytes = 16 * MIB
    array.create_volume("bench", volume_bytes)
    slots = volume_bytes // IO_SIZE
    for slot in range(slots):
        array.write("bench", slot * IO_SIZE, stream.randbytes(IO_SIZE))
    array.drain()
    array.datapath.drop_caches()

    start = array.clock.now
    latencies = []
    issued = 0
    while issued < OPERATIONS:
        batch = []
        for _ in range(min(QUEUE_DEPTH, OPERATIONS - issued)):
            offset = stream.randint(0, slots - 1) * IO_SIZE
            if stream.random() < READ_FRACTION:
                _data, latency = array.read(
                    "bench", offset, IO_SIZE, advance_clock=False
                )
            else:
                latency = array.write(
                    "bench", offset, stream.randbytes(IO_SIZE),
                    advance_clock=False,
                )
            batch.append(latency)
            issued += 1
        latencies.extend(batch)
        array.clock.advance(max(batch))
    elapsed = array.clock.now - start
    return OPERATIONS / elapsed, percentile(latencies, 0.5)


def _measure_disk_array():
    clock = SimClock()
    disk_array = DiskArray(clock, DiskArrayConfig(num_disks=480))
    stream = RandomStream(bench_seed("table1.disk"))
    start = clock.now
    latencies = []
    issued = 0
    while issued < OPERATIONS:
        batch = []
        for _ in range(min(QUEUE_DEPTH, OPERATIONS - issued)):
            if stream.random() < READ_FRACTION:
                batch.append(disk_array.read(IO_SIZE))
            else:
                batch.append(disk_array.write(IO_SIZE))
            issued += 1
        latencies.extend(batch)
        clock.advance(max(batch))
    elapsed = clock.now - start
    return OPERATIONS / elapsed, percentile(latencies, 0.5)


@register("table1_array_comparison", group="paper_shapes",
          title="Table 1: Purity vs an enterprise disk array")
def collect():
    purity_iops, purity_latency = _measure_purity()
    disk_iops, disk_latency = _measure_disk_array()
    return [
        Metric("purity_vs_disk_iops", purity_iops / disk_iops, "x",
               shape_min(2.0, paper="single-digit IOPS factor")),
        Metric("disk_vs_purity_latency", disk_latency / purity_latency, "x",
               shape_min(3.0, paper="~5x or more")),
        Metric("purity_iops", purity_iops, "ops/s", shape_min(0)),
        Metric("disk_iops", disk_iops, "ops/s", shape_min(0)),
    ]


def test_table1(once):
    purity_iops, purity_latency = once(_measure_purity)
    disk_iops, disk_latency = _measure_disk_array()

    measured_purity = spec_with_measured(
        PAPER_PURITY_ARRAY, peak_iops=purity_iops, latency=purity_latency
    )
    measured_disk = spec_with_measured(
        PAPER_DISK_ARRAY, peak_iops=disk_iops, latency=disk_latency
    )

    sections = []
    for title, purity, disk in [
        ("Published constants (paper arithmetic regenerated)",
         PAPER_PURITY_ARRAY, PAPER_DISK_ARRAY),
        ("Simulated arrays (32 KiB random, %d%% reads, QD=%d)"
         % (int(READ_FRACTION * 100), QUEUE_DEPTH),
         measured_purity, measured_disk),
    ]:
        rows = [
            [metric, purity_value, disk_value, format_ratio(improvement)]
            for metric, purity_value, disk_value, improvement in build_table1(
                purity, disk
            )
        ]
        sections.append(
            format_table(["Metric", "Purity", "Disk", "Improvement"], rows,
                         title=title)
        )
    emit("table1_array_comparison", "\n\n".join(sections))

    # Shape assertions: who wins, and by roughly what class of factor.
    # (Our simulated spindle/SSD populations differ from the paper's
    # 1000-disk VNX vs FA-420, so the factor is checked as a class.)
    assert purity_iops > disk_iops * 2
    assert disk_latency > purity_latency * 3
