"""Chaos-harness benchmark: availability under seeded fault schedules.

Quantifies what the chaos tests assert: per-seed fault mix, recovery
downtimes versus the 30-second client timeout, repair work done, and
the throughput cost of running a workload under faults compared to the
same workload fault-free.
"""

from benchmarks.conftest import RESULTS_DIR, emit
from repro.analysis.reporting import format_table
from repro.bench import (
    Metric,
    bench_seed,
    register,
    shape_equal,
    shape_max,
    shape_min,
)
from repro.core.ha import CLIENT_TIMEOUT_SECONDS
from repro.faults.chaos import ChaosHarness
from repro.faults.plan import FaultPlan
from repro.obs.export import load_jsonl
from repro.obs.report import fault_correlation, per_stage_table

SEEDS = tuple(bench_seed("chaos.sweep"))
TOTAL_OPS = 200


def run_chaos(seed, plan=None):
    harness = ChaosHarness(seed=seed, plan=plan, total_ops=TOTAL_OPS)
    start = harness.array.clock.now
    report = harness.run()
    elapsed = harness.array.clock.now - start
    return report, elapsed


def _run_sweep():
    return [(seed,) + run_chaos(seed) for seed in SEEDS]


def _run_traced():
    harness = ChaosHarness(seed=bench_seed("chaos.traced"),
                           total_ops=TOTAL_OPS, tracing=True)
    harness.run()
    return harness


@register("chaos", group="chaos",
          title="Chaos harness: availability under seeded fault schedules")
def collect():
    results = _run_sweep()
    throughput_seed = bench_seed("chaos.throughput")
    quiet_report, quiet_elapsed = run_chaos(throughput_seed,
                                            plan=FaultPlan())
    chaos_report, chaos_elapsed = run_chaos(throughput_seed)
    quiet_rate = quiet_report.ops / quiet_elapsed
    chaos_rate = chaos_report.ops / chaos_elapsed
    traced = _run_traced()
    trace_events = [r for r in traced.array.obs.records
                    if r["type"] == "event" and r["name"] == "fault"]
    metrics = [
        Metric("sweep_max_downtime",
               max(report.max_downtime for _s, report, _e in results), "s",
               shape_max(CLIENT_TIMEOUT_SECONDS,
                         paper="inside the 30 s client timeout")),
        Metric("sweep_violations",
               sum(len(report.violations) for _s, report, _e in results),
               "violations", shape_equal(0, paper="no invariant broken")),
        Metric("sweep_faults_fired",
               sum(report.faults_fired for _s, report, _e in results),
               "faults", shape_min(len(SEEDS),
                                   paper="every schedule injects faults")),
        Metric("chaos_ops_completed", chaos_report.ops, "ops",
               shape_equal(TOTAL_OPS, paper="every op completes")),
        Metric("fault_free_vs_chaos_rate", quiet_rate / chaos_rate, "x",
               shape_min(1.0, paper="faults cost time, never service")),
        Metric("trace_events_match_faults",
               len(trace_events) == traced.report.faults_fired, "",
               shape_equal(1, paper="every fault lands in the trace")),
    ]
    return metrics, traced.array.obs.records


def test_chaos_schedule_survival(once):
    results = once(_run_sweep)
    rows = []
    for seed, report, _elapsed in results:
        rows.append([
            seed,
            report.faults_fired,
            ",".join(k.split("-")[0] for k in report.kinds_used),
            report.crashes,
            round(report.max_downtime, 3),
            report.drives_replaced,
            report.segments_rebuilt,
            report.scrub_passes,
            len(report.violations),
        ])
    emit("chaos_schedules", format_table(
        ["Seed", "Faults", "Kinds", "Crashes", "Max downtime (s)",
         "Drives replaced", "Segments rebuilt", "Scrubs", "Violations"],
        rows,
        title="Seeded chaos schedules (%d ops each; client timeout %.0f s)"
              % (TOTAL_OPS, CLIENT_TIMEOUT_SECONDS)))
    for seed, report, _elapsed in results:
        assert report.violations == [], seed
        assert report.data_loss is None, seed
        assert report.max_downtime < CLIENT_TIMEOUT_SECONDS


def test_chaos_throughput_cost(once):
    """The workload still makes progress under faults: simulated ops/s
    with the injector firing versus the identical fault-free workload."""

    def run():
        seed = bench_seed("chaos.throughput")
        quiet_report, quiet_elapsed = run_chaos(seed, plan=FaultPlan())
        chaos_report, chaos_elapsed = run_chaos(seed)
        return quiet_report, quiet_elapsed, chaos_report, chaos_elapsed

    quiet_report, quiet_elapsed, chaos_report, chaos_elapsed = once(run)
    quiet_rate = quiet_report.ops / quiet_elapsed
    chaos_rate = chaos_report.ops / chaos_elapsed
    rows = [
        ["fault-free", quiet_report.ops, round(quiet_elapsed, 3),
         round(quiet_rate, 1), 0, 0.0],
        ["under chaos", chaos_report.ops, round(chaos_elapsed, 3),
         round(chaos_rate, 1), chaos_report.faults_fired,
         round(chaos_report.max_downtime, 3)],
    ]
    emit("chaos_throughput_cost", format_table(
        ["Schedule", "Ops", "Sim time (s)", "Ops/s (sim)", "Faults",
         "Max downtime (s)"],
        rows, title="Workload progress with and without fault injection"))
    assert quiet_report.violations == []
    assert chaos_report.violations == []
    # Faults cost time (recovery, retries, reconstruction) but the
    # array keeps serving: the chaos run completes every operation.
    assert chaos_report.ops == quiet_report.ops == TOTAL_OPS
    assert chaos_rate > 0


def test_chaos_fault_correlation(once):
    """One traced schedule: export the observability JSONL artifacts
    and render the fault-correlation view joining injector events onto
    the surrounding client-I/O latencies."""

    harness = once(_run_traced)
    assert harness.report.violations == []
    assert harness.report.faults_fired > 0
    trace_path, metrics_path = harness.export_obs(
        RESULTS_DIR, prefix="chaos_obs")
    trace = load_jsonl(trace_path)
    emit("chaos_obs_stages", per_stage_table(trace))
    emit("chaos_fault_correlation", fault_correlation(trace))
    # Every fired fault appears as an event in the exported trace.
    events = [r for r in trace
              if r["type"] == "event" and r["name"] == "fault"]
    assert len(events) == harness.report.faults_fired
